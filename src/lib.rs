//! # aether — a scalable approach to logging
//!
//! Umbrella crate for the reproduction of Johnson et al., *"Aether: A
//! Scalable Approach to Logging"* (PVLDB 3(1), 2010). Re-exports the three
//! member crates:
//!
//! * [`log`] (`aether-core`) — the log manager: five log-buffer insertion
//!   algorithms (baseline, consolidation array, decoupled fill, hybrid,
//!   delegated release), flush daemon with group commit, flush pipelining,
//!   simulated and real log devices.
//! * [`storage`] (`aether-storage`) — a miniature Shore-MT: tables, lock
//!   manager with Early Lock Release, transactions, ARIES recovery.
//! * [`mod@bench`] (`aether-bench`) — TPC-B / TATP / TPC-C-lite workloads,
//!   closed-loop driver, and the microbenchmark harness behind every figure
//!   of the paper.
//!
//! See `examples/` for runnable walkthroughs (`quickstart`, `banking`,
//! `telecom`, `crash_recovery`) and `DESIGN.md` / `EXPERIMENTS.md` for the
//! experiment index.

pub use aether_bench as bench;
pub use aether_core as log;
pub use aether_repl as repl;
pub use aether_server as server;
pub use aether_sim as sim;
pub use aether_storage as storage;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use aether_core::commit::DurabilityPolicy;
    pub use aether_core::{BufferKind, DeviceKind, LogConfig, LogManager, Lsn, RecordKind};
    pub use aether_repl::{LinkConfig, ReplicatedDb, ReplicationConfig};
    pub use aether_storage::{CommitOutcome, CommitProtocol, CrashImage, Db, DbOptions};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_resolve() {
        use crate::prelude::*;
        let _ = BufferKind::Hybrid;
        let _ = DeviceKind::Ram;
        let _ = CommitProtocol::Pipelined;
        let _ = Lsn::ZERO;
    }
}
