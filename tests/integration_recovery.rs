//! End-to-end durability tests: concurrent workloads crashed at arbitrary
//! moments must recover to a state where (1) every acknowledged commit
//! survives and (2) every surviving value was actually written by some
//! committed transaction — across buffer variants and safe commit protocols.

use aether::bench::env_or;
use aether::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn record(key: u64, counter: u64) -> Vec<u8> {
    let mut r = vec![0u8; 40];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&counter.to_le_bytes());
    r
}

fn counter_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[8..16].try_into().unwrap())
}

fn opts(protocol: CommitProtocol, buffer: BufferKind) -> DbOptions {
    DbOptions {
        protocol,
        buffer,
        device: DeviceKind::Ram,
        log_config: LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    }
}

/// Each worker owns one key and commits monotonically increasing counters.
/// After a mid-flight crash, each key must hold a value v with
/// `acked(key) <= v <= submitted(key)`.
fn crash_mid_flight(protocol: CommitProtocol, buffer: BufferKind) {
    let o = opts(protocol, buffer);
    let db = Db::open(o.clone());
    let workers = 4u64;
    db.create_table(40, workers);
    for k in 0..workers {
        db.load(0, k, &record(k, 0)).unwrap();
    }
    db.setup_complete();

    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Vec<AtomicU64>> = Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
    let submitted: Arc<Vec<AtomicU64>> =
        Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());

    let image = std::thread::scope(|s| {
        for k in 0..workers {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            let submitted = Arc::clone(&submitted);
            s.spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v += 1;
                    let mut txn = db.begin();
                    db.update(&mut txn, 0, k, &record(k, v)).unwrap();
                    submitted[k as usize].store(v, Ordering::SeqCst);
                    let a = Arc::clone(&acked);
                    let _ = db
                        .commit_with(
                            txn,
                            Some(Box::new(move || {
                                a[k as usize].fetch_max(v, Ordering::SeqCst);
                            })),
                        )
                        .unwrap();
                }
            });
        }
        // Let the workers race, then pull the plug mid-flight. Any ack that
        // happened before this point must survive the crash; acks racing
        // with the snapshot are indeterminate, so capture the floor first.
        // `AETHER_TEST_CRASH_MS` bounds the racing window for CI.
        std::thread::sleep(std::time::Duration::from_millis(env_or(
            "AETHER_TEST_CRASH_MS",
            150,
        )));
        let acked_floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        let image = db.crash();
        stop.store(true, Ordering::Relaxed);
        (image, acked_floor)
    });
    let (image, acked_floor) = image;

    let db2 = Db::recover(image, o).unwrap();
    let mut txn = db2.begin();
    for k in 0..workers {
        let v = counter_of(&db2.read(&mut txn, 0, k).unwrap());
        let a = acked_floor[k as usize];
        let s = submitted[k as usize].load(Ordering::SeqCst);
        assert!(
            v >= a,
            "{protocol:?}/{buffer:?} key {k}: durable value {v} lost acked commit {a}"
        );
        assert!(
            v <= s,
            "{protocol:?}/{buffer:?} key {k}: durable value {v} exceeds submitted {s}"
        );
    }
    db2.commit(txn).unwrap();
}

#[test]
fn crash_mid_flight_baseline_hybrid() {
    crash_mid_flight(CommitProtocol::Baseline, BufferKind::Hybrid);
}

#[test]
fn crash_mid_flight_elr_baseline_buffer() {
    crash_mid_flight(CommitProtocol::Elr, BufferKind::Baseline);
}

#[test]
fn crash_mid_flight_elr_delegated_buffer() {
    crash_mid_flight(CommitProtocol::Elr, BufferKind::Delegated);
}

#[test]
fn crash_mid_flight_pipelined_hybrid() {
    crash_mid_flight(CommitProtocol::Pipelined, BufferKind::Hybrid);
}

#[test]
fn crash_mid_flight_pipelined_consolidation() {
    crash_mid_flight(CommitProtocol::Pipelined, BufferKind::Consolidation);
}

#[test]
fn randomized_crash_points_converge() {
    // Random single-threaded workload with aborts mixed in; crash after a
    // random prefix; recover; every committed value must match the model.
    let mut rng = StdRng::seed_from_u64(0xC4A5);
    let rounds = env_or("AETHER_TEST_ROUNDS", 5).max(1);
    for round in 0..rounds {
        let o = opts(CommitProtocol::Elr, BufferKind::Hybrid);
        let db = Db::open(o.clone());
        let keys = 16u64;
        db.create_table(40, keys);
        for k in 0..keys {
            db.load(0, k, &record(k, 0)).unwrap();
        }
        db.setup_complete();
        let mut model: Vec<u64> = vec![0; keys as usize];
        let ops = rng.gen_range(10..60);
        for _ in 0..ops {
            let k = rng.gen_range(0..keys);
            let v = rng.gen_range(1..1000u64);
            let mut txn = db.begin();
            db.update(&mut txn, 0, k, &record(k, v)).unwrap();
            if rng.gen_bool(0.3) {
                db.abort(txn).unwrap();
            } else {
                db.commit(txn).unwrap();
                model[k as usize] = v;
            }
        }
        let image = db.crash();
        let db2 = Db::recover(image, o).unwrap();
        let mut txn = db2.begin();
        for k in 0..keys {
            let v = counter_of(&db2.read(&mut txn, 0, k).unwrap());
            assert_eq!(
                v, model[k as usize],
                "round {round}: key {k} diverged from model"
            );
        }
        db2.commit(txn).unwrap();
    }
}

#[test]
fn recovered_db_accepts_new_work_and_can_crash_again() {
    let o = opts(CommitProtocol::Elr, BufferKind::Hybrid);
    let db = Db::open(o.clone());
    db.create_table(40, 8);
    for k in 0..8 {
        db.load(0, k, &record(k, 0)).unwrap();
    }
    db.setup_complete();
    let mut txn = db.begin();
    db.update(&mut txn, 0, 1, &record(1, 11)).unwrap();
    db.commit(txn).unwrap();

    let db2 = Db::recover(db.crash(), o.clone()).unwrap();
    let mut txn = db2.begin();
    db2.update(&mut txn, 0, 2, &record(2, 22)).unwrap();
    db2.commit(txn).unwrap();

    let db3 = Db::recover(db2.crash(), o).unwrap();
    let mut txn = db3.begin();
    assert_eq!(counter_of(&db3.read(&mut txn, 0, 1).unwrap()), 11);
    assert_eq!(counter_of(&db3.read(&mut txn, 0, 2).unwrap()), 22);
    db3.commit(txn).unwrap();
}
