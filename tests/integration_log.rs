//! Cross-crate integration tests: every log-buffer variant must produce the
//! same *observable log* — a dense, gap-free, checksummed record stream —
//! under concurrency, back-pressure and mixed record sizes.

use aether::bench::env_or;
use aether::prelude::*;
use aether_core::device::{LogDevice, SimDevice};
use aether_core::record::RecordKind;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Stress-size knobs so CI can bound suite runtime (defaults reproduce the
/// full local run): `AETHER_TEST_THREADS` scales worker counts,
/// `AETHER_TEST_ITERS` scales per-thread iteration counts.
fn test_threads(default: usize) -> usize {
    env_or("AETHER_TEST_THREADS", default).max(2)
}

fn test_iters(default: usize) -> usize {
    env_or("AETHER_TEST_ITERS", default).max(10)
}

fn stress_one(kind: BufferKind, threads: usize, per: usize) {
    let device = Arc::new(SimDevice::new(Duration::ZERO));
    let log = Arc::new(
        LogManager::builder()
            .buffer(kind)
            .config(LogConfig::default().with_buffer_size(1 << 18)) // small: force wraps
            .device_instance(device.clone())
            .build(),
    );
    std::thread::scope(|s| {
        for t in 0..threads {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..per {
                    // Sizes cycle through the paper's two peaks and more.
                    let size = [8usize, 32, 88, 232, 1000][i % 5];
                    let payload = vec![(t * 31 + i) as u8; size];
                    log.insert(RecordKind::Update, (t * per + i) as u64, &payload);
                }
            });
        }
    });
    log.flush_all().unwrap();
    let records = log.reader().read_all().expect("valid log");
    assert_eq!(records.len(), threads * per, "{kind:?}: lost records");
    // Dense stream: each record starts where the previous ended.
    let mut expected = Lsn::ZERO;
    let mut txns = HashSet::new();
    for r in &records {
        assert_eq!(r.lsn, expected, "{kind:?}: gap in stream");
        expected = r.next_lsn();
        txns.insert(r.header.txn);
    }
    assert_eq!(txns.len(), threads * per, "{kind:?}: duplicated txn tags");
    assert_eq!(log.durable_lsn(), expected);
}

#[test]
fn all_variants_produce_dense_valid_logs() {
    for kind in BufferKind::ALL {
        stress_one(kind, test_threads(8), test_iters(300));
    }
}

#[test]
fn variants_agree_on_total_bytes_for_same_workload() {
    // The on-log footprint of a fixed workload is identical across variants
    // (consolidation changes *who* allocates, never *what*).
    let mut totals = Vec::new();
    for kind in BufferKind::ALL {
        let log = LogManager::builder()
            .buffer(kind)
            .device(DeviceKind::Ram)
            .build();
        for i in 0..500usize {
            let payload = vec![0u8; 8 + (i % 7) * 40];
            log.insert(RecordKind::Update, i as u64, &payload);
        }
        log.flush_all().unwrap();
        totals.push(log.durable_lsn());
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "variants disagree on stream size: {totals:?}"
    );
}

#[test]
fn group_commit_batches_many_commits_into_few_syncs() {
    let log = Arc::new(
        LogManager::builder()
            .device(DeviceKind::CustomUs(200))
            .build(),
    );
    let n = 200u64;
    let mut handles = Vec::new();
    for t in 0..n {
        let prev = log.insert(RecordKind::Update, t, &[1u8; 80]);
        handles.push(log.commit(t, prev));
    }
    for h in handles {
        assert!(h.wait());
    }
    let flushes = log.flush_count();
    assert!(
        flushes < n,
        "group commit must batch: {flushes} syncs for {n} commits"
    );
    assert_eq!(log.pipeline().completed(), n);
}

#[test]
fn concurrent_committers_share_flushes() {
    // Regression guard: commit waits must be fully concurrent. With N
    // threads committing against a slow device, each device sync must
    // harden ~N commits (group commit), not ~1 — the latter happens if any
    // manager-level lock is held across the blocking wait.
    let log = Arc::new(
        LogManager::builder()
            .device(DeviceKind::CustomUs(5_000))
            .build(),
    );
    let threads = test_threads(8) as u64;
    let per = test_iters(20) as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for _ in 0..per {
                    let (_, end) = log.insert_ext(RecordKind::Commit, t, Lsn::ZERO, &[0u8; 80]);
                    log.flush_until(end).unwrap();
                }
            });
        }
    });
    let commits = threads * per;
    let flushes = log.flush_count();
    let per_flush = commits as f64 / flushes as f64;
    assert!(
        per_flush > threads as f64 / 2.0,
        "group commit degraded: {per_flush:.1} commits/flush for {threads} concurrent committers"
    );
}

#[test]
fn back_pressure_with_slow_device_never_deadlocks() {
    // Ring much smaller than the data pushed through it, on a slow device.
    let log = Arc::new(
        LogManager::builder()
            .config(LogConfig::default().with_buffer_size(1 << 16))
            .device(DeviceKind::CustomUs(500))
            .build(),
    );
    let threads = test_threads(4) as u64;
    let per = test_iters(100) as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for _ in 0..per {
                    log.insert(RecordKind::Update, t, &[7u8; 2000]);
                }
            });
        }
    });
    log.flush_all().unwrap();
    assert_eq!(log.stats().inserts, threads * per);
    assert_eq!(log.durable_lsn(), Lsn(log.stats().bytes));
}

#[test]
fn torn_tail_is_clipped_by_reader() {
    let device = Arc::new(SimDevice::new(Duration::ZERO));
    let log = LogManager::builder()
        .device_instance(device.clone())
        .build();
    for i in 0..50u64 {
        log.insert(RecordKind::Update, i, &[3u8; 100]);
    }
    log.flush_all().unwrap();
    let full = device.len();
    log.shutdown();
    // Tear the tail mid-record.
    device.truncate(full - 37);
    let records = aether_core::reader::LogReader::new(device)
        .read_all()
        .unwrap();
    assert_eq!(records.len(), 49, "exactly the torn record is dropped");
}

#[test]
fn commit_handles_complete_across_protocol_paths() {
    // Pipelined completion arrives via the daemon thread; wait from several
    // client threads simultaneously.
    let log = Arc::new(LogManager::builder().device(DeviceKind::Flash).build());
    let threads = test_threads(8) as u64;
    let per = test_iters(20) as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for _ in 0..per {
                    let prev = log.insert(RecordKind::Update, t, &[9u8; 64]);
                    assert!(log.commit(t, prev).wait());
                }
            });
        }
    });
    assert_eq!(log.pipeline().completed(), threads * per);
}
