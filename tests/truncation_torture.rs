//! Crash-during-checkpoint torture tests (ISSUE 3 satellite).
//!
//! The checkpoint → truncate cycle has a window between "checkpoint written
//! and redo low-water mark published" and "segments recycled". A crash
//! anywhere in (or after) that window must recover to a consistent state,
//! and recovery must never need a byte from a recycled segment — the
//! truncation safety rule (DESIGN.md invariant 7) is exactly what makes
//! that true. These tests crash at every stage of the cycle, with live
//! loser transactions in flight, and also re-crash the recovered database.

use aether::bench::env_or;
use aether::log::partition::{MemSegmentFactory, SegmentedDevice};
use aether::prelude::*;
use aether::storage::recovery::recover_with_stats;
use std::sync::Arc;

fn record(key: u64, v: u64) -> Vec<u8> {
    let mut r = vec![0u8; 48];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&v.to_le_bytes());
    r
}

fn value_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[8..16].try_into().unwrap())
}

fn opts() -> DbOptions {
    DbOptions {
        protocol: CommitProtocol::Baseline,
        buffer: BufferKind::Hybrid,
        log_config: LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    }
}

fn segmented_db(keys: u64) -> (Arc<Db>, Arc<SegmentedDevice>) {
    let segments = Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 8 * 1024).unwrap());
    let db = aether::storage::Db::open_with_device(opts(), Arc::clone(&segments) as _);
    db.create_table(48, keys);
    for k in 0..keys {
        db.load(0, k, &record(k, 0)).unwrap();
    }
    db.setup_complete();
    (db, segments)
}

/// Crash at every stage of the checkpoint→truncate cycle — after the page
/// flush, after the checkpoint record, after the truncation — each with an
/// uncommitted loser in flight. Recovery must (a) keep every committed
/// value, (b) roll the loser back, and (c) start its scan at the low-water
/// mark, never touching a recycled byte.
#[test]
fn crash_between_checkpoint_and_truncation_recovers_consistently() {
    let keys = 16u64;
    let rounds = env_or("AETHER_TEST_ROUNDS", 3u64).max(2);
    // Stage 0: crash right after flush_pages; 1: after checkpoint (mark
    // published, nothing recycled yet — the torture window this test is
    // named for); 2: after truncate_to.
    for stage in 0..3 {
        let (db, segments) = segmented_db(keys);
        let mut committed = vec![0u64; keys as usize];
        for round in 1..=rounds {
            for k in 0..keys {
                let mut txn = db.begin();
                db.update(&mut txn, 0, k, &record(k, round)).unwrap();
                db.commit(txn).unwrap();
                committed[k as usize] = round;
            }
            // Full housekeeping between rounds keeps the log bounded and
            // sets up real recycling before the final tortured cycle.
            db.checkpoint_and_truncate();
        }
        // One more committed batch, then a loser in flight.
        for k in 0..keys / 2 {
            let mut txn = db.begin();
            db.update(&mut txn, 0, k, &record(k, 99)).unwrap();
            db.commit(txn).unwrap();
            committed[k as usize] = 99;
        }
        let mut loser = db.begin();
        db.update_with(&mut loser, 0, 3, |r| {
            r[8..16].copy_from_slice(&7777u64.to_le_bytes())
        })
        .unwrap();
        db.log().flush_all().unwrap();

        // The tortured cycle, cut at `stage`.
        db.flush_pages();
        if stage >= 1 {
            db.checkpoint();
        }
        if stage >= 2 {
            db.log().truncate_to(db.redo_low_water());
        }
        let image = db.crash();
        std::mem::forget(loser); // the crash takes it
        assert!(
            segments.recycled_segments() > 0,
            "stage {stage}: rounds must have recycled log"
        );
        assert_eq!(
            image.log_start,
            db.log().low_water(),
            "stage {stage}: image starts at the low-water mark"
        );
        drop(db);

        let (db2, stats) = recover_with_stats(image, opts()).unwrap();
        assert!(
            stage < 2 || stats.scan_start > Lsn::ZERO,
            "stage {stage}: after truncation the scan must not start at 0"
        );
        assert_eq!(stats.losers, 1, "stage {stage}: in-flight txn is a loser");
        let mut txn = db2.begin();
        for k in 0..keys {
            assert_eq!(
                value_of(&db2.read(&mut txn, 0, k).unwrap()),
                committed[k as usize],
                "stage {stage}: key {k} must hold its last committed value"
            );
        }
        db2.commit(txn).unwrap();

        // Re-crash immediately: recovery over the recovered log is
        // idempotent (the loser is now cleanly aborted).
        let image2 = db2.crash();
        let (db3, stats2) = recover_with_stats(image2, opts()).unwrap();
        assert_eq!(stats2.losers, 0, "stage {stage}: second recovery is clean");
        let mut txn = db3.begin();
        assert_eq!(value_of(&db3.read(&mut txn, 0, 3).unwrap()), committed[3]);
        db3.commit(txn).unwrap();
    }
}

/// An active transaction spanning the checkpoint pins the truncation point
/// below its first record: even an aggressive checkpoint+truncate storm
/// while it is open never recycles the segments its undo chain needs, and
/// a crash afterwards still rolls it back cleanly from the retained log.
#[test]
fn open_transaction_pins_truncation_until_it_resolves() {
    let keys = 8u64;
    let (db, _segments) = segmented_db(keys);
    // The pinning transaction writes early, then stays open.
    let mut pinner = db.begin();
    db.update_with(&mut pinner, 0, 0, |r| {
        r[8..16].copy_from_slice(&4242u64.to_le_bytes())
    })
    .unwrap();
    let first = pinner.first_lsn().unwrap();

    // Checkpoint storm under committed traffic.
    for i in 0..200u64 {
        let k = 1 + i % (keys - 1);
        let mut txn = db.begin();
        db.update(&mut txn, 0, k, &record(k, i + 1)).unwrap();
        db.commit(txn).unwrap();
        if i % 20 == 19 {
            let out = db.checkpoint_and_truncate();
            assert!(
                out.applied <= first,
                "truncation {} must never pass the open txn's first record {first}",
                out.applied
            );
        }
    }
    assert!(db.log().low_water() <= first);

    // Once the pinner resolves (rollback), the pin lifts and truncation
    // passes its old first LSN.
    db.abort(pinner).unwrap();
    let out = db.checkpoint_and_truncate();
    assert!(out.applied > first, "pin lifted after rollback");

    // Crash with a fresh pinner unresolved: its chain is fully retained
    // (it pins the new truncation point), so recovery rolls it back and
    // key 0 keeps the value the rollback restored.
    let mut pinner = db.begin();
    db.update_with(&mut pinner, 0, 0, |r| {
        r[8..16].copy_from_slice(&9999u64.to_le_bytes())
    })
    .unwrap();
    db.log().flush_all().unwrap();
    let image = db.crash();
    std::mem::forget(pinner);
    drop(db);
    let (db2, stats) = recover_with_stats(image, opts()).unwrap();
    assert_eq!(stats.losers, 1);
    assert!(stats.scan_start > first, "scan starts past the lifted pin");
    let mut txn = db2.begin();
    assert_eq!(value_of(&db2.read(&mut txn, 0, 0).unwrap()), 0);
    db2.commit(txn).unwrap();
}

/// The torture cycle under the seeded sim scheduler: checkpoint daemon,
/// flush daemon and the crashing workload all run as sim actors, so the
/// whole crash/recover interleaving is a pure function of the seed —
/// `(history hash, events)` and the recovered state replay identically.
/// `AETHER_SIM_SEED=<n>` replays one specific interleaving.
#[test]
fn sim_seeded_torture_replays_byte_identically() {
    use aether::log::runtime::Runtime;

    fn run(seed: u64) -> ((u64, u64), u64) {
        let rt = Runtime::sim(seed);
        let guard = rt.enter();
        let opts = DbOptions {
            log_config: LogConfig::default()
                .with_buffer_size(1 << 20)
                .with_runtime(rt.clone()),
            ..opts()
        };
        let keys = 8u64;
        let segments =
            Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 8 * 1024).unwrap());
        let db = aether::storage::Db::open_with_device(opts.clone(), Arc::clone(&segments) as _);
        db.create_table(48, keys);
        for k in 0..keys {
            db.load(0, k, &record(k, 0)).unwrap();
        }
        db.setup_complete();

        // Seeded bounded torture with *real* concurrency: a second sim
        // actor commits to the upper half of the keyspace while the main
        // actor works the lower half and runs housekeeping — so the
        // scheduler has genuine choices for the seed to steer (group
        // commit batch cuts, checkpoint position in the stream). Then a
        // loser in flight and a crash mid-cycle (after the checkpoint,
        // before the truncate — the named torture window).
        let mut committed = vec![0u64; keys as usize];
        let half = keys / 2;
        let side = {
            let db = Arc::clone(&db);
            rt.spawn("torture-side", move || {
                let mut vals = vec![0u64; half as usize];
                for round in 1..=3u64 {
                    for k in half..keys {
                        let mut txn = db.begin();
                        let v = round * 1000 + (seed ^ k) % 997;
                        db.update(&mut txn, 0, k, &record(k, v)).unwrap();
                        db.commit(txn).unwrap();
                        vals[(k - half) as usize] = v;
                    }
                }
                vals
            })
        };
        for round in 1..=3u64 {
            for k in 0..half {
                let mut txn = db.begin();
                let v = round * 1000 + (seed ^ k) % 997;
                db.update(&mut txn, 0, k, &record(k, v)).unwrap();
                db.commit(txn).unwrap();
                committed[k as usize] = v;
            }
            db.checkpoint_and_truncate();
        }
        for (i, v) in side.join().unwrap().into_iter().enumerate() {
            committed[half as usize + i] = v;
        }
        let mut loser = db.begin();
        db.update_with(&mut loser, 0, 3, |r| {
            r[8..16].copy_from_slice(&7777u64.to_le_bytes())
        })
        .unwrap();
        db.log().flush_all().unwrap();
        db.flush_pages();
        db.checkpoint();
        let image = db.crash();
        std::mem::forget(loser);
        drop(db);

        let (db2, stats) = recover_with_stats(image, opts).unwrap();
        assert_eq!(stats.losers, 1, "in-flight txn is a loser");
        // FNV over the recovered values: the replayable state witness.
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        let mut txn = db2.begin();
        for k in 0..keys {
            let rec = db2.read(&mut txn, 0, k).unwrap();
            assert_eq!(
                value_of(&rec),
                committed[k as usize],
                "key {k} holds its last committed value"
            );
            for b in &rec {
                state ^= u64::from(*b);
                state = state.wrapping_mul(0x100_0000_01b3);
            }
        }
        db2.commit(txn).unwrap();
        db2.log().flush_all().unwrap();
        db2.log().shutdown();
        let history = rt.history();
        drop(guard);
        (history, state)
    }

    let seed = env_or("AETHER_SIM_SEED", 0x70D7u64);
    let (h1, s1) = run(seed);
    let (h2, s2) = run(seed);
    assert_eq!(h1, h2, "same seed must replay the same scheduler history");
    assert_eq!(s1, s2, "same history, same recovered state");
    let (h3, _) = run(seed ^ 1);
    assert_ne!(h1, h3, "different seed must steer the interleaving");
}
