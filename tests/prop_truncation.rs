//! Property test over the truncation safety rule (ISSUE 3 satellite,
//! DESIGN.md invariant 7): for ANY interleaving of commits, checkpoints,
//! replica-ack advances and truncation requests, the log's low-water mark
//! never exceeds `min(published redo low-water mark, slowest replica ack)`
//! — and the database still crash-recovers to its committed state from the
//! retained suffix alone.

use aether::log::partition::{MemSegmentFactory, SegmentedDevice};
use aether::prelude::*;
use aether::storage::recovery::recover_with_stats;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn record(key: u64, v: u64) -> Vec<u8> {
    let mut r = vec![0u8; 40];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&v.to_le_bytes());
    r
}

fn opts() -> DbOptions {
    DbOptions {
        protocol: CommitProtocol::Baseline,
        buffer: BufferKind::Hybrid,
        log_config: LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncation_never_exceeds_min_of_redo_mark_and_slowest_ack(
        script in proptest::collection::vec(
            (0u8..5, any::<u64>(), 0.0f64..1.0),
            4..48,
        ),
    ) {
        let keys = 8u64;
        let segments = Arc::new(
            SegmentedDevice::new(Box::new(MemSegmentFactory), 4096).unwrap(),
        );
        let db = aether::storage::Db::open_with_device(
            opts(),
            Arc::clone(&segments) as _,
        );
        db.create_table(40, keys);
        for k in 0..keys {
            db.load(0, k, &record(k, 0)).unwrap();
        }
        db.setup_complete();
        // One simulated replica: its ack watermark is the truncation clamp.
        let ack = db.log().commit_gate().register_replica();
        let mut committed: HashMap<u64, u64> = (0..keys).map(|k| (k, 0)).collect();

        for (i, &(op, key, frac)) in script.iter().enumerate() {
            match op % 5 {
                0 | 1 => {
                    // Committed update (weighted 2x so logs actually grow).
                    let k = key % keys;
                    let v = i as u64 + 1;
                    let mut txn = db.begin();
                    db.update(&mut txn, 0, k, &record(k, v)).unwrap();
                    db.commit(txn).unwrap();
                    committed.insert(k, v);
                }
                2 => {
                    db.flush_pages();
                    db.checkpoint();
                }
                3 => {
                    // Ack some fraction of the durable frontier (cumulative
                    // max inside, so regressions are ignored).
                    let durable = db.log().durable_lsn().raw();
                    ack.advance(Lsn((durable as f64 * frac) as u64));
                }
                _ => {
                    // Truncation request — direct or via the two-tier
                    // checkpoint cycle; both route through `truncate_to`.
                    if key % 2 == 0 {
                        db.log().truncate_to(db.redo_low_water());
                    } else {
                        db.checkpoint_and_truncate();
                    }
                }
            }
            // THE invariant, checked after every single step.
            let lw = db.log().low_water();
            let redo = db.redo_low_water();
            let slowest = db.log().commit_gate().slowest_ack();
            prop_assert!(
                lw <= redo,
                "step {i}: low-water {lw} passed the published redo mark {redo}"
            );
            prop_assert!(
                lw <= slowest,
                "step {i}: low-water {lw} passed the slowest replica ack {slowest}"
            );
        }

        // The retained suffix alone recovers the committed state.
        db.log().flush_all().unwrap();
        let image = db.crash();
        prop_assert_eq!(image.log_start, db.log().low_water());
        drop(db);
        let (db2, stats) = recover_with_stats(image, opts()).unwrap();
        prop_assert_eq!(stats.losers, 0);
        let mut txn = db2.begin();
        for k in 0..keys {
            let got = u64::from_le_bytes(
                db2.read(&mut txn, 0, k).unwrap()[8..16].try_into().unwrap(),
            );
            prop_assert_eq!(got, committed[&k], "key {} after recovery", k);
        }
        db2.commit(txn).unwrap();
    }
}
