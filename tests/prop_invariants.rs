//! Property-based tests over the core invariants:
//!
//! * arbitrary payload sequences inserted through any buffer variant read
//!   back exactly (content, order, chaining);
//! * record headers round-trip and reject mutations;
//! * zipfian sampling is a valid distribution for arbitrary (n, s);
//! * the TPC-B balance invariant holds for arbitrary operation interleavings
//!   of commit/abort;
//! * crash/recovery converges to the committed-model state for arbitrary
//!   operation scripts.

use aether::prelude::*;
use aether_core::record::{crc32, on_log_size, RecordHeader, RecordKind};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn header_roundtrip_and_mutation_detection(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        txn in any::<u64>(),
        prev in any::<u64>(),
        flip in 0usize..32,
    ) {
        let h = RecordHeader::new(RecordKind::Update, txn, Lsn(prev), &payload);
        let enc = h.encode();
        let dec = RecordHeader::decode(&enc).unwrap();
        prop_assert_eq!(dec, h);
        prop_assert!(dec.verify(&payload));
        // Flipping any single *meaningful* header byte must break decode or
        // change the decoded header. Bytes 10..12 are reserved padding and
        // legitimately ignored.
        if !(10..12).contains(&flip) {
            let mut bad = enc;
            bad[flip] ^= 0xFF;
            match RecordHeader::decode(&bad) {
                None => {}
                Some(other) => prop_assert_ne!(other, h),
            }
        }
    }

    #[test]
    fn checksum_catches_single_bit_flips(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        bit in 0usize..8,
        at_frac in 0.0f64..1.0,
    ) {
        let at = ((payload.len() - 1) as f64 * at_frac) as usize;
        let a = crc32(&payload);
        let mut mutated = payload.clone();
        mutated[at] ^= 1 << bit;
        prop_assert_ne!(a, crc32(&mutated));
    }

    #[test]
    fn on_log_size_is_aligned_and_monotonic(a in 0usize..100_000, b in 0usize..100_000) {
        prop_assert_eq!(on_log_size(a) % 8, 0);
        prop_assert!(on_log_size(a) >= a + 32);
        if a <= b {
            prop_assert!(on_log_size(a) <= on_log_size(b));
        }
    }

    #[test]
    fn zipf_is_a_distribution(n in 1u64..5000, s in 0.0f64..4.0) {
        let z = aether::bench::zipf::Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(n ^ s.to_bits());
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn log_stream_roundtrips_for_any_payload_sequence(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600), 1..60),
        variant in 0usize..5,
    ) {
        let kind = BufferKind::ALL[variant];
        let log = LogManager::builder()
            .buffer(kind)
            .device(DeviceKind::Ram)
            .build();
        let mut prev = Lsn::ZERO;
        for (i, p) in payloads.iter().enumerate() {
            prev = log.insert_chained(RecordKind::Update, i as u64, prev, p);
        }
        log.flush_all().unwrap();
        let records = log.reader().read_all().unwrap();
        prop_assert_eq!(records.len(), payloads.len());
        let mut expect_prev = Lsn::ZERO;
        for (i, (r, p)) in records.iter().zip(&payloads).enumerate() {
            prop_assert_eq!(&r.payload, p, "payload {} corrupted", i);
            prop_assert_eq!(r.header.txn, i as u64);
            prop_assert_eq!(r.header.prev_lsn, expect_prev, "chain broken at {}", i);
            expect_prev = r.lsn;
        }
    }

    #[test]
    fn tpcb_style_commit_abort_interleavings_preserve_sums(
        script in proptest::collection::vec((0u64..8, 0u64..8, -500i64..500, any::<bool>()), 1..40),
    ) {
        let db = Db::open(DbOptions {
            protocol: CommitProtocol::Elr,
            log_config: LogConfig::default().with_buffer_size(1 << 20),
            ..DbOptions::default()
        });
        // Two tables ("accounts", "branches") whose sums must stay equal.
        let ta = db.create_table(24, 8);
        let tb = db.create_table(24, 8);
        let zero = |k: u64| {
            let mut r = vec![0u8; 24];
            r[..8].copy_from_slice(&k.to_le_bytes());
            r
        };
        for k in 0..8 {
            db.load(ta, k, &zero(k)).unwrap();
            db.load(tb, k, &zero(k)).unwrap();
        }
        db.setup_complete();
        let bump = |r: &mut [u8], d: i64| {
            let v = i64::from_le_bytes(r[8..16].try_into().unwrap()) + d;
            r[8..16].copy_from_slice(&v.to_le_bytes());
        };
        for &(ka, kb, delta, commit) in &script {
            let mut txn = db.begin();
            db.update_with(&mut txn, ta, ka, |r| bump(r, delta)).unwrap();
            db.update_with(&mut txn, tb, kb, |r| bump(r, delta)).unwrap();
            if commit {
                db.commit(txn).unwrap();
            } else {
                db.abort(txn).unwrap();
            }
        }
        // Sums must match exactly (every commit applied symmetrically,
        // every abort fully undone).
        let mut txn = db.begin();
        let mut sa = 0i64;
        let mut sb = 0i64;
        for k in 0..8 {
            sa += i64::from_le_bytes(db.read(&mut txn, ta, k).unwrap()[8..16].try_into().unwrap());
            sb += i64::from_le_bytes(db.read(&mut txn, tb, k).unwrap()[8..16].try_into().unwrap());
        }
        db.commit(txn).unwrap();
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn recovery_matches_committed_model_for_any_script(
        script in proptest::collection::vec((0u64..6, 1u64..10_000, any::<bool>()), 1..30),
    ) {
        let o = DbOptions {
            protocol: CommitProtocol::Elr,
            log_config: LogConfig::default().with_buffer_size(1 << 20),
            ..DbOptions::default()
        };
        let db = Db::open(o.clone());
        db.create_table(24, 6);
        let mk = |k: u64, v: u64| {
            let mut r = vec![0u8; 24];
            r[..8].copy_from_slice(&k.to_le_bytes());
            r[8..16].copy_from_slice(&v.to_le_bytes());
            r
        };
        for k in 0..6 {
            db.load(0, k, &mk(k, 0)).unwrap();
        }
        db.setup_complete();
        let mut model = [0u64; 6];
        for &(k, v, commit) in &script {
            let mut txn = db.begin();
            db.update(&mut txn, 0, k, &mk(k, v)).unwrap();
            if commit {
                db.commit(txn).unwrap();
                model[k as usize] = v;
            } else {
                db.abort(txn).unwrap();
            }
        }
        let db2 = Db::recover(db.crash(), o).unwrap();
        let mut txn = db2.begin();
        for k in 0..6u64 {
            let rec = db2.read(&mut txn, 0, k).unwrap();
            let v = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            prop_assert_eq!(v, model[k as usize], "key {} diverged", k);
        }
        db2.commit(txn).unwrap();
    }
}
