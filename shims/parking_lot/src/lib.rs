//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access and an empty cargo registry,
//! so this workspace ships a small API-compatible subset of `parking_lot`
//! implemented over `std::sync`. Semantics match what the Aether code relies
//! on: guards returned without `Result` (poisoning is swallowed — a panicked
//! holder does not poison the lock for others), `Condvar` re-locking through
//! a `&mut` guard, and timed waits reporting `timed_out()`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive, `parking_lot`-flavoured: `lock()` returns
/// the guard directly and panics in a lock-holder never poison the mutex.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets [`Condvar`]
/// temporarily take the underlying std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing and re-acquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, r) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter. Returns whether the underlying notify was issued
    /// (std gives no waiter count; `true` mirrors parking_lot's signature).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock with `parking_lot`'s unwrapped-guard API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        let r = cv.wait_until(&mut g, Instant::now());
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
