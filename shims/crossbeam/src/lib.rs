//! Offline shim for the `crossbeam` crate: just the pieces Aether uses,
//! `utils::CachePadded` and `queue::SegQueue`.
//!
//! `SegQueue` here is a mutex-protected `VecDeque` rather than a lock-free
//! segmented queue. That is semantically equivalent (MPMC, FIFO) and fine for
//! correctness; if the delegated-release hot path ever becomes the
//! bottleneck, replacing this shim with the real crate (or a lock-free ring)
//! is a contained change.

/// Utilities: cache-line padding.
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring values never
    /// share a cache line (avoids false sharing between per-thread counters).
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pad `value`.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.value.fmt(f)
        }
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Create an empty queue.
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push onto the tail.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(value);
        }

        /// Pop from the head, `None` if empty.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SegQueue(..)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(42u64);
        assert_eq!(*p, 42);
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn segqueue_is_fifo() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn segqueue_across_threads() {
        let q = std::sync::Arc::new(SegQueue::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..100 {
                        q.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 400);
    }
}
