//! Offline shim for the `criterion` crate.
//!
//! Keeps the bench sources and `cargo bench` working without the real
//! dependency: same macro + builder surface, but measurement is a simple
//! warmup-then-sample loop printing mean wall time per iteration as TSV
//! (`group/id<TAB>mean_ns<TAB>iters`). No statistics, plots or baselines —
//! swap the real criterion back in for publication-grade numbers.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Names one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Standard two-part id.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    sample_size: u64,
    measurement_time: Duration,
    /// (total elapsed, total iterations) accumulated by the measure loop.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly; the routine's return value is black-boxed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let est = start.elapsed().max(Duration::from_nanos(1));
        let budget_iters = (self.measurement_time.as_nanos() / est.as_nanos()).max(1) as u64;
        let iters = budget_iters.min(self.sample_size.max(1) * 1000).max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Like [`Bencher::iter`] but the routine times itself: it receives an
    /// iteration count and returns the elapsed time for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        // One calibration call, then a measured batch sized to the budget.
        let est = routine(1).max(Duration::from_nanos(1));
        let budget_iters = (self.measurement_time.as_nanos() / est.as_nanos()).max(1) as u64;
        let iters = budget_iters.min(self.sample_size.max(1)).max(1);
        let total = routine(iters);
        self.result = Some((total, iters));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Target sample count (shim: scales the measured batch).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Throughput annotation (ignored by the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((total, iters)) => {
                let mean_ns = total.as_nanos() as f64 / iters as f64;
                println!("{}/{}\t{:.1}\t{}", self.name, id, mean_ns, iters);
            }
            None => println!("{}/{}\t(no measurement)", self.name, id),
        }
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = id.id.clone();
        self.run(&name, |b| f(b, input));
        self
    }

    /// Benchmark a plain routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = id.into();
        self.run(&name, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
        }
    }

    /// Benchmark a plain routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collects bench functions into one group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5).measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x + 1
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_custom_scales_to_budget() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(3).measurement_time(Duration::from_millis(2));
        let mut calls = Vec::new();
        g.bench_with_input(BenchmarkId::from_parameter(1), &(), |b, _| {
            b.iter_custom(|iters| {
                calls.push(iters);
                Duration::from_micros(100 * iters)
            })
        });
        assert_eq!(calls[0], 1);
        assert!(calls[1] >= 1);
    }
}
