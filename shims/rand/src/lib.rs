//! Offline shim for the `rand` crate (0.8-era API subset).
//!
//! Provides `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`. `StdRng` is xoshiro256++ (not ChaCha12 like the real
//! crate) — deterministic for a given seed, excellent statistical quality,
//! not cryptographic. Nothing in this workspace needs a CSPRNG.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integers samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive). Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased-enough uniform draw in `[0, span]` via 128-bit multiply-shift
/// (Lemire). Bias is at most 2^-64 per draw — irrelevant for workloads.
fn uniform_below_inclusive<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                let off = uniform_below_inclusive(rng, span);
                ((low as $u).wrapping_add(off as $u)) as $t
            }
        }
    )*};
}
sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper to turn a half-open bound into an inclusive one.
pub trait One {
    /// `self - 1` in the type's own arithmetic.
    fn minus_one(self) -> Self;
}

macro_rules! one_int {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}
one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (integers: full range; floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS-ish entropy (here: address + time jitter).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let here = &t as *const u64 as u64;
        Self::seed_from_u64(t ^ here.rotate_left(32))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small-footprint generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..100);
            assert!((0..100).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
