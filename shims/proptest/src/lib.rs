//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, range / `any` / tuple / `collection::vec`
//! strategies, `prop_assert*` / `prop_assume!`, and `ProptestConfig`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and seed; rerun
//!   with `PROPTEST_SEED=<seed>` to reproduce exactly.
//! * **Deterministic by default.** Seeds derive from the test's module path
//!   and name, so failures reproduce across runs; set `PROPTEST_SEED` to
//!   explore a different sequence.
//! * **`PROPTEST_CASES`** (env) caps the per-test case count — the knob CI
//!   uses to bound suite runtime.

/// Strategy trait and implementations for ranges and tuples.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates values of `Value` from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.0.gen::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.0.gen::<f32>() * (self.end - self.start)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    }
}

/// `any::<T>()` — full-range arbitrary values.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_via_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.0.gen()
                }
            }
        )*};
    }
    arb_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Config, RNG and case-outcome plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration. Only `cases` matters to this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run (capped by the `PROPTEST_CASES` env var).
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count after applying the `PROPTEST_CASES` env cap.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                Some(cap) => self.cases.min(cap),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies. Wraps the workspace `StdRng`.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Deterministic RNG for (test, case); `PROPTEST_SEED` perturbs the
        /// whole sequence.
        pub fn for_case(test_path: &str, case: u32) -> (Self, u64) {
            let base: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0xAE7E_12AE_7E12_AE7E);
            let mut h = base;
            for b in test_path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            let seed = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (TestRng(StdRng::seed_from_u64(seed)), seed)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-case result type produced by the macro-wrapped body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// The things tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expands each test fn inside [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = $cfg:expr; ) => {};
    ( cfg = $cfg:expr;
      $(#[$meta:meta])*
      fn $name:ident( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __cfg.resolved_cases();
            let mut __rejected: u32 = 0;
            for __case in 0..__cases {
                let (mut __rng, __seed) = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                let __outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => __rejected += 1,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {}/{} failed (PROPTEST_SEED reproduces with seed {}): {}",
                        __case + 1, __cases, __seed, msg
                    ),
                }
            }
            assert!(
                __rejected < __cases || __cases == 0,
                "proptest rejected every one of {} cases via prop_assume!",
                __cases
            );
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}: {:?} != {:?}", format!($($fmt)*), l, r),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l != *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}: {:?} == {:?}", format!($($fmt)*), l, r),
                    ));
                }
            }
        }
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..10, b in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(any::<u8>(), 2..7),
        ) {
            prop_assert!((2..7).contains(&v.len()));
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..100, 0u64..100)) {
            prop_assume!(pair.0 + pair.1 < 150);
            prop_assert_ne!(pair.0 + 1, pair.0);
            prop_assert_eq!(pair.0 + pair.1, pair.1 + pair.0, "commutativity {} {}", pair.0, pair.1);
        }

        #[test]
        fn nested_vec(chunks in crate::collection::vec(crate::collection::vec(any::<u8>(), 1..4), 1..5)) {
            prop_assert!(!chunks.is_empty());
            for c in &chunks {
                prop_assert!((1..4).contains(&c.len()));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let (mut a, sa) = crate::test_runner::TestRng::for_case("x::y", 3);
        let (mut b, sb) = crate::test_runner::TestRng::for_case("x::y", 3);
        assert_eq!(sa, sb);
        use rand::Rng;
        assert_eq!(a.0.gen::<u64>(), b.0.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
