#!/usr/bin/env python3
"""Perf-regression gate: diff the bounded perf-smoke's JSON-lines output
against the committed baselines in bench/baselines/.

Two checks, matched on the row keys that identify a configuration:

* BENCH_fig8.json    — insert throughput; fail when `mb_per_s` drops more
                       than PERF_MAX_TPUT_DROP_PCT (default 25%).
* BENCH_latency.json — commit latency; fail when `p99_us` grows more than
                       PERF_MAX_P99_GROWTH_PCT (default 50%).

The thresholds are deliberately loose: shared CI runners jitter by tens of
percent, and this gate exists to catch the step-function regressions (a
lock on the insert path, a lost group-commit amortization), not 5% drift.
A legitimate perf-profile change ships new baselines in the same commit,
or carries the `[skip-perf-gate]` override label in the commit message /
PR title (documented in README.md).

Baseline keys missing from the current run only warn — bench shapes may
narrow — but a run where *nothing* matches is a broken gate and fails.
"""

import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            return [json.loads(line) for line in f if line.strip()]
    except OSError as e:
        print(f"::error::perf-compare: cannot read {path}: {e}")
        sys.exit(1)


def index(rows, keys, metric, direction):
    # The bench files are append-mode JSON-lines, so a key may appear once
    # per run. Keep each key's best row: CI runs the latency bench several
    # times and gates best-of-N, because a genuine regression raises the
    # *minimum* achievable p99 while scheduler noise only raises the tail.
    best = {}
    for row in rows:
        key = tuple((k, row.get(k)) for k in keys)
        val = row.get(metric)
        if val is None:
            continue
        if key not in best or (
            val > best[key].get(metric) if direction == "higher" else val < best[key].get(metric)
        ):
            best[key] = row
    return best


CHECKS = [
    {
        "name": "fig8 insert throughput",
        "baseline": "bench/baselines/BENCH_fig8.json",
        "current": "BENCH_fig8.json",
        "keys": ("bench", "mode", "variant", "threads", "record_bytes"),
        "metric": "mb_per_s",
        # "higher" is better: fail on a drop beyond the threshold.
        "direction": "higher",
        "pct": float(os.environ.get("PERF_MAX_TPUT_DROP_PCT", "25")),
        # Contention-collapsed configs (single-digit MB/s) are dominated by
        # scheduler noise, not the log's fast path; only judge rows where a
        # step-function regression is distinguishable from jitter.
        "min_baseline": float(os.environ.get("PERF_MIN_BASELINE_MBPS", "50")),
        # Gate the variants that measure the insert fast path itself. The
        # consolidation/backoff variants have sleep-driven dynamics whose
        # run-to-run spread exceeds any workable threshold.
        "row_filter": lambda r: r["variant"]
        in os.environ.get("PERF_FIG8_VARIANTS", "B,CD_in_L1").split(",")
        and r.get("mode") != "backoff",
    },
    {
        "name": "commit p99 latency",
        "baseline": "bench/baselines/BENCH_latency.json",
        "current": "BENCH_latency.json",
        "keys": ("bench", "policy"),
        "metric": "p99_us",
        # "lower" is better: fail on growth beyond the threshold.
        "direction": "lower",
        "pct": float(os.environ.get("PERF_MAX_P99_GROWTH_PCT", "50")),
        # Async isolates the local commit path, where a code regression
        # shows; SemiSync/Quorum p99 is dominated by simulated-link
        # scheduling jitter on shared runners. Widen via the env knob when
        # hunting a replication-path regression locally.
        "row_filter": lambda r: r["policy"]
        in os.environ.get("PERF_LATENCY_POLICIES", "async").split(","),
    },
]


def main():
    compared = 0
    failures = []
    for check in CHECKS:
        metric, pct = check["metric"], check["pct"]
        base = index(load(check["baseline"]), check["keys"], metric, check["direction"])
        cur = index(load(check["current"]), check["keys"], metric, check["direction"])
        for key, brow in sorted(base.items(), key=str):
            label = ", ".join(f"{k}={v}" for k, v in key if v is not None)
            if not check.get("row_filter", lambda r: True)(brow):
                continue
            if key not in cur:
                print(f"warning: {check['name']}: no current row for [{label}]")
                continue
            bval, cval = brow.get(metric), cur[key].get(metric)
            if not bval or bval <= 0 or cval is None:
                print(f"warning: {check['name']}: unusable values for [{label}]")
                continue
            if bval < check.get("min_baseline", 0.0):
                print(f"skip: {check['name']} [{label}]: baseline {metric} {bval:.1f} below noise floor")
                continue
            compared += 1
            if check["direction"] == "higher":
                delta = (bval - cval) / bval * 100.0
                desc = f"{metric} {bval:.1f} -> {cval:.1f} ({delta:+.1f}% drop, limit {pct:.0f}%)"
            else:
                delta = (cval - bval) / bval * 100.0
                desc = f"{metric} {bval:.1f} -> {cval:.1f} ({delta:+.1f}% growth, limit {pct:.0f}%)"
            if delta > pct:
                failures.append(f"{check['name']} [{label}]: {desc}")
                print(f"::error::perf-compare: {check['name']} [{label}]: {desc}")
            else:
                print(f"ok: {check['name']} [{label}]: {desc}")
    if compared == 0:
        print("::error::perf-compare: no baseline key matched the current run — gate is broken")
        sys.exit(1)
    if failures:
        print(
            f"::error::perf-compare: {len(failures)} regression(s). If this perf profile "
            "change is intended, refresh bench/baselines/ in this commit or add "
            "[skip-perf-gate] to the commit message (see README.md)."
        )
        sys.exit(1)
    print(f"perf-compare: {compared} configurations within thresholds")


if __name__ == "__main__":
    main()
