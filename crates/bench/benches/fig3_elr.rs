//! Criterion bench for Figure 3: one TPC-B transaction's latency under
//! Baseline vs. ELR at moderate skew on a flash-class log — the per-txn view
//! of the throughput speedup the figure reports.

use aether_bench::tpcb::{Tpcb, TpcbConfig};
use aether_core::DeviceKind;
use aether_storage::{CommitProtocol, Db, DbOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_elr");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for protocol in [CommitProtocol::Baseline, CommitProtocol::Elr] {
        let db = Db::open(DbOptions {
            protocol,
            device: DeviceKind::Flash,
            ..DbOptions::default()
        });
        let tpcb = Arc::new(Tpcb::setup(
            &db,
            TpcbConfig {
                accounts: 5_000,
                skew: 0.85,
                ..TpcbConfig::default()
            },
        ));
        // A background contender keeps locks warm so ELR has something to
        // release early against.
        let db2 = Arc::clone(&db);
        let tp2 = Arc::clone(&tpcb);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let contender = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(99);
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                let mut txn = db2.begin();
                match tp2.account_update(&db2, &mut txn, &mut rng) {
                    Ok(()) => {
                        let _ = db2.commit(txn);
                    }
                    Err(_) => {
                        let _ = db2.abort(txn);
                    }
                }
            }
        });
        let mut rng = StdRng::seed_from_u64(1);
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut txn = db.begin();
                    match tpcb.account_update(&db, &mut txn, &mut rng) {
                        Ok(()) => {
                            let _ = db.commit(txn);
                        }
                        Err(_) => {
                            let _ = db.abort(txn);
                        }
                    }
                });
            },
        );
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        contender.join().unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
