//! Criterion bench for Figure 5: per-commit cost of the four commit
//! protocols on a flash-class log (baseline pays the flush; async and
//! pipelined don't block).

use aether_bench::tpcb::{Tpcb, TpcbConfig};
use aether_core::DeviceKind;
use aether_storage::{CommitProtocol, Db, DbOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_commit");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for protocol in CommitProtocol::ALL {
        let db = Db::open(DbOptions {
            protocol,
            device: DeviceKind::Flash,
            ..DbOptions::default()
        });
        let tpcb = Arc::new(Tpcb::setup(
            &db,
            TpcbConfig {
                accounts: 5_000,
                ..TpcbConfig::default()
            },
        ));
        let mut rng = StdRng::seed_from_u64(5);
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut txn = db.begin();
                    tpcb.account_update(&db, &mut txn, &mut rng).unwrap();
                    let _ = db.commit(txn).unwrap();
                });
            },
        );
        let _ = db.log().flush_all();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
