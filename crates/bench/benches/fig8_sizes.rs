//! Criterion bench for Figure 8 (right): insert cost per record size, per
//! variant (48 B .. 12 KiB on-log records), normalized to time per MB.

use aether_bench::micro::{run_micro, MicroConfig, SizeDist};
use aether_core::record::HEADER_SIZE;
use aether_core::BufferKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_sizes");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in [
        BufferKind::Baseline,
        BufferKind::Hybrid,
        BufferKind::Delegated,
    ] {
        for record in [48usize, 120, 1160, 12296] {
            let cfg = MicroConfig {
                kind,
                threads: 4,
                dist: SizeDist::Fixed(record - HEADER_SIZE),
                duration: Duration::from_millis(100),
                backoff: true,
                ..MicroConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(kind.label(), record), &cfg, |b, cfg| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let r = run_micro(cfg);
                        total += Duration::from_secs_f64(r.wall_s / (r.bytes as f64 / 1e6));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
