//! Criterion bench for Figure 12: hybrid-buffer cost vs. number of
//! consolidation-array slots (time per MB; the paper's optimum is 3–4).

use aether_bench::micro::{run_micro, MicroConfig, SizeDist};
use aether_core::record::HEADER_SIZE;
use aether_core::BufferKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_slots");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for slots in [1usize, 2, 4, 8] {
        let cfg = MicroConfig {
            kind: BufferKind::Hybrid,
            threads: 8,
            dist: SizeDist::Fixed(120 - HEADER_SIZE),
            duration: Duration::from_millis(100),
            backoff: true,
            slots,
            ..MicroConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(slots), &cfg, |b, cfg| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = run_micro(cfg);
                    total += Duration::from_secs_f64(r.wall_s / (r.bytes as f64 / 1e6));
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
