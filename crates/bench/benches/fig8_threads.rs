//! Criterion bench for Figure 8 (left): log-insert throughput per buffer
//! variant as the thread count grows (120-byte records).
//!
//! Uses backoff mode so group formation is exercised even on hosts without
//! enough cores to generate organic lock contention.

use aether_bench::micro::{run_micro, MicroConfig, SizeDist};
use aether_core::record::HEADER_SIZE;
use aether_core::BufferKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_threads");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in BufferKind::ALL {
        for threads in [1usize, 2, 4, 8] {
            let cfg = MicroConfig {
                kind,
                threads,
                dist: SizeDist::Fixed(120 - HEADER_SIZE),
                duration: Duration::from_millis(100),
                backoff: true,
                ..MicroConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(kind.label(), threads), &cfg, |b, cfg| {
                // Report seconds per MB inserted: lower is better, and
                // the inverse is the paper's bandwidth axis.
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let r = run_micro(cfg);
                        total += Duration::from_secs_f64(r.wall_s / (r.bytes as f64 / 1e6));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
