//! Criterion bench for Figure 9: per-transaction cost of TATP
//! UpdateLocation under the three cumulative configurations — baseline,
//! +ELR+flush pipelining, full Aether (hybrid buffer).

use aether_bench::tatp::{Tatp, TatpConfig, TatpTxn};
use aether_core::{BufferKind, DeviceKind};
use aether_storage::{CommitProtocol, Db, DbOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_overall");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    for (label, protocol, buffer) in [
        ("baseline", CommitProtocol::Baseline, BufferKind::Baseline),
        (
            "elr_pipelining",
            CommitProtocol::Pipelined,
            BufferKind::Baseline,
        ),
        ("aether", CommitProtocol::Pipelined, BufferKind::Hybrid),
    ] {
        let db = Db::open(DbOptions {
            protocol,
            buffer,
            device: DeviceKind::Flash,
            ..DbOptions::default()
        });
        let tatp = Arc::new(Tatp::setup(
            &db,
            TatpConfig {
                subscribers: 20_000,
            },
        ));
        let mut rng = StdRng::seed_from_u64(9);
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let mut txn = db.begin();
                tatp.run(TatpTxn::UpdateLocation, &db, &mut txn, &mut rng)
                    .unwrap();
                let _ = db.commit(txn).unwrap();
            });
        });
        let _ = db.log().flush_all();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
