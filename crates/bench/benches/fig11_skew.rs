//! Criterion bench for Figure 11: CD vs. CDME under bimodal record sizes
//! (48 B base + 1-in-60 outlier), normalized to time per MB.

use aether_bench::micro::{run_micro, MicroConfig, SizeDist};
use aether_core::record::HEADER_SIZE;
use aether_core::BufferKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_skew");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in [BufferKind::Hybrid, BufferKind::Delegated] {
        for outlier in [48usize, 8192, 65536] {
            let cfg = MicroConfig {
                kind,
                threads: 4,
                dist: SizeDist::Bimodal {
                    small: 48 - HEADER_SIZE,
                    outlier: outlier.saturating_sub(HEADER_SIZE).max(8),
                    outlier_every: 60,
                },
                duration: Duration::from_millis(100),
                backoff: true,
                buffer_size: 128 << 20,
                ..MicroConfig::default()
            };
            g.bench_with_input(BenchmarkId::new(kind.label(), outlier), &cfg, |b, cfg| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let r = run_micro(cfg);
                        total += Duration::from_secs_f64(r.wall_s / (r.bytes as f64 / 1e6));
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
