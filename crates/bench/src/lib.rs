//! Criterion bench crate for Aether (bench targets live in benches/).
