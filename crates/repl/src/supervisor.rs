//! Cluster supervision: a watchdog actor that keeps a [`ReplicatedDb`]
//! healthy without operator action.
//!
//! The supervisor owns the cluster and probes it on a fixed cadence:
//!
//! * **Replica healing.** A replica whose gate-side ack watermark trails
//!   the primary's durable frontier by more than
//!   [`SupervisorConfig::lag_bytes`] continuously for
//!   [`SupervisorConfig::lag_grace`] is quarantined and replaced via
//!   [`ReplicatedDb::heal_replica`]: a fresh pipeline is seeded from a new
//!   checkpoint snapshot, and the laggard's stalled watermark is
//!   unregistered so it stops clamping log truncation and holding the
//!   replication floor down. The lag signal is primary-side on purpose — a
//!   replica with a dead apply thread cannot report its own status.
//! * **Failover.** A poisoned primary log (terminal I/O failure — see
//!   `AetherError::Poisoned`) or a poisoned commit gate means the primary
//!   is done. The supervisor releases any committers still blocked on
//!   replica acks, picks the most-caught-up replica, and promotes it to a
//!   standalone primary through full ARIES recovery over the shipped
//!   prefix. The promoted database is then available from
//!   [`Supervisor::promoted`] / [`Supervisor::wait_promoted`].
//!
//! All timing goes through [`aether_core::runtime`], so a supervised
//! cluster is deterministic under a simulated runtime like everything else.

use crate::cluster::ReplicatedDb;
use aether_core::runtime;
use aether_storage::db::Db;
use aether_storage::recovery::RecoveryStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Supervisor tuning.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Health-probe cadence.
    pub probe: Duration,
    /// Ack lag (bytes behind the primary's durable frontier) beyond which a
    /// replica counts as lagging.
    pub lag_bytes: u64,
    /// How long a replica may stay lagging before it is quarantined and
    /// healed. Grace absorbs transient lag spikes (a big commit group, a
    /// slow-link burst) that would otherwise cause heal thrash.
    pub lag_grace: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            probe: Duration::from_millis(2),
            lag_bytes: 256 * 1024,
            lag_grace: Duration::from_millis(20),
        }
    }
}

/// What the supervisor has done so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisorReport {
    /// Health probes completed.
    pub probes: u64,
    /// Replica pipelines quarantined and replaced.
    pub heals: u64,
    /// Failovers performed (0 or 1 — promotion ends supervision).
    pub promotions: u64,
}

enum SupState {
    Running(ReplicatedDb),
    Promoted {
        db: Arc<Db>,
        stats: RecoveryStats,
    },
    /// Failover was required but promotion itself failed — terminal.
    Failed(String),
    Stopped,
}

struct SupShared {
    state: Mutex<SupState>,
    probes: AtomicU64,
    heals: AtomicU64,
    promotions: AtomicU64,
    /// Wakes `wait_promoted` once the state leaves `Running`.
    done_mutex: Mutex<()>,
    done_cv: runtime::RtCondvar,
}

/// A running supervisor: owns the cluster, heals laggards, fails over on
/// primary death. See the module docs for the policy.
pub struct Supervisor {
    shared: Arc<SupShared>,
    stop: Arc<AtomicBool>,
    thread: Option<runtime::JoinHandle<()>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = self.report();
        f.debug_struct("Supervisor")
            .field("probes", &r.probes)
            .field("heals", &r.heals)
            .field("promotions", &r.promotions)
            .finish()
    }
}

impl Supervisor {
    /// Take ownership of `cluster` and start supervising it under `cfg`.
    pub fn start(cluster: ReplicatedDb, cfg: SupervisorConfig) -> Supervisor {
        let rt = cluster.primary().log().config().runtime.clone();
        let shared = Arc::new(SupShared {
            state: Mutex::new(SupState::Running(cluster)),
            probes: AtomicU64::new(0),
            heals: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            done_mutex: Mutex::new(()),
            done_cv: runtime::RtCondvar::new(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            rt.spawn("aether-supervisor", move || watch_loop(shared, stop, cfg))
        };
        Supervisor {
            shared,
            stop,
            thread: Some(thread),
        }
    }

    /// Counters so far.
    pub fn report(&self) -> SupervisorReport {
        SupervisorReport {
            probes: self.shared.probes.load(Ordering::Relaxed),
            heals: self.shared.heals.load(Ordering::Relaxed),
            promotions: self.shared.promotions.load(Ordering::Relaxed),
        }
    }

    /// The current primary: the supervised cluster's while it is healthy,
    /// the promoted replica's database after a failover, `None` if
    /// supervision ended without a usable primary.
    pub fn primary(&self) -> Option<Arc<Db>> {
        match &*self.shared.state.lock() {
            SupState::Running(c) => Some(Arc::clone(c.primary())),
            SupState::Promoted { db, .. } => Some(Arc::clone(db)),
            _ => None,
        }
    }

    /// The promoted post-failover primary, with its recovery statistics.
    pub fn promoted(&self) -> Option<(Arc<Db>, RecoveryStats)> {
        match &*self.shared.state.lock() {
            SupState::Promoted { db, stats } => Some((Arc::clone(db), stats.clone())),
            _ => None,
        }
    }

    /// Why failover failed, if it did.
    pub fn failure(&self) -> Option<String> {
        match &*self.shared.state.lock() {
            SupState::Failed(e) => Some(e.clone()),
            _ => None,
        }
    }

    /// Block until a failover completes (returning the promoted primary) or
    /// `timeout` elapses (`None` — the cluster may simply be healthy).
    pub fn wait_promoted(&self, timeout: Duration) -> Option<(Arc<Db>, RecoveryStats)> {
        let deadline = runtime::monotonic_ns().saturating_add(timeout.as_nanos() as u64);
        let mut g = self.shared.done_mutex.lock();
        loop {
            if let Some(p) = self.promoted() {
                return Some(p);
            }
            if self.failure().is_some() {
                return None;
            }
            let now = runtime::monotonic_ns();
            if now >= deadline {
                return None;
            }
            let left = Duration::from_nanos(deadline - now);
            let (g2, _) = self
                .shared
                .done_cv
                .wait_for(&self.shared.done_mutex, g, left);
            g = g2;
        }
    }

    /// Stop the watchdog (idempotent). The cluster (or promoted primary)
    /// stays in place; reclaim a still-healthy cluster with
    /// [`Supervisor::release`].
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Stop supervising and hand the cluster back, if no failover consumed
    /// it.
    pub fn release(mut self) -> Option<ReplicatedDb> {
        self.stop();
        let mut st = self.shared.state.lock();
        match std::mem::replace(&mut *st, SupState::Stopped) {
            SupState::Running(c) => Some(c),
            other => {
                *st = other;
                None
            }
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop();
    }
}

fn watch_loop(shared: Arc<SupShared>, stop: Arc<AtomicBool>, cfg: SupervisorConfig) {
    let grace_ns = cfg.lag_grace.as_nanos() as u64;
    // Runtime-monotonic instant each replica's lag episode began; None
    // while within bounds. Index-parallel with the cluster's pipelines.
    let mut lag_since: Vec<Option<u64>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut st = shared.state.lock();
        let cluster = match &mut *st {
            SupState::Running(c) => c,
            _ => return,
        };
        shared.probes.fetch_add(1, Ordering::Relaxed);

        // Primary death: poisoned log (terminal I/O failure) or poisoned
        // commit gate (replication declared dead).
        let log = Arc::clone(cluster.primary().log());
        if log.is_poisoned() || log.commit_gate().is_poisoned() {
            let cluster = match std::mem::replace(&mut *st, SupState::Stopped) {
                SupState::Running(c) => c,
                _ => unreachable!("state checked above"),
            };
            *st = promote_best(cluster, &shared);
            drop(st);
            let _g = shared.done_mutex.lock();
            shared.done_cv.notify_all();
            return;
        }

        // Replica lag: primary-side ack watermarks vs the durable frontier.
        let durable = log.durable_lsn();
        let n = cluster.replicas().len();
        lag_since.resize(n, None);
        let now = runtime::monotonic_ns();
        let mut heal = None;
        for (i, since) in lag_since.iter_mut().enumerate() {
            if durable.since(cluster.ack_lsn(i)) > cfg.lag_bytes {
                let t0 = *since.get_or_insert(now);
                if now.saturating_sub(t0) >= grace_ns && heal.is_none() {
                    heal = Some(i);
                }
            } else {
                *since = None;
            }
        }
        // One heal per probe: each heal takes a checkpoint snapshot, and a
        // mass outage should converge a pipeline at a time, not stampede.
        if let Some(i) = heal {
            if cluster.heal_replica(i).is_ok() {
                shared.heals.fetch_add(1, Ordering::Relaxed);
                lag_since[i] = None;
            }
        }
        drop(st);
        runtime::sleep(cfg.probe);
    }
}

/// Failover: release blocked committers, promote the most-caught-up
/// replica.
fn promote_best(mut cluster: ReplicatedDb, shared: &SupShared) -> SupState {
    // Poison the gate (idempotent) so committers blocked on acks return
    // Unsafe instead of hanging while recovery runs.
    cluster.kill_primary();
    let i = cluster.most_caught_up();
    match cluster.promote(i) {
        Ok((db, stats)) => {
            shared.promotions.fetch_add(1, Ordering::Relaxed);
            SupState::Promoted { db, stats }
        }
        Err(e) => SupState::Failed(e.to_string()),
    }
}
