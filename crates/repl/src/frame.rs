//! Wire framing for shipped log runs and snapshot bootstraps.
//!
//! The shipper cuts the primary's durable log into byte runs and wraps each
//! in a frame carrying a sequence number (so the receiver can restore order
//! over a reordering link), the run's start LSN (so a restored stream is
//! also position-checked), and a CRC32 over header + body (so a corrupted
//! frame is *detected and dropped* rather than appended — the replica's log
//! then simply stops advancing at the gap, the wire analogue of recovery
//! stopping at the first torn record).
//!
//! A second message kind, [`SnapshotFrame`], carries a serialized
//! [`aether_storage::replay::BaseSnapshot`]: when the primary's log has
//! been truncated past the shipper's read position, re-sending the missing
//! bytes is impossible — they no longer exist — so the shipper ships a
//! checkpoint snapshot instead and resumes log frames from its LSN. Both
//! kinds share one sequence-number space, so the replica restores a total
//! order over an arbitrarily reordering link.

use aether_core::record::{crc32_finish, crc32_update, CRC32_INIT};
use aether_core::Lsn;

/// Frame header size on the wire.
pub const FRAME_HEADER: usize = 28;

/// Magic tag opening every frame.
pub const FRAME_MAGIC: u32 = 0xAE7E_F14E;

/// One shipped run of log bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Per-link sequence number (contiguous from 0).
    pub seq: u64,
    /// LSN of the first byte of `bytes` in the primary's log stream.
    pub start_lsn: Lsn,
    /// The raw log bytes (whole records or arbitrary splits — the replica
    /// appends bytes; record boundaries are the log reader's business).
    pub bytes: Vec<u8>,
}

impl Frame {
    /// End LSN of the run (`start_lsn + len`).
    pub fn end_lsn(&self) -> Lsn {
        self.start_lsn.advance(self.bytes.len() as u64)
    }

    /// Serialize: `[magic u32][seq u64][start_lsn u64][len u32][crc u32]`
    /// then the body. The CRC covers the header (with the CRC field zeroed)
    /// and the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER + self.bytes.len());
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.start_lsn.raw().to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
        out.extend_from_slice(&self.bytes);
        let crc = crc32_finish(crc32_update(CRC32_INIT, &out));
        out[24..28].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and CRC-check a frame; `None` for anything malformed.
    pub fn decode(buf: &[u8]) -> Option<Frame> {
        if buf.len() < FRAME_HEADER {
            return None;
        }
        if u32::from_le_bytes(buf[0..4].try_into().ok()?) != FRAME_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let start_lsn = Lsn(u64::from_le_bytes(buf[12..20].try_into().ok()?));
        let len = u32::from_le_bytes(buf[20..24].try_into().ok()?) as usize;
        if buf.len() != FRAME_HEADER + len {
            return None;
        }
        let stored_crc = u32::from_le_bytes(buf[24..28].try_into().ok()?);
        let mut crc = crc32_update(CRC32_INIT, &buf[..24]);
        crc = crc32_update(crc, &[0u8; 4]);
        crc = crc32_update(crc, &buf[FRAME_HEADER..]);
        if crc32_finish(crc) != stored_crc {
            return None;
        }
        Some(Frame {
            seq,
            start_lsn,
            bytes: buf[FRAME_HEADER..].to_vec(),
        })
    }
}

/// Frame-header size of a [`SnapshotFrame`] on the wire.
pub const SNAPSHOT_HEADER: usize = 20;

/// Magic tag opening a snapshot frame.
pub const SNAPSHOT_MAGIC: u32 = 0xAE7E_5EED;

/// A snapshot bootstrap message: a serialized
/// [`aether_storage::replay::BaseSnapshot`] in the shipping stream's
/// sequence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// Per-link sequence number, shared with log [`Frame`]s.
    pub seq: u64,
    /// The encoded base snapshot.
    pub body: Vec<u8>,
}

impl SnapshotFrame {
    /// Serialize: `[magic u32][seq u64][len u32][crc u32]` then the body;
    /// CRC32 over header (CRC field zeroed) + body, as for [`Frame`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER + self.body.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
        out.extend_from_slice(&self.body);
        let crc = crc32_finish(crc32_update(CRC32_INIT, &out));
        out[16..20].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and CRC-check; `None` for anything malformed.
    pub fn decode(buf: &[u8]) -> Option<SnapshotFrame> {
        if buf.len() < SNAPSHOT_HEADER {
            return None;
        }
        if u32::from_le_bytes(buf[0..4].try_into().ok()?) != SNAPSHOT_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let len = u32::from_le_bytes(buf[12..16].try_into().ok()?) as usize;
        if buf.len() != SNAPSHOT_HEADER + len {
            return None;
        }
        let stored_crc = u32::from_le_bytes(buf[16..20].try_into().ok()?);
        let mut crc = crc32_update(CRC32_INIT, &buf[..16]);
        crc = crc32_update(crc, &[0u8; 4]);
        crc = crc32_update(crc, &buf[SNAPSHOT_HEADER..]);
        if crc32_finish(crc) != stored_crc {
            return None;
        }
        Some(SnapshotFrame {
            seq,
            body: buf[SNAPSHOT_HEADER..].to_vec(),
        })
    }
}

/// Any message of the shipping stream, dispatched on the magic tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// A run of log bytes.
    Log(Frame),
    /// A snapshot bootstrap.
    Snapshot(SnapshotFrame),
}

impl WireMsg {
    /// Decode either message kind; `None` for anything malformed.
    pub fn decode(buf: &[u8]) -> Option<WireMsg> {
        let magic = u32::from_le_bytes(buf.get(0..4)?.try_into().ok()?);
        match magic {
            FRAME_MAGIC => Frame::decode(buf).map(WireMsg::Log),
            SNAPSHOT_MAGIC => SnapshotFrame::decode(buf).map(WireMsg::Snapshot),
            _ => None,
        }
    }

    /// The message's position in the shared sequence space.
    pub fn seq(&self) -> u64 {
        match self {
            WireMsg::Log(f) => f.seq,
            WireMsg::Snapshot(s) => s.seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = Frame {
            seq: 42,
            start_lsn: Lsn(4096),
            bytes: (0..200u8).collect(),
        };
        let enc = f.encode();
        assert_eq!(Frame::decode(&enc).unwrap(), f);
        assert_eq!(f.end_lsn(), Lsn(4096 + 200));
    }

    #[test]
    fn empty_body_roundtrips() {
        let f = Frame {
            seq: 0,
            start_lsn: Lsn::ZERO,
            bytes: vec![],
        };
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn corruption_detected_anywhere() {
        let f = Frame {
            seq: 7,
            start_lsn: Lsn(64),
            bytes: vec![0xAB; 100],
        };
        let enc = f.encode();
        for at in [0, 5, 13, 21, 25, FRAME_HEADER, enc.len() - 1] {
            let mut bad = enc.clone();
            bad[at] ^= 0x10;
            assert!(Frame::decode(&bad).is_none(), "flip at {at} undetected");
        }
        // Truncation detected.
        assert!(Frame::decode(&enc[..enc.len() - 1]).is_none());
        assert!(Frame::decode(&enc[..10]).is_none());
    }

    #[test]
    fn snapshot_frame_roundtrip_and_corruption() {
        let s = SnapshotFrame {
            seq: 9,
            body: (0..250u8).collect(),
        };
        let enc = s.encode();
        assert_eq!(SnapshotFrame::decode(&enc).unwrap(), s);
        for at in [0, 7, 17, SNAPSHOT_HEADER, enc.len() - 1] {
            let mut bad = enc.clone();
            bad[at] ^= 0x04;
            assert!(SnapshotFrame::decode(&bad).is_none(), "flip at {at}");
        }
        assert!(SnapshotFrame::decode(&enc[..enc.len() - 1]).is_none());
    }

    #[test]
    fn wire_msg_dispatches_on_magic() {
        let f = Frame {
            seq: 1,
            start_lsn: Lsn(10),
            bytes: vec![1, 2, 3],
        };
        let s = SnapshotFrame {
            seq: 2,
            body: vec![4, 5],
        };
        assert_eq!(WireMsg::decode(&f.encode()), Some(WireMsg::Log(f.clone())));
        assert_eq!(
            WireMsg::decode(&s.encode()),
            Some(WireMsg::Snapshot(s.clone()))
        );
        assert_eq!(WireMsg::decode(&f.encode()).unwrap().seq(), 1);
        assert_eq!(WireMsg::decode(&s.encode()).unwrap().seq(), 2);
        assert!(WireMsg::decode(&[0u8; 40]).is_none());
        assert!(WireMsg::decode(b"ab").is_none());
    }
}
