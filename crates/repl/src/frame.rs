//! Wire framing for shipped log runs.
//!
//! The shipper cuts the primary's durable log into byte runs and wraps each
//! in a frame carrying a sequence number (so the receiver can restore order
//! over a reordering link), the run's start LSN (so a restored stream is
//! also position-checked), and a CRC32 over header + body (so a corrupted
//! frame is *detected and dropped* rather than appended — the replica's log
//! then simply stops advancing at the gap, the wire analogue of recovery
//! stopping at the first torn record).

use aether_core::record::{crc32_finish, crc32_update, CRC32_INIT};
use aether_core::Lsn;

/// Frame header size on the wire.
pub const FRAME_HEADER: usize = 28;

/// Magic tag opening every frame.
pub const FRAME_MAGIC: u32 = 0xAE7E_F14E;

/// One shipped run of log bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Per-link sequence number (contiguous from 0).
    pub seq: u64,
    /// LSN of the first byte of `bytes` in the primary's log stream.
    pub start_lsn: Lsn,
    /// The raw log bytes (whole records or arbitrary splits — the replica
    /// appends bytes; record boundaries are the log reader's business).
    pub bytes: Vec<u8>,
}

impl Frame {
    /// End LSN of the run (`start_lsn + len`).
    pub fn end_lsn(&self) -> Lsn {
        self.start_lsn.advance(self.bytes.len() as u64)
    }

    /// Serialize: `[magic u32][seq u64][start_lsn u64][len u32][crc u32]`
    /// then the body. The CRC covers the header (with the CRC field zeroed)
    /// and the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER + self.bytes.len());
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.start_lsn.raw().to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
        out.extend_from_slice(&self.bytes);
        let crc = crc32_finish(crc32_update(CRC32_INIT, &out));
        out[24..28].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and CRC-check a frame; `None` for anything malformed.
    pub fn decode(buf: &[u8]) -> Option<Frame> {
        if buf.len() < FRAME_HEADER {
            return None;
        }
        if u32::from_le_bytes(buf[0..4].try_into().ok()?) != FRAME_MAGIC {
            return None;
        }
        let seq = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let start_lsn = Lsn(u64::from_le_bytes(buf[12..20].try_into().ok()?));
        let len = u32::from_le_bytes(buf[20..24].try_into().ok()?) as usize;
        if buf.len() != FRAME_HEADER + len {
            return None;
        }
        let stored_crc = u32::from_le_bytes(buf[24..28].try_into().ok()?);
        let mut crc = crc32_update(CRC32_INIT, &buf[..24]);
        crc = crc32_update(crc, &[0u8; 4]);
        crc = crc32_update(crc, &buf[FRAME_HEADER..]);
        if crc32_finish(crc) != stored_crc {
            return None;
        }
        Some(Frame {
            seq,
            start_lsn,
            bytes: buf[FRAME_HEADER..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = Frame {
            seq: 42,
            start_lsn: Lsn(4096),
            bytes: (0..200u8).collect(),
        };
        let enc = f.encode();
        assert_eq!(Frame::decode(&enc).unwrap(), f);
        assert_eq!(f.end_lsn(), Lsn(4096 + 200));
    }

    #[test]
    fn empty_body_roundtrips() {
        let f = Frame {
            seq: 0,
            start_lsn: Lsn::ZERO,
            bytes: vec![],
        };
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn corruption_detected_anywhere() {
        let f = Frame {
            seq: 7,
            start_lsn: Lsn(64),
            bytes: vec![0xAB; 100],
        };
        let enc = f.encode();
        for at in [0, 5, 13, 21, 25, FRAME_HEADER, enc.len() - 1] {
            let mut bad = enc.clone();
            bad[at] ^= 0x10;
            assert!(Frame::decode(&bad).is_none(), "flip at {at} undetected");
        }
        // Truncation detected.
        assert!(Frame::decode(&enc[..enc.len() - 1]).is_none());
        assert!(Frame::decode(&enc[..10]).is_none());
    }
}
