//! Wiring: a primary database with N log-shipping replicas.
//!
//! [`ReplicatedDb::attach`] takes a prepared primary (tables created, bulk
//! load done, [`Db::setup_complete`] called), captures a checkpoint
//! [`BaseSnapshot`] (pages + ATT/DPT + the truncation-safe start LSN),
//! seeds each replica from it, builds the frame/ack links, spawns replicas
//! and shippers, and installs the durability policy on the primary's
//! commit gate. From then on every commit obeys the policy: `Async` acks
//! locally, `SemiSync(k)` / `Quorum(k of n)` additionally wait for `k`
//! replica acks — amortized per flush group, not per transaction.
//!
//! Because every replica starts from a snapshot rather than LSN 0,
//! [`ReplicatedDb::add_replica`] can join a **fresh replica to a
//! long-running cluster whose log prefix has long been recycled** — the
//! defining requirement for running replication and checkpoint-driven log
//! truncation together.

use crate::replica::{Replica, ReplicaConfig, ReplicaStatus};
use crate::router::{ReadRouter, RouterConfig};
use crate::shipper::{Shipper, ShipperConfig};
use crate::transport::{link, LinkConfig};
use aether_core::commit::{CommitToken, DurabilityPolicy, ReplicaAck};
use aether_core::runtime;
use aether_core::Lsn;
use aether_storage::db::Db;
use aether_storage::error::StorageResult;
use aether_storage::recovery::RecoveryStats;
use aether_storage::replay::{self, BaseSnapshot};
use aether_storage::txn::{CommitOutcome, Transaction};
use std::sync::Arc;
use std::time::Duration;

/// Cluster-level replication settings.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Commit durability policy installed on the primary.
    pub policy: DurabilityPolicy,
    /// Simulated link between primary and each replica (both directions).
    pub link: LinkConfig,
    /// Shipper tuning.
    pub shipper: ShipperConfig,
    /// Replica tuning.
    pub replica: ReplicaConfig,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replicas: 1,
            policy: DurabilityPolicy::SemiSync(1),
            link: LinkConfig::default(),
            shipper: ShipperConfig::default(),
            replica: ReplicaConfig::default(),
        }
    }
}

/// A primary plus its shipping pipelines and replicas.
pub struct ReplicatedDb {
    primary: Arc<Db>,
    shippers: Vec<Shipper>,
    replicas: Vec<Replica>,
    /// Gate-side ack handle per pipeline (index-parallel with the other
    /// vecs); kept so [`ReplicatedDb::heal_replica`] can unregister a dead
    /// pipeline's watermark instead of letting it clamp truncation forever.
    acks: Vec<Arc<ReplicaAck>>,
    cfg: ReplicationConfig,
}

impl std::fmt::Debug for ReplicatedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedDb")
            .field("replicas", &self.replicas.len())
            .finish()
    }
}

impl ReplicatedDb {
    /// Attach `cfg.replicas` replicas to a prepared primary and install the
    /// durability policy. Each replica bootstraps from a checkpoint
    /// [`BaseSnapshot`] — pages, ATT/DPT and the truncation-safe start LSN
    /// — so attach works identically on a fresh primary and on one whose
    /// log prefix has already been recycled; the log is shipped from the
    /// snapshot LSN onward (replay is idempotent over any overlap thanks to
    /// page LSNs).
    pub fn attach(primary: Arc<Db>, cfg: ReplicationConfig) -> StorageResult<ReplicatedDb> {
        let mut cluster = ReplicatedDb {
            primary,
            shippers: Vec::with_capacity(cfg.replicas),
            replicas: Vec::with_capacity(cfg.replicas),
            acks: Vec::with_capacity(cfg.replicas),
            cfg,
        };
        let snap = replay::base_snapshot(&cluster.primary);
        for _ in 0..cluster.cfg.replicas {
            let link = cluster.cfg.link.clone();
            cluster.spawn_pipeline(&snap, link)?;
        }
        // Policy last: commits block on acks only once replicas exist.
        cluster
            .primary
            .log()
            .set_durability_policy(cluster.cfg.policy);
        Ok(cluster)
    }

    /// Join one more replica to a *running* cluster. The newcomer bootstraps
    /// from a fresh checkpoint snapshot and receives log frames only from
    /// the snapshot LSN onward — the recycled history below the log's
    /// low-water mark is never needed, which is what keeps long-running
    /// replicated clusters (re)seedable at all. Returns the new replica's
    /// index.
    pub fn add_replica(&mut self) -> StorageResult<usize> {
        let snap = replay::base_snapshot(&self.primary);
        let link = self.cfg.link.clone();
        self.spawn_pipeline(&snap, link)?;
        Ok(self.replicas.len() - 1)
    }

    /// [`ReplicatedDb::add_replica`] with a per-replica link instead of the
    /// cluster-wide one — the way to wire a deliberately slow (lagging)
    /// replica next to healthy ones, as the router quarantine tests and the
    /// simulator's lagging-replica fault do. Returns the new replica's
    /// index.
    pub fn add_replica_with_link(&mut self, link: LinkConfig) -> StorageResult<usize> {
        let snap = replay::base_snapshot(&self.primary);
        self.spawn_pipeline(&snap, link)?;
        Ok(self.replicas.len() - 1)
    }

    /// Build one replica + shipper pipeline seeded from `snap`, connected
    /// over `link_cfg`, and append it to the cluster.
    fn spawn_pipeline(&mut self, snap: &BaseSnapshot, link_cfg: LinkConfig) -> StorageResult<()> {
        let (replica, shipper, ack) = self.build_pipeline(snap, link_cfg)?;
        self.replicas.push(replica);
        self.shippers.push(shipper);
        self.acks.push(ack);
        Ok(())
    }

    /// Build one replica + shipper pipeline seeded from `snap` without
    /// attaching it — the caller decides whether it appends (new replica)
    /// or replaces a quarantined one in place ([`ReplicatedDb::heal_replica`]).
    fn build_pipeline(
        &self,
        snap: &BaseSnapshot,
        link_cfg: LinkConfig,
    ) -> StorageResult<(Replica, Shipper, Arc<ReplicaAck>)> {
        let cfg = &self.cfg;
        let (frame_tx, frame_rx) = link::<Vec<u8>>(link_cfg.clone());
        let (ack_tx, ack_rx) = link::<Lsn>(LinkConfig {
            // Acks never reorder meaningfully (cumulative max), so the
            // return path only carries the latency. The chaos switch is
            // shared: a partition cuts both directions at once.
            latency: link_cfg.latency,
            reorder_period: 0,
            runtime: link_cfg.runtime.clone(),
            chaos: link_cfg.chaos.clone(),
        });
        let replica = Replica::spawn_from_snapshot(
            self.primary.options().clone(),
            snap,
            frame_rx,
            ack_tx,
            cfg.replica.clone(),
        )?;
        // The snapshot implicitly covers everything below its LSN, so the
        // newcomer must not drag the truncation clamp (slowest ack) to 0.
        let ack = self
            .primary
            .log()
            .commit_gate()
            .register_replica_at(snap.start_lsn);
        let shipper = Shipper::spawn(
            Arc::clone(&self.primary),
            frame_tx,
            ack_rx,
            Arc::clone(&ack),
            snap.start_lsn,
            cfg.shipper.clone(),
        );
        Ok((replica, shipper, ack))
    }

    /// Replace replica `i`'s entire pipeline with a fresh one seeded from a
    /// new checkpoint snapshot — the supervision path for a replica that
    /// fell irrecoverably behind (dead apply thread, wedged link, stalled
    /// acks). The replacement is built *first*, so a failure leaves the old
    /// pipeline untouched; then the old shipper and replica are stopped and
    /// the old ack watermark is unregistered from the commit gate, so the
    /// quarantined replica stops clamping log truncation and holding the
    /// replication floor down. Existing [`ReadRouter`]s keep serving from
    /// the old (frozen) standby; rebuild them after a heal.
    pub fn heal_replica(&mut self, i: usize) -> StorageResult<()> {
        if i >= self.replicas.len() || self.shippers.len() != self.replicas.len() {
            return Err(aether_core::AetherError::Config(format!(
                "heal_replica({i}): no active pipeline at that index"
            ))
            .into());
        }
        let snap = replay::base_snapshot(&self.primary);
        let (replica, shipper, ack) = self.build_pipeline(&snap, self.cfg.link.clone())?;
        // New ack registered before the old is removed: replica_count never
        // dips, so a SemiSync/Quorum floor cannot transiently misfire.
        let mut old_shipper = std::mem::replace(&mut self.shippers[i], shipper);
        let mut old_replica = std::mem::replace(&mut self.replicas[i], replica);
        let old_ack = std::mem::replace(&mut self.acks[i], ack);
        old_shipper.stop();
        old_replica.stop();
        self.primary
            .log()
            .commit_gate()
            .unregister_replica(&old_ack);
        // Dropping the laggard's watermark may complete gated commits.
        self.primary.log().replication_recheck();
        Ok(())
    }

    /// The commit gate's view of replica `i`'s acknowledged watermark — the
    /// primary-side lag signal supervision acts on (replica-side status
    /// needs the replica to still be responsive; this does not).
    pub fn ack_lsn(&self, i: usize) -> Lsn {
        self.acks[i].acked()
    }

    /// The primary database.
    pub fn primary(&self) -> &Arc<Db> {
        &self.primary
    }

    /// Commit on the primary under the cluster's durability policy and
    /// return the commit's [`CommitToken`] alongside the outcome. Feed the
    /// token to a [`crate::router::Session`] and the router's session reads
    /// are guaranteed to observe this commit (read-your-writes).
    pub fn commit(&self, txn: Transaction) -> StorageResult<(CommitOutcome, CommitToken)> {
        self.primary.commit_tokened(txn)
    }

    /// A [`ReadRouter`] serving bounded-staleness reads over this cluster's
    /// replicas, with the primary as the freshness fallback. The router
    /// holds lightweight reader handles — cluster lifecycle ([`promote`],
    /// [`shutdown`]) is unaffected, and several routers (e.g. with
    /// different policies) can coexist over one cluster.
    ///
    /// [`promote`]: ReplicatedDb::promote
    /// [`shutdown`]: ReplicatedDb::shutdown
    pub fn router(&self, cfg: RouterConfig) -> ReadRouter {
        ReadRouter::new(
            Arc::clone(&self.primary),
            self.replicas.iter().map(|r| r.reader()).collect(),
            cfg,
        )
    }

    /// Replica `i`.
    pub fn replica(&self, i: usize) -> &Replica {
        &self.replicas[i]
    }

    /// All replicas.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Status of every replica.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.replicas.iter().map(|r| r.status()).collect()
    }

    /// Block until every replica has replayed the primary's current durable
    /// frontier (true) or `timeout` elapses (false).
    pub fn wait_catchup(&self, timeout: Duration) -> bool {
        let target = self.primary.log().durable_lsn();
        let deadline = runtime::monotonic_ns().saturating_add(timeout.as_nanos() as u64);
        self.replicas.iter().all(|r| {
            let left = deadline.saturating_sub(runtime::monotonic_ns());
            r.wait_replay(target, Duration::from_nanos(left))
        })
    }

    /// Simulate a primary failure: cut the network (stop all shippers) and
    /// poison the commit gate, releasing any committer still blocked on
    /// replica acks. Those commits return [`CommitOutcome::Unsafe`] — on a
    /// real failed primary the client's session dies with an indeterminate
    /// outcome; here the API reports exactly that indeterminacy instead of
    /// a false success. Replicas keep whatever they durably received.
    ///
    /// [`CommitOutcome::Unsafe`]: aether_storage::CommitOutcome::Unsafe
    pub fn kill_primary(&mut self) {
        for s in &mut self.shippers {
            s.stop();
        }
        self.shippers.clear();
        self.primary.log().commit_gate().poison();
        self.primary.log().replication_recheck();
    }

    /// Index of the replica with the most durably-received bytes — the
    /// failover candidate (under `SemiSync(k)`/`Quorum(k)`, every acked
    /// commit is on at least `k` replicas, so the most-caught-up one has
    /// them all).
    pub fn most_caught_up(&self) -> usize {
        self.replicas
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.status().received_lsn)
            .map(|(i, _)| i)
            .expect("at least one replica")
    }

    /// Promote replica `i` to a standalone primary via ARIES recovery over
    /// its shipped log prefix; consumes the cluster (the old primary is
    /// dead, the other replicas would re-seed from the new primary).
    pub fn promote(mut self, i: usize) -> StorageResult<(Arc<Db>, RecoveryStats)> {
        for s in &mut self.shippers {
            s.stop();
        }
        self.shippers.clear();
        let replica = self.replicas.swap_remove(i);
        replica.promote()
    }

    /// Detach replication gracefully: stop shippers and replicas and
    /// uninstall the durability policy, so the primary stays fully usable —
    /// subsequent commits are local-only instead of blocking forever on
    /// acks that will never come.
    pub fn shutdown(&mut self) {
        for s in &mut self.shippers {
            s.stop();
        }
        self.shippers.clear();
        for r in &mut self.replicas {
            r.stop();
        }
        self.primary
            .log()
            .set_durability_policy(DurabilityPolicy::Async);
    }
}

impl Drop for ReplicatedDb {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aether_storage::DbOptions;
    use std::time::Duration;

    fn small_primary() -> Arc<Db> {
        let db = Db::open(DbOptions::default());
        db.create_table(16, 4);
        for k in 0..4u64 {
            let mut rec = vec![0u8; 16];
            rec[..8].copy_from_slice(&k.to_le_bytes());
            db.load(0, k, &rec).unwrap();
        }
        db.setup_complete();
        db
    }

    #[test]
    fn shutdown_detaches_policy_so_primary_stays_usable() {
        let primary = small_primary();
        let mut cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 1,
                policy: DurabilityPolicy::SemiSync(1),
                ..ReplicationConfig::default()
            },
        )
        .unwrap();
        let mut txn = primary.begin();
        primary.update_with(&mut txn, 0, 1, |r| r[8] = 1).unwrap();
        assert!(primary.commit(txn).unwrap().is_durable_now());
        assert!(cluster.wait_catchup(Duration::from_secs(5)));
        cluster.shutdown();
        // With dead shippers the policy must be gone too, or this commit
        // would block forever waiting on acks that can never arrive.
        let mut txn = primary.begin();
        primary.update_with(&mut txn, 0, 2, |r| r[8] = 2).unwrap();
        assert!(primary.commit(txn).unwrap().is_durable_now());
    }

    #[test]
    fn kill_primary_releases_blocked_commits_as_unsafe() {
        let primary = small_primary();
        let mut cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 1,
                policy: DurabilityPolicy::SemiSync(1),
                // A slow link so the kill lands while a commit waits.
                link: LinkConfig::with_latency_us(50_000),
                ..ReplicationConfig::default()
            },
        )
        .unwrap();
        let p2 = Arc::clone(&primary);
        let committer = std::thread::spawn(move || {
            let mut txn = p2.begin();
            p2.update_with(&mut txn, 0, 3, |r| r[8] = 9).unwrap();
            p2.commit(txn).unwrap()
        });
        runtime::sleep(Duration::from_millis(10));
        cluster.kill_primary();
        let outcome = committer.join().unwrap();
        assert!(
            !outcome.is_durable_now(),
            "a commit released by the kill must report Unsafe, not Durable (got {outcome:?})"
        );
    }
}
