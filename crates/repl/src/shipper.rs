//! The log shipper: tails the primary's durable frontier and streams it.
//!
//! One shipper per replica. The ship thread blocks on the primary's
//! [`DurableWatch`] — no spin-polling — and forwards every newly-durable
//! byte run as a CRC-framed message; because the flush daemon advances the
//! durable watermark once per *group* flush, the shipper naturally emits one
//! frame per commit group and the replica acks it with a single message:
//! group commit amortizes the ack round-trip exactly as it amortizes the
//! local sync. The ack thread folds replica acks into the primary's
//! [`CommitGate`] and re-checks pending commits.

use crate::frame::Frame;
use crate::transport::{LinkReceiver, LinkSender};
use aether_core::commit::ReplicaAck;
use aether_core::{LogManager, Lsn};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shipper tuning.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Maximum bytes per frame (runs larger than this are split).
    pub chunk: usize,
    /// Shutdown-responsiveness bound for both threads' blocking waits.
    pub poll: Duration,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        ShipperConfig {
            chunk: 1 << 16,
            poll: Duration::from_millis(5),
        }
    }
}

/// Handle for one primary→replica shipping pipeline (ship + ack threads).
pub struct Shipper {
    stop: Arc<AtomicBool>,
    shipped: Arc<AtomicU64>,
    ship_thread: Option<std::thread::JoinHandle<()>>,
    ack_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Shipper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shipper")
            .field("shipped", &self.shipped_lsn())
            .finish()
    }
}

impl Shipper {
    /// Start shipping `log`'s durable bytes through `tx`, folding acks from
    /// `ack_rx` into `ack` (a handle from
    /// [`aether_core::commit::CommitGate::register_replica`]).
    pub fn spawn(
        log: Arc<LogManager>,
        tx: LinkSender<Vec<u8>>,
        ack_rx: LinkReceiver<Lsn>,
        ack: Arc<ReplicaAck>,
        cfg: ShipperConfig,
    ) -> Shipper {
        let stop = Arc::new(AtomicBool::new(false));
        let shipped = Arc::new(AtomicU64::new(0));

        let ship_thread = {
            let log = Arc::clone(&log);
            let stop = Arc::clone(&stop);
            let shipped = Arc::clone(&shipped);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("aether-shipper".into())
                .spawn(move || {
                    let watch = log.durable_watch();
                    let device = Arc::clone(log.device());
                    let mut at = Lsn::ZERO;
                    let mut seq = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let durable = watch.wait_past(at, cfg.poll);
                        while at < durable {
                            let n = (cfg.chunk as u64).min(durable.since(at)) as usize;
                            let mut bytes = vec![0u8; n];
                            let got = match device.read_at(at.raw(), &mut bytes) {
                                Ok(g) => g,
                                Err(_) => return,
                            };
                            if got == 0 {
                                break;
                            }
                            bytes.truncate(got);
                            let frame = Frame {
                                seq,
                                start_lsn: at,
                                bytes,
                            };
                            if !tx.send(frame.encode()) {
                                return; // replica gone
                            }
                            seq += 1;
                            at = at.advance(got as u64);
                            shipped.store(at.raw(), Ordering::Release);
                        }
                    }
                })
                .expect("spawn ship thread")
        };

        let ack_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("aether-shipper-ack".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(lsn) = ack_rx.recv_timeout(cfg.poll) {
                            ack.advance(lsn);
                            // Drain any further queued acks before the (per
                            // flush-group, not per-commit) recheck.
                            while let Some(more) = ack_rx.try_recv() {
                                ack.advance(more);
                            }
                            log.replication_recheck();
                        }
                    }
                })
                .expect("spawn ack thread")
        };

        Shipper {
            stop,
            shipped,
            ship_thread: Some(ship_thread),
            ack_thread: Some(ack_thread),
        }
    }

    /// Highest LSN shipped so far.
    pub fn shipped_lsn(&self) -> Lsn {
        Lsn(self.shipped.load(Ordering::Acquire))
    }

    /// Stop both threads (idempotent). Dropping the shipper also stops it —
    /// the model for "the network to this replica is cut".
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.ship_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.ack_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        self.stop();
    }
}
