//! The log shipper: tails the primary's durable frontier and streams it.
//!
//! One shipper per replica. The ship thread blocks on the primary's
//! [`aether_core::manager::DurableWatch`] — no spin-polling — and forwards
//! every newly-durable byte run as a CRC-framed message; because the flush
//! daemon advances the durable watermark once per *group* flush, the
//! shipper naturally emits one frame per commit group and the replica acks
//! it with a single message: group commit amortizes the ack round-trip
//! exactly as it amortizes the local sync. The ack thread folds replica
//! acks into the primary's [`aether_core::commit::CommitGate`] and
//! re-checks pending commits.
//!
//! ## Falling behind the truncated prefix
//!
//! Checkpoint-driven truncation ([`aether_core::LogManager::truncate_to`])
//! normally never outruns a registered replica's acks. But a forced
//! truncation (bounded-disk emergency) — or a shipper attached with a
//! stale start position — can leave the read cursor below the log's
//! low-water mark, where the bytes no longer exist. The shipper detects
//! this, captures a fresh checkpoint [`BaseSnapshot`] from the primary
//! (pages + ATT/DPT), ships it as a [`SnapshotFrame`] in sequence order,
//! and resumes log frames from the snapshot LSN. The replica re-seeds
//! itself; no historical log is ever required again.

use crate::frame::{Frame, SnapshotFrame};
use crate::transport::{LinkReceiver, LinkSender};
use aether_core::commit::ReplicaAck;
use aether_core::telemetry::{Stage, Unit};
use aether_core::Lsn;
use aether_storage::db::Db;
use aether_storage::replay::{self, BaseSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shipper tuning.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Maximum bytes per frame (runs larger than this are split).
    pub chunk: usize,
    /// Shutdown-responsiveness bound for both threads' blocking waits.
    pub poll: Duration,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        ShipperConfig {
            chunk: 1 << 16,
            poll: Duration::from_millis(5),
        }
    }
}

/// Handle for one primary→replica shipping pipeline (ship + ack threads).
pub struct Shipper {
    stop: Arc<AtomicBool>,
    shipped: Arc<AtomicU64>,
    snapshots_sent: Arc<AtomicU64>,
    ship_thread: Option<aether_core::runtime::JoinHandle<()>>,
    ack_thread: Option<aether_core::runtime::JoinHandle<()>>,
}

impl std::fmt::Debug for Shipper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shipper")
            .field("shipped", &self.shipped_lsn())
            .field("snapshots_sent", &self.snapshots_sent())
            .finish()
    }
}

impl Shipper {
    /// Start shipping `primary`'s durable log bytes through `tx` from
    /// `start_lsn` (the replica's bootstrap LSN — zero for a replica seeded
    /// with the full history), folding acks from `ack_rx` into `ack` (a
    /// handle from [`aether_core::commit::CommitGate::register_replica`]).
    pub fn spawn(
        primary: Arc<Db>,
        tx: LinkSender<Vec<u8>>,
        ack_rx: LinkReceiver<Lsn>,
        ack: Arc<ReplicaAck>,
        start_lsn: Lsn,
        cfg: ShipperConfig,
    ) -> Shipper {
        let stop = Arc::new(AtomicBool::new(false));
        let shipped = Arc::new(AtomicU64::new(start_lsn.raw()));
        let snapshots_sent = Arc::new(AtomicU64::new(0));
        let rt = primary.log().config().runtime.clone();

        let ship_thread = {
            let primary = Arc::clone(&primary);
            let stop = Arc::clone(&stop);
            let shipped = Arc::clone(&shipped);
            let snapshots_sent = Arc::clone(&snapshots_sent);
            let cfg = cfg.clone();
            rt.spawn("aether-shipper", move || {
                let log = Arc::clone(primary.log());
                let watch = log.durable_watch();
                // The truncation counterpart of the durable watch: the
                // ship cursor is compared against the low-water mark it
                // tracks to detect falling behind a truncation.
                let trunc = log.truncation_watch();
                let device = Arc::clone(log.device());
                let tel = Arc::clone(log.telemetry());
                let m_frames = tel.counter("ship.frames", Unit::Count);
                let m_bytes = tel.counter("ship.bytes", Unit::Bytes);
                let m_snapshots = tel.counter("ship.snapshots", Unit::Count);
                let m_lag_lsns = tel.gauge("ship.lag_lsns", Unit::Lsns);
                let m_lag_ns = tel.gauge("ship.lag_ns", Unit::Nanos);
                // Runtime-monotonic instant when the ship cursor fell
                // behind the durable frontier; None while caught up.
                let mut behind_since: Option<u64> = None;
                let mut at = start_lsn;
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Fell behind the truncated prefix? The bytes below
                    // the low-water mark are gone; re-seed the replica
                    // from a fresh checkpoint snapshot instead.
                    if at < trunc.current() {
                        let snap: BaseSnapshot = replay::base_snapshot(&primary);
                        let msg = SnapshotFrame {
                            seq,
                            body: snap.encode(),
                        };
                        if !tx.send(msg.encode()) {
                            return; // replica gone
                        }
                        seq += 1;
                        at = snap.start_lsn;
                        shipped.store(at.raw(), Ordering::Release);
                        snapshots_sent.fetch_add(1, Ordering::Relaxed);
                        tel.inc(m_snapshots);
                        continue;
                    }
                    let durable = watch.wait_past(at, cfg.poll);
                    if tel.on() {
                        // Replication lag, both ways the operator asks for
                        // it: bytes of durable log not yet shipped, and how
                        // long the cursor has been behind.
                        let lag = durable.since(at);
                        tel.gauge_set(m_lag_lsns, lag as i64);
                        let now = aether_core::runtime::monotonic_ns();
                        let lag_ns = if lag == 0 {
                            behind_since = None;
                            0
                        } else {
                            let t0 = *behind_since.get_or_insert(now);
                            now.saturating_sub(t0)
                        };
                        tel.gauge_set(m_lag_ns, lag_ns as i64);
                    }
                    while at < durable {
                        if at < trunc.current() {
                            break; // truncated mid-run: snapshot instead
                        }
                        let n = (cfg.chunk as u64).min(durable.since(at)) as usize;
                        let mut bytes = vec![0u8; n];
                        let got = match device.read_at(at.raw(), &mut bytes) {
                            Ok(g) => g,
                            Err(_) => return,
                        };
                        if got == 0 {
                            break;
                        }
                        bytes.truncate(got);
                        let frame = Frame {
                            seq,
                            start_lsn: at,
                            bytes,
                        };
                        if !tx.send(frame.encode()) {
                            return; // replica gone
                        }
                        seq += 1;
                        at = at.advance(got as u64);
                        shipped.store(at.raw(), Ordering::Release);
                        tel.inc(m_frames);
                        tel.add(m_bytes, got as u64);
                    }
                }
            })
        };

        let ack_thread = {
            let stop = Arc::clone(&stop);
            rt.spawn("aether-shipper-ack", move || {
                let log = Arc::clone(primary.log());
                let tel = Arc::clone(log.telemetry());
                while !stop.load(Ordering::Relaxed) {
                    if let Some(lsn) = ack_rx.recv_timeout(cfg.poll) {
                        let mut highest = lsn;
                        ack.advance(lsn);
                        // Drain any further queued acks before the (per
                        // flush-group, not per-commit) recheck.
                        while let Some(more) = ack_rx.try_recv() {
                            ack.advance(more);
                            highest = highest.max(more);
                        }
                        // One ack event per folded batch: joined with the
                        // flush daemon's `durable` event, the span gives
                        // the replication round-trip in (virtual) ns.
                        if let Some(now) = tel.ts() {
                            tel.event(Stage::ReplicaAck, highest, now);
                        }
                        log.replication_recheck();
                    }
                }
            })
        };

        Shipper {
            stop,
            shipped,
            snapshots_sent,
            ship_thread: Some(ship_thread),
            ack_thread: Some(ack_thread),
        }
    }

    /// Highest LSN shipped so far.
    pub fn shipped_lsn(&self) -> Lsn {
        Lsn(self.shipped.load(Ordering::Acquire))
    }

    /// Snapshot bootstraps shipped after falling behind the truncated
    /// prefix (zero in a cluster whose truncation never outran this
    /// replica's acks).
    pub fn snapshots_sent(&self) -> u64 {
        self.snapshots_sent.load(Ordering::Relaxed)
    }

    /// Stop both threads (idempotent). Dropping the shipper also stops it —
    /// the model for "the network to this replica is cut".
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.ship_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.ack_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        self.stop();
    }
}
