//! In-process links with injectable latency and deterministic reordering.
//!
//! Replication runs offline and deterministically: a [`link`] is a pair of
//! channel endpoints joined by a delivery thread that holds each message for
//! the configured one-way latency (latency, not bandwidth: messages overlap
//! in flight, like the paper's high-resolution-timer device model) and can
//! deterministically reorder every Nth message behind its successor — which
//! is exactly what the frame sequence numbers on the receive side must
//! absorb.

use aether_core::device::precise_sleep;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Link tuning: one-way latency plus deterministic reordering.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way delivery latency.
    pub latency: Duration,
    /// When non-zero, every `reorder_period`-th message is delivered *after*
    /// its successor (0 disables reordering). Deterministic, so tests
    /// reproduce exactly.
    pub reorder_period: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Duration::ZERO,
            reorder_period: 0,
        }
    }
}

impl LinkConfig {
    /// A link with `us` microseconds of one-way latency, no reordering.
    pub fn with_latency_us(us: u64) -> LinkConfig {
        LinkConfig {
            latency: Duration::from_micros(us),
            ..LinkConfig::default()
        }
    }
}

/// Sending half of a link.
pub struct LinkSender<T: Send> {
    tx: mpsc::Sender<(Instant, T)>,
}

impl<T: Send> LinkSender<T> {
    /// Send a message; returns false once the receiving side is gone.
    pub fn send(&self, msg: T) -> bool {
        self.tx.send((Instant::now(), msg)).is_ok()
    }
}

/// Receiving half of a link.
pub struct LinkReceiver<T: Send> {
    rx: mpsc::Receiver<T>,
}

impl<T: Send> LinkReceiver<T> {
    /// Receive the next delivered message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drain anything already delivered without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

/// Build a one-directional link. The delivery thread exits when the sender
/// is dropped and the in-flight queue drains, or when the receiver is gone.
pub fn link<T: Send + 'static>(cfg: LinkConfig) -> (LinkSender<T>, LinkReceiver<T>) {
    let (in_tx, in_rx) = mpsc::channel::<(Instant, T)>();
    let (out_tx, out_rx) = mpsc::channel::<T>();
    let latency = cfg.latency;
    let period = cfg.reorder_period;
    // A held-back message is flushed anyway once no successor overtakes it
    // in time — real networks delay packets, they don't park them forever.
    let hold_flush = Duration::from_millis(1).max(latency * 2);
    std::thread::Builder::new()
        .name("aether-link".into())
        .spawn(move || {
            let mut n: usize = 0;
            // At most one message rides here, waiting to be overtaken.
            let mut held: VecDeque<T> = VecDeque::new();
            loop {
                let received = if held.is_empty() {
                    in_rx
                        .recv()
                        .map_err(|_| mpsc::RecvTimeoutError::Disconnected)
                } else {
                    in_rx.recv_timeout(hold_flush)
                };
                match received {
                    Ok((sent, msg)) => {
                        let deliver_at = sent + latency;
                        let now = Instant::now();
                        if deliver_at > now {
                            precise_sleep(deliver_at - now);
                        }
                        n += 1;
                        let reorder_this = period > 0 && n.is_multiple_of(period);
                        if reorder_this && held.is_empty() {
                            held.push_back(msg);
                            continue;
                        }
                        if out_tx.send(msg).is_err() {
                            return;
                        }
                        while let Some(h) = held.pop_front() {
                            if out_tx.send(h).is_err() {
                                return;
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // No successor showed up: deliver the held message.
                        while let Some(h) = held.pop_front() {
                            if out_tx.send(h).is_err() {
                                return;
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // Sender gone: flush anything held back, then exit.
                        while let Some(h) = held.pop_front() {
                            if out_tx.send(h).is_err() {
                                return;
                            }
                        }
                        return;
                    }
                }
            }
        })
        .expect("spawn link delivery thread");
    (LinkSender { tx: in_tx }, LinkReceiver { rx: out_rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_without_reordering() {
        let (tx, rx) = link::<u32>(LinkConfig::default());
        for i in 0..50 {
            assert!(tx.send(i));
        }
        let got: Vec<u32> = (0..50)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).unwrap())
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn latency_is_charged_once_per_batch_not_per_message() {
        let (tx, rx) = link::<u32>(LinkConfig::with_latency_us(20_000)); // 20ms
        let t = Instant::now();
        for i in 0..10 {
            tx.send(i);
        }
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(1)).unwrap();
        }
        let elapsed = t.elapsed();
        assert!(elapsed >= Duration::from_millis(20), "latency applied");
        assert!(
            elapsed < Duration::from_millis(150),
            "messages overlap in flight (took {elapsed:?})"
        );
    }

    #[test]
    fn reordering_swaps_every_nth_message() {
        let (tx, rx) = link::<u32>(LinkConfig {
            latency: Duration::ZERO,
            reorder_period: 3,
        });
        for i in 0..9 {
            tx.send(i);
        }
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.recv_timeout(Duration::from_millis(200)) {
            got.push(v);
        }
        assert_eq!(got.len(), 9);
        assert_ne!(got, (0..9).collect::<Vec<_>>(), "some pair must be swapped");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "nothing lost");
    }

    #[test]
    fn drop_sender_flushes_and_closes() {
        let (tx, rx) = link::<u32>(LinkConfig {
            latency: Duration::ZERO,
            reorder_period: 2,
        });
        tx.send(0);
        tx.send(1); // held back by reordering
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.recv_timeout(Duration::from_millis(200)) {
            got.push(v);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }
}
