//! In-process links with injectable latency and deterministic reordering.
//!
//! Replication runs offline and deterministically: a [`link`] is a pair of
//! channel endpoints joined by a delivery thread that holds each message for
//! the configured one-way latency (latency, not bandwidth: messages overlap
//! in flight, like the paper's high-resolution-timer device model) and can
//! deterministically reorder every Nth message behind its successor — which
//! is exactly what the frame sequence numbers on the receive side must
//! absorb.
//!
//! All timing goes through [`aether_core::runtime`], so under a simulated
//! runtime the delivery thread becomes a sim actor, the latency is virtual,
//! and a partitioned or slow link is just a fault the simulation can inject
//! and replay byte-identically.

use aether_core::runtime::{self, rt_channel, RtReceiver, RtSender, Runtime};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared kill-switch for one or more links: while *cut*, delivery stalls
/// (messages queue at the link, none are lost) until [`LinkChaos::heal`] —
/// the network-partition-then-heal fault. Clone the handle into every
/// [`LinkConfig`] that should partition together (a replica's frame link
/// and its ack link share the one in `ReplicationConfig::link`), keep a
/// clone, and flip it from the test or the simulator.
#[derive(Debug, Clone, Default)]
pub struct LinkChaos {
    cut: Arc<AtomicBool>,
}

impl LinkChaos {
    /// Partition: every link holding this handle stops delivering.
    pub fn cut(&self) {
        self.cut.store(true, Ordering::SeqCst);
    }

    /// Heal: held-up messages drain in their original order.
    pub fn heal(&self) {
        self.cut.store(false, Ordering::SeqCst);
    }

    /// Whether the partition is currently in force.
    pub fn is_cut(&self) -> bool {
        self.cut.load(Ordering::SeqCst)
    }
}

/// Link tuning: one-way latency plus deterministic reordering.
#[derive(Debug, Clone, Default)]
pub struct LinkConfig {
    /// One-way delivery latency.
    pub latency: Duration,
    /// When non-zero, every `reorder_period`-th message is delivered *after*
    /// its successor (0 disables reordering). Deterministic, so tests
    /// reproduce exactly.
    pub reorder_period: usize,
    /// Runtime the delivery thread runs under (real by default; the
    /// simulated cluster injects its [`Runtime::sim`] here).
    pub runtime: Runtime,
    /// Partition switch shared by every link built from this config.
    pub chaos: LinkChaos,
}

impl LinkConfig {
    /// A link with `us` microseconds of one-way latency, no reordering.
    pub fn with_latency_us(us: u64) -> LinkConfig {
        LinkConfig {
            latency: Duration::from_micros(us),
            ..LinkConfig::default()
        }
    }

    /// Builder-style setter for the runtime.
    pub fn with_runtime(mut self, runtime: Runtime) -> LinkConfig {
        self.runtime = runtime;
        self
    }
}

/// Sending half of a link.
pub struct LinkSender<T: Send> {
    tx: RtSender<(u64, T)>,
}

impl<T: Send> LinkSender<T> {
    /// Send a message; returns false once the receiving side is gone.
    pub fn send(&self, msg: T) -> bool {
        self.tx.send((runtime::monotonic_ns(), msg))
    }
}

/// Receiving half of a link.
pub struct LinkReceiver<T: Send> {
    rx: RtReceiver<T>,
}

impl<T: Send> LinkReceiver<T> {
    /// Receive the next delivered message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        self.rx.recv_timeout(timeout)
    }

    /// Drain anything already delivered without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.rx.try_recv()
    }
}

/// Build a one-directional link. The delivery thread exits when the sender
/// is dropped and the in-flight queue drains, or when the receiver is gone.
pub fn link<T: Send + 'static>(cfg: LinkConfig) -> (LinkSender<T>, LinkReceiver<T>) {
    let (in_tx, in_rx) = rt_channel::<(u64, T)>();
    let (out_tx, out_rx) = rt_channel::<T>();
    let latency = cfg.latency;
    let period = cfg.reorder_period;
    let chaos = cfg.chaos.clone();
    // A held-back message is flushed anyway once no successor overtakes it
    // in time — real networks delay packets, they don't park them forever.
    let hold_flush = Duration::from_millis(1).max(latency * 2);
    cfg.runtime.spawn("aether-link", move || {
        let mut n: usize = 0;
        // At most one message rides here, waiting to be overtaken.
        let mut held: VecDeque<T> = VecDeque::new();
        loop {
            let received = if held.is_empty() {
                in_rx.recv()
            } else {
                in_rx.recv_timeout(hold_flush)
            };
            match received {
                Some((sent, msg)) => {
                    let deliver_at = sent.saturating_add(latency.as_nanos() as u64);
                    let now = runtime::monotonic_ns();
                    if deliver_at > now {
                        runtime::precise_sleep(Duration::from_nanos(deliver_at - now));
                    }
                    // Partitioned: park here until healed. Later messages
                    // pile up behind this one in the channel — delayed, in
                    // order, never dropped.
                    while chaos.is_cut() {
                        runtime::sleep(Duration::from_millis(1));
                    }
                    n += 1;
                    let reorder_this = period > 0 && n.is_multiple_of(period);
                    if reorder_this && held.is_empty() {
                        held.push_back(msg);
                        continue;
                    }
                    if !out_tx.send(msg) {
                        return;
                    }
                    while let Some(h) = held.pop_front() {
                        if !out_tx.send(h) {
                            return;
                        }
                    }
                }
                None => {
                    // Timeout (no successor overtook the held message) or
                    // sender gone: flush anything held back either way.
                    while let Some(h) = held.pop_front() {
                        if !out_tx.send(h) {
                            return;
                        }
                    }
                    if in_rx.is_disconnected() {
                        return;
                    }
                }
            }
        }
    });
    (LinkSender { tx: in_tx }, LinkReceiver { rx: out_rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_without_reordering() {
        let (tx, rx) = link::<u32>(LinkConfig::default());
        for i in 0..50 {
            assert!(tx.send(i));
        }
        let got: Vec<u32> = (0..50)
            .map(|_| rx.recv_timeout(Duration::from_secs(1)).unwrap())
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn latency_is_charged_once_per_batch_not_per_message() {
        let (tx, rx) = link::<u32>(LinkConfig::with_latency_us(20_000)); // 20ms
        let t = runtime::monotonic_ns();
        for i in 0..10 {
            tx.send(i);
        }
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(1)).unwrap();
        }
        let elapsed_ms = (runtime::monotonic_ns() - t) / 1_000_000;
        assert!(elapsed_ms >= 20, "latency applied");
        assert!(
            elapsed_ms < 150,
            "messages overlap in flight (took {elapsed_ms}ms)"
        );
    }

    #[test]
    fn reordering_swaps_every_nth_message() {
        let (tx, rx) = link::<u32>(LinkConfig {
            latency: Duration::ZERO,
            reorder_period: 3,
            ..LinkConfig::default()
        });
        for i in 0..9 {
            tx.send(i);
        }
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.recv_timeout(Duration::from_millis(200)) {
            got.push(v);
        }
        assert_eq!(got.len(), 9);
        assert_ne!(got, (0..9).collect::<Vec<_>>(), "some pair must be swapped");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "nothing lost");
    }

    #[test]
    fn drop_sender_flushes_and_closes() {
        let (tx, rx) = link::<u32>(LinkConfig {
            latency: Duration::ZERO,
            reorder_period: 2,
            ..LinkConfig::default()
        });
        tx.send(0);
        tx.send(1); // held back by reordering
        drop(tx);
        let mut got = Vec::new();
        while let Some(v) = rx.recv_timeout(Duration::from_millis(200)) {
            got.push(v);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }
}
