//! The read-replica serving tier: a [`ReadRouter`] load-balancing
//! bounded-staleness snapshot reads over N replicas.
//!
//! The paper's single serial log makes *writes* scale up, not out; reads
//! are the traffic that scales out, across the continuous-redo standbys the
//! shipping pipeline already keeps warm. The router turns those standbys
//! into a serving tier with an explicit staleness contract:
//!
//! * **Load balancing** — every read picks a replica by the configured
//!   [`RoutingPolicy`]: round-robin (spread), least-lagged (freshest
//!   first), or freshness-weighted (spread biased toward fresher replicas).
//!   Selection keys off the applied-LSN watermarks the replicas already
//!   publish ([`ReplicaReader::applied`]); reads themselves are lock-free
//!   snapshot reads.
//! * **Bounded staleness** — [`ReadRouter::read_at_least`] guarantees the
//!   returned snapshot's applied watermark covers the requested LSN. If the
//!   chosen replica is behind, the read blocks on its [`AppliedWatch`] for
//!   at most the configured budget, then falls back to a fresher replica,
//!   and finally to the primary (which is never stale).
//! * **Read-your-writes** — [`aether_storage::db::Db::commit_tokened`] (or
//!   [`crate::cluster::ReplicatedDb::commit`]) returns a [`CommitToken`];
//!   a [`Session`] folds tokens into a running maximum and
//!   [`ReadRouter::read_session`] threads that watermark into every read.
//!   Invariant 9 of DESIGN.md: a session read never observes state older
//!   than the session's token.
//! * **Quarantine** — a replica that falls further behind the primary's
//!   durable frontier than the configured lag bound, or that misses a
//!   read's staleness budget, stops receiving reads until it catches back
//!   up (re-admission is automatic, by watermark, on the routing path).
//!
//! Every decision is counted through the telemetry registry
//! (`router.routed`, `router.blocked`, `router.fallback_*`,
//! `router.quarantines`, `router.readmissions`, per-policy
//! `router.read_ns.*` latency histograms) and mirrored in plain atomics
//! ([`ReadRouter::stats`]) so tests and the simulator can assert on routing
//! behavior with telemetry disabled.
//!
//! All blocking goes through [`aether_core::runtime`] condvars and all
//! tie-breaking randomness through a deterministic splitmix stream, so the
//! router runs unmodified — and replays byte-identically — under
//! [`aether_core::runtime::Runtime::sim`].

use crate::replica::{AppliedWatch, ReplicaReader};
use aether_core::commit::CommitToken;
use aether_core::lsn::AtomicLsn;
use aether_core::runtime;
use aether_core::telemetry::{CounterId, GaugeId, HistId, Telemetry, Unit};
use aether_core::Lsn;
use aether_storage::db::Db;
use aether_storage::error::StorageResult;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How the router picks a replica for each read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Cycle through the admitted replicas in order: maximal spread,
    /// freshness-blind (stale picks pay the blocking wait instead).
    #[default]
    RoundRobin,
    /// Always pick the admitted replica with the highest applied watermark
    /// (ties to the lowest index): minimal blocking, but concentrates load
    /// on the freshest replica.
    LeastLagged,
    /// Spread load with a bias toward fresher replicas: each admitted
    /// replica is weighted by how close its applied watermark is to the
    /// freshest one. The draw comes from a deterministic splitmix stream,
    /// so simulated runs replay identically.
    FreshnessWeighted,
}

impl RoutingPolicy {
    /// Stable label, used for the per-policy latency histogram name and in
    /// bench output.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round_robin",
            RoutingPolicy::LeastLagged => "least_lagged",
            RoutingPolicy::FreshnessWeighted => "freshness_weighted",
        }
    }

    /// Parse a policy name; accepts the canonical labels plus short
    /// aliases (`rr`, `least`, `weighted`).
    pub fn parse(s: &str) -> Option<RoutingPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "rr" | "round_robin" | "round-robin" | "roundrobin" => Some(RoutingPolicy::RoundRobin),
            "least" | "least_lagged" | "least-lagged" | "leastlagged" => {
                Some(RoutingPolicy::LeastLagged)
            }
            "weighted" | "freshness" | "freshness_weighted" | "freshness-weighted" => {
                Some(RoutingPolicy::FreshnessWeighted)
            }
            _ => None,
        }
    }

    /// Policy from `AETHER_READ_POLICY` (default: round-robin).
    pub fn from_env() -> RoutingPolicy {
        std::env::var("AETHER_READ_POLICY")
            .ok()
            .and_then(|v| RoutingPolicy::parse(&v))
            .unwrap_or_default()
    }
}

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica-selection policy.
    pub policy: RoutingPolicy,
    /// Per-request staleness budget: the longest a read blocks on a lagging
    /// replica's applied watermark before falling back to a fresher replica
    /// or the primary.
    pub budget: Duration,
    /// Quarantine threshold: a replica whose applied watermark trails the
    /// primary's durable frontier by more than this many log bytes stops
    /// receiving reads. (A replica that stopped acking entirely trips this
    /// bound as soon as the primary's frontier moves past it.)
    pub quarantine_lag: u64,
    /// Re-admission threshold: a quarantined replica rejoins the rotation
    /// once its applied watermark is within this many log bytes of the
    /// primary's durable frontier. Must be below `quarantine_lag` or the
    /// replica would flap.
    pub readmit_lag: u64,
    /// Modeled per-replica service time: when nonzero, each read occupies
    /// its replica exclusively for this long (virtual time under
    /// simulation). This is the in-process stand-in for a remote replica's
    /// bounded serving capacity — it is what makes read throughput scale
    /// with replica count measurable in `fig16_read_scaleout` — and is zero
    /// (no model) by default.
    pub service: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            policy: RoutingPolicy::default(),
            budget: Duration::from_millis(50),
            quarantine_lag: 1 << 20,
            readmit_lag: 1 << 14,
            service: Duration::ZERO,
        }
    }
}

impl RouterConfig {
    /// Config from the environment: `AETHER_READ_POLICY` (see
    /// [`RoutingPolicy::from_env`]) and `AETHER_READ_BUDGET_US` (staleness
    /// budget, microseconds).
    pub fn from_env() -> RouterConfig {
        let mut cfg = RouterConfig {
            policy: RoutingPolicy::from_env(),
            ..RouterConfig::default()
        };
        if let Some(us) = std::env::var("AETHER_READ_BUDGET_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.budget = Duration::from_micros(us);
        }
        cfg
    }
}

/// A client session accumulating commit tokens for read-your-writes.
///
/// [`Session::observe`] folds each commit's [`CommitToken`] into a running
/// maximum (tokens are totally ordered by log position, so the max covers
/// every observed commit); [`ReadRouter::read_session`] then uses the
/// watermark as the read's freshness floor. Shareable across threads —
/// wrap in an `Arc` for a multi-threaded session.
#[derive(Debug, Default)]
pub struct Session {
    last: AtomicLsn,
}

impl Session {
    /// A fresh session: no commits observed, any snapshot acceptable.
    pub fn new() -> Session {
        Session::default()
    }

    /// Fold a commit token into the session watermark.
    pub fn observe(&self, token: CommitToken) {
        self.last.fetch_max(token.lsn());
    }

    /// The freshness floor this session's reads must satisfy.
    pub fn watermark(&self) -> Lsn {
        self.last.load()
    }
}

/// Where a routed read was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Served by replica `i` (router index).
    Replica(usize),
    /// Served by the primary (freshness fallback, or no admitted replica).
    Primary,
}

/// One routed read: the value plus the staleness evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedRead {
    /// The snapshot value (`None`: key absent at that snapshot).
    pub value: Option<Vec<u8>>,
    /// The serving source's applied watermark at read time — always `>=`
    /// the requested floor (the staleness contract).
    pub applied: Lsn,
    /// Which node served the read.
    pub source: SourceKind,
}

/// A point-in-time view of the router's decisions (plain atomics, valid
/// with telemetry disabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// Reads served by a replica without blocking.
    pub routed: u64,
    /// Reads that blocked on an applied watermark and made the budget.
    pub blocked: u64,
    /// Reads that missed the chosen replica's budget and were served by a
    /// fresher replica.
    pub fallback_fresher: u64,
    /// Reads served by the primary (budget misses with no fresh-enough
    /// replica, or an empty admitted set).
    pub fallback_primary: u64,
    /// Quarantine transitions (lag bound exceeded or budget missed).
    pub quarantines: u64,
    /// Re-admissions (quarantined replica caught back up).
    pub readmissions: u64,
    /// Per-replica: currently quarantined?
    pub quarantined: Vec<bool>,
    /// Per-replica: reads served (including blocked and fresher-fallback
    /// serves).
    pub routed_per_replica: Vec<u64>,
}

/// One replica as the router sees it.
struct Node {
    reader: ReplicaReader,
    watch: AppliedWatch,
    quarantined: AtomicBool,
    routed: AtomicU64,
    /// Serializes reads through one node when the service-time model is
    /// active (capacity of one request at a time, like a remote server's
    /// worker); unused (never locked) when `service` is zero.
    serving: Mutex<()>,
}

/// Telemetry ids for the router's decision counters.
struct Metrics {
    routed: CounterId,
    blocked: CounterId,
    fallback_fresher: CounterId,
    fallback_primary: CounterId,
    quarantines: CounterId,
    readmissions: CounterId,
    quarantined_now: GaugeId,
    read_ns: HistId,
}

/// Load-balances bounded-staleness snapshot reads over a set of replicas,
/// with the primary as the always-fresh fallback. See the module docs for
/// the full contract.
pub struct ReadRouter {
    primary: Arc<Db>,
    nodes: Vec<Node>,
    cfg: RouterConfig,
    /// Round-robin cursor.
    rr: AtomicUsize,
    /// Deterministic draw stream for the freshness-weighted policy.
    choice_seq: AtomicU64,
    /// Primary-side serving slot for the service-time model.
    primary_serving: Mutex<()>,
    tel: Arc<Telemetry>,
    m: Metrics,
    // Plain mirrors of the telemetry counters (telemetry records only when
    // enabled; stats() must work regardless).
    c_routed: AtomicU64,
    c_blocked: AtomicU64,
    c_fallback_fresher: AtomicU64,
    c_fallback_primary: AtomicU64,
    c_quarantines: AtomicU64,
    c_readmissions: AtomicU64,
}

impl std::fmt::Debug for ReadRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadRouter")
            .field("replicas", &self.nodes.len())
            .field("policy", &self.cfg.policy)
            .finish()
    }
}

/// Splitmix64 step: the router's deterministic tie-break stream.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ReadRouter {
    /// Build a router over `readers` with `primary` as the freshness
    /// fallback. `ReplicatedDb::router` is the usual entry point; this
    /// direct constructor serves hand-wired clusters (tests, simulation).
    pub fn new(primary: Arc<Db>, readers: Vec<ReplicaReader>, cfg: RouterConfig) -> ReadRouter {
        assert!(
            cfg.readmit_lag <= cfg.quarantine_lag,
            "readmit_lag must not exceed quarantine_lag (hysteresis, not flapping)"
        );
        let tel = Arc::clone(primary.log().telemetry());
        let m = Metrics {
            routed: tel.counter("router.routed", Unit::Count),
            blocked: tel.counter("router.blocked", Unit::Count),
            fallback_fresher: tel.counter("router.fallback_fresher", Unit::Count),
            fallback_primary: tel.counter("router.fallback_primary", Unit::Count),
            quarantines: tel.counter("router.quarantines", Unit::Count),
            readmissions: tel.counter("router.readmissions", Unit::Count),
            quarantined_now: tel.gauge("router.quarantined", Unit::Count),
            // One histogram per policy: registration is idempotent by name,
            // so routers sharing a registry but not a policy stay separate.
            read_ns: tel.histogram(
                match cfg.policy {
                    RoutingPolicy::RoundRobin => "router.read_ns.round_robin",
                    RoutingPolicy::LeastLagged => "router.read_ns.least_lagged",
                    RoutingPolicy::FreshnessWeighted => "router.read_ns.freshness_weighted",
                },
                Unit::Nanos,
            ),
        };
        ReadRouter {
            primary,
            nodes: readers
                .into_iter()
                .map(|reader| Node {
                    watch: reader.applied_watch(),
                    reader,
                    quarantined: AtomicBool::new(false),
                    routed: AtomicU64::new(0),
                    serving: Mutex::new(()),
                })
                .collect(),
            cfg,
            rr: AtomicUsize::new(0),
            choice_seq: AtomicU64::new(0),
            primary_serving: Mutex::new(()),
            tel,
            m,
            c_routed: AtomicU64::new(0),
            c_blocked: AtomicU64::new(0),
            c_fallback_fresher: AtomicU64::new(0),
            c_fallback_primary: AtomicU64::new(0),
            c_quarantines: AtomicU64::new(0),
            c_readmissions: AtomicU64::new(0),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.cfg.policy
    }

    /// Number of replicas behind this router.
    pub fn replica_count(&self) -> usize {
        self.nodes.len()
    }

    /// An unconstrained snapshot read: any admitted replica, any staleness.
    pub fn read(&self, table: u32, key: u64) -> StorageResult<RoutedRead> {
        self.read_at_least(table, key, Lsn::ZERO)
    }

    /// A session read: freshness floor = the session's token watermark, so
    /// the caller observes every commit it (or anyone whose token it
    /// folded in) has made — read-your-writes.
    pub fn read_session(
        &self,
        session: &Session,
        table: u32,
        key: u64,
    ) -> StorageResult<RoutedRead> {
        self.read_at_least(table, key, session.watermark())
    }

    /// The bounded-staleness read: the returned snapshot's applied
    /// watermark is `>= min`, whatever it takes — serve the policy's pick
    /// if fresh enough, block up to the staleness budget while it catches
    /// up, fall back to a fresher replica, and finally to the primary.
    pub fn read_at_least(&self, table: u32, key: u64, min: Lsn) -> StorageResult<RoutedRead> {
        let t0 = self.tel.ts();
        self.maintain();
        let out = self.route(table, key, min);
        if let (Some(t0), Ok(_)) = (t0, &out) {
            let dt = runtime::monotonic_ns().saturating_sub(t0);
            self.tel.record(self.m.read_ns, dt);
        }
        out
    }

    /// Routing decision counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            routed: self.c_routed.load(Ordering::Relaxed),
            blocked: self.c_blocked.load(Ordering::Relaxed),
            fallback_fresher: self.c_fallback_fresher.load(Ordering::Relaxed),
            fallback_primary: self.c_fallback_primary.load(Ordering::Relaxed),
            quarantines: self.c_quarantines.load(Ordering::Relaxed),
            readmissions: self.c_readmissions.load(Ordering::Relaxed),
            quarantined: self
                .nodes
                .iter()
                .map(|n| n.quarantined.load(Ordering::Relaxed))
                .collect(),
            routed_per_replica: self
                .nodes
                .iter()
                .map(|n| n.routed.load(Ordering::Relaxed))
                .collect(),
        }
    }

    // ------------------------------------------------------------------
    // Quarantine bookkeeping
    // ------------------------------------------------------------------

    /// Re-evaluate quarantine state against the primary's durable frontier.
    /// Runs on every read (cheap: one atomic load per replica); transitions
    /// use compare-exchange so concurrent readers count each one once.
    fn maintain(&self) {
        let durable = self.primary.log().durable_lsn();
        let mut quarantined_now = 0i64;
        for n in &self.nodes {
            let lag = durable.raw().saturating_sub(n.reader.applied().raw());
            if n.quarantined.load(Ordering::Acquire) {
                if lag <= self.cfg.readmit_lag
                    && n.quarantined
                        .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    self.c_readmissions.fetch_add(1, Ordering::Relaxed);
                    self.tel.inc(self.m.readmissions);
                } else if lag > self.cfg.readmit_lag {
                    quarantined_now += 1;
                }
            } else if lag > self.cfg.quarantine_lag {
                self.quarantine(n);
                quarantined_now += 1;
            }
        }
        self.tel.gauge_set(self.m.quarantined_now, quarantined_now);
    }

    /// Quarantine one node (idempotent under races; each transition counts
    /// once).
    fn quarantine(&self, n: &Node) {
        if n.quarantined
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.c_quarantines.fetch_add(1, Ordering::Relaxed);
            self.tel.inc(self.m.quarantines);
        }
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    fn route(&self, table: u32, key: u64, min: Lsn) -> StorageResult<RoutedRead> {
        // Admitted replicas only: a quarantined replica receives no reads
        // until re-admission (invariant (c) of tests/prop_router.rs).
        let candidates: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].quarantined.load(Ordering::Acquire))
            .collect();
        let Some(&first) = candidates.first() else {
            // Nothing admitted (all quarantined, or a replica-less
            // cluster): the primary serves, by definition fresh.
            return self.read_primary(table, key, min);
        };

        let pick = match self.cfg.policy {
            RoutingPolicy::RoundRobin => {
                candidates[self.rr.fetch_add(1, Ordering::Relaxed) % candidates.len()]
            }
            RoutingPolicy::LeastLagged => {
                // First strict maximum: deterministic tie-break to the
                // lowest index.
                let mut best = first;
                let mut best_applied = self.nodes[best].reader.applied();
                for &i in &candidates[1..] {
                    let a = self.nodes[i].reader.applied();
                    if a > best_applied {
                        best = i;
                        best_applied = a;
                    }
                }
                best
            }
            RoutingPolicy::FreshnessWeighted => {
                // Weight ∝ 1 + closeness to the freshest candidate,
                // normalized in 4 KiB lag units so big byte lags don't
                // zero-out slightly-stale replicas.
                let applied: Vec<u64> = candidates
                    .iter()
                    .map(|&i| self.nodes[i].reader.applied().raw())
                    .collect();
                let freshest = applied.iter().copied().max().unwrap_or(0);
                let weights: Vec<u64> = applied
                    .iter()
                    .map(|&a| {
                        let lag_units = (freshest - a) >> 12;
                        // Freshest gets the max weight; every 4 KiB of lag
                        // sheds one, floor 1 (everyone admitted stays
                        // reachable).
                        (candidates.len() as u64 * 4)
                            .saturating_sub(lag_units)
                            .max(1)
                    })
                    .collect();
                let total: u64 = weights.iter().sum();
                let draw = splitmix(self.choice_seq.fetch_add(1, Ordering::Relaxed)) % total;
                let mut acc = 0u64;
                let mut chosen = first;
                for (ci, &i) in candidates.iter().enumerate() {
                    acc += weights[ci];
                    if draw < acc {
                        chosen = i;
                        break;
                    }
                }
                chosen
            }
        };

        // Staleness: serve immediately if fresh enough, otherwise block on
        // the applied watch within the budget.
        let node = &self.nodes[pick];
        let mut applied = node.reader.applied();
        if applied < min {
            applied = node.watch.wait_for(min, self.cfg.budget);
            if applied >= min {
                self.c_blocked.fetch_add(1, Ordering::Relaxed);
                self.tel.inc(self.m.blocked);
            } else {
                // Budget missed: this replica is failing its staleness
                // contract — quarantine it and serve elsewhere.
                self.quarantine(node);
                let fresher = candidates
                    .iter()
                    .filter(|&&j| j != pick)
                    .filter(|&&j| !self.nodes[j].quarantined.load(Ordering::Acquire))
                    .map(|&j| (self.nodes[j].reader.applied(), j))
                    .filter(|&(a, _)| a >= min)
                    .max_by_key(|&(a, j)| (a, std::cmp::Reverse(j)));
                if let Some((_, j)) = fresher {
                    self.c_fallback_fresher.fetch_add(1, Ordering::Relaxed);
                    self.tel.inc(self.m.fallback_fresher);
                    return self.read_node(j, table, key, min);
                }
                return self.read_primary(table, key, min);
            }
        }
        let _ = applied;
        self.c_routed.fetch_add(1, Ordering::Relaxed);
        self.tel.inc(self.m.routed);
        self.read_node(pick, table, key, min)
    }

    /// Serve from replica `i` (freshness already established: its applied
    /// watermark reached `min` before we got here, and watermarks are
    /// monotone outside snapshot rebases, which only ever move forward).
    fn read_node(&self, i: usize, table: u32, key: u64, min: Lsn) -> StorageResult<RoutedRead> {
        let node = &self.nodes[i];
        node.routed.fetch_add(1, Ordering::Relaxed);
        let value = if self.cfg.service > Duration::ZERO {
            let _slot = node.serving.lock();
            runtime::precise_sleep(self.cfg.service);
            node.reader.read(table, key)?
        } else {
            node.reader.read(table, key)?
        };
        Ok(RoutedRead {
            value,
            applied: node.reader.applied().max(min),
            source: SourceKind::Replica(i),
        })
    }

    /// Serve from the primary: its materialized state covers every issued
    /// commit token, so any floor is satisfied by construction.
    fn read_primary(&self, table: u32, key: u64, min: Lsn) -> StorageResult<RoutedRead> {
        self.c_fallback_primary.fetch_add(1, Ordering::Relaxed);
        self.tel.inc(self.m.fallback_primary);
        let value = if self.cfg.service > Duration::ZERO {
            let _slot = self.primary_serving.lock();
            runtime::precise_sleep(self.cfg.service);
            self.primary.snapshot_read(table, key)?
        } else {
            self.primary.snapshot_read(table, key)?
        };
        Ok(RoutedRead {
            value,
            applied: self.primary.log().released_lsn().max(min),
            source: SourceKind::Primary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ReplicatedDb, ReplicationConfig};
    use crate::transport::LinkConfig;
    use aether_core::commit::DurabilityPolicy;
    use aether_storage::DbOptions;

    fn record(key: u64, v: u64) -> Vec<u8> {
        let mut r = vec![0u8; 16];
        r[..8].copy_from_slice(&key.to_le_bytes());
        r[8..16].copy_from_slice(&v.to_le_bytes());
        r
    }

    fn counter_of(rec: &[u8]) -> u64 {
        u64::from_le_bytes(rec[8..16].try_into().unwrap())
    }

    fn primary() -> Arc<Db> {
        let db = Db::open(DbOptions::default());
        db.create_table(16, 8);
        for k in 0..8u64 {
            db.load(0, k, &record(k, 0)).unwrap();
        }
        db.setup_complete();
        db
    }

    #[test]
    fn policy_parse_round_trips_labels_and_aliases() {
        for p in [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastLagged,
            RoutingPolicy::FreshnessWeighted,
        ] {
            assert_eq!(RoutingPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(RoutingPolicy::parse("rr"), Some(RoutingPolicy::RoundRobin));
        assert_eq!(
            RoutingPolicy::parse("weighted"),
            Some(RoutingPolicy::FreshnessWeighted)
        );
        assert_eq!(RoutingPolicy::parse("nope"), None);
    }

    #[test]
    fn round_robin_spreads_reads_across_replicas() {
        let primary = primary();
        let cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 3,
                policy: DurabilityPolicy::SemiSync(1),
                ..ReplicationConfig::default()
            },
        )
        .unwrap();
        assert!(cluster.wait_catchup(Duration::from_secs(10)));
        let router = cluster.router(RouterConfig::default());
        for _ in 0..9 {
            let out = router.read(0, 3).unwrap();
            assert!(matches!(out.source, SourceKind::Replica(_)));
        }
        let st = router.stats();
        assert_eq!(st.routed, 9);
        assert_eq!(
            st.routed_per_replica,
            vec![3, 3, 3],
            "round robin must spread evenly: {st:?}"
        );
    }

    #[test]
    fn session_reads_observe_own_commits() {
        let primary = primary();
        let cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 2,
                policy: DurabilityPolicy::SemiSync(1),
                ..ReplicationConfig::default()
            },
        )
        .unwrap();
        let router = cluster.router(RouterConfig {
            budget: Duration::from_secs(10),
            ..RouterConfig::default()
        });
        let session = Session::new();
        for v in 1..=20u64 {
            let mut txn = primary.begin();
            primary.update(&mut txn, 0, 5, &record(5, v)).unwrap();
            let (out, token) = cluster.commit(txn).unwrap();
            assert!(out.is_durable_now());
            session.observe(token);
            let read = router.read_session(&session, 0, 5).unwrap();
            assert!(read.applied >= session.watermark(), "staleness floor");
            let got = counter_of(read.value.as_deref().expect("key exists"));
            assert!(got >= v, "read-your-writes: wrote {v}, read {got}");
        }
        // SemiSync(1) acks at *received*; replay may still need the watch,
        // so some reads legitimately blocked — but none may have been
        // served below the floor (the asserts above) and none from a
        // quarantined node.
        let st = router.stats();
        assert_eq!(
            st.routed + st.blocked + st.fallback_fresher + st.fallback_primary,
            20
        );
    }

    #[test]
    fn lagging_replica_is_quarantined_and_readmitted() {
        let primary = primary();
        let mut cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 1,
                policy: DurabilityPolicy::SemiSync(1),
                ..ReplicationConfig::default()
            },
        )
        .unwrap();
        // Second replica behind a painfully slow link: it will trail the
        // durable frontier far past the quarantine bound.
        let lagger = cluster
            .add_replica_with_link(LinkConfig::with_latency_us(200_000))
            .unwrap();
        // Round-robin: freshness-blind, so only quarantine keeps reads off
        // the lagger — and after re-admission it must get picks again
        // (least-lagged would tie-break away from it forever).
        let router = cluster.router(RouterConfig {
            policy: RoutingPolicy::RoundRobin,
            quarantine_lag: 256,
            readmit_lag: 64,
            budget: Duration::from_millis(1),
            ..RouterConfig::default()
        });
        for v in 1..=40u64 {
            let mut txn = primary.begin();
            primary.update(&mut txn, 0, 2, &record(2, v)).unwrap();
            primary.commit(txn).unwrap();
        }
        // Reads route while the lagger trails: it must be quarantined and
        // receive nothing.
        for _ in 0..10 {
            router.read(0, 2).unwrap();
        }
        let st = router.stats();
        assert!(st.quarantines >= 1, "lagger must trip quarantine: {st:?}");
        assert!(st.quarantined[lagger], "lagger still behind: {st:?}");
        assert_eq!(
            st.routed_per_replica[lagger], 0,
            "no reads may land on a quarantined replica: {st:?}"
        );
        // Once it catches up, it is re-admitted and serves again.
        assert!(cluster.wait_catchup(Duration::from_secs(30)));
        for _ in 0..8 {
            router.read(0, 2).unwrap();
        }
        let st = router.stats();
        assert!(st.readmissions >= 1, "caught-up lagger re-admitted: {st:?}");
        assert!(!st.quarantined[lagger], "{st:?}");
        assert!(
            st.routed_per_replica[lagger] > 0,
            "re-admitted replica serves reads again: {st:?}"
        );
    }

    #[test]
    fn read_at_least_falls_back_to_primary_when_no_replica_can_satisfy() {
        let primary = primary();
        let mut cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 0,
                policy: DurabilityPolicy::Async,
                ..ReplicationConfig::default()
            },
        )
        .unwrap();
        let slow = cluster
            .add_replica_with_link(LinkConfig::with_latency_us(500_000))
            .unwrap();
        let router = cluster.router(RouterConfig {
            budget: Duration::from_millis(2),
            // Huge quarantine bound: the replica stays admitted, so the
            // read exercises the budget-miss path, not the empty-set path.
            quarantine_lag: u64::MAX,
            readmit_lag: 1 << 20,
            ..RouterConfig::default()
        });
        let mut txn = primary.begin();
        primary.update(&mut txn, 0, 7, &record(7, 42)).unwrap();
        let (_, token) = primary.commit_tokened(txn).unwrap();
        let out = router.read_at_least(0, 7, token.lsn()).unwrap();
        assert!(out.applied >= token.lsn());
        assert_eq!(
            out.source,
            SourceKind::Primary,
            "replica {slow} lags by 500ms"
        );
        assert_eq!(counter_of(&out.value.unwrap()), 42);
        let st = router.stats();
        assert_eq!(st.fallback_primary, 1);
    }
}
