//! # aether-repl — log-shipping replication for Aether
//!
//! The paper's §A.5 analysis (reproduced by `fig13_distributed`) shows why
//! *partitioning* a log across nodes is painful: cross-log commit
//! dependencies are too widespread to track. The production-standard way to
//! scale a single totally-ordered log to heavy read traffic and high
//! availability is the opposite: keep the log serial and **ship it** —
//! stream the durable prefix to replicas that replay it continuously.
//! This crate implements that, end to end, offline and deterministically:
//!
//! * [`transport`] — in-process links with injectable latency and
//!   deterministic reordering (the simulated network).
//! * [`frame`] — CRC32-framed byte runs and snapshot bootstraps sharing
//!   one sequence space; corrupt messages are dropped, reordered ones
//!   restored.
//! * [`shipper`] — tails the primary's durable frontier through
//!   [`aether_core::manager::DurableWatch`] (no polling) and streams one
//!   frame per flush group, so group commit amortizes ack round-trips.
//! * [`replica`] — appends received runs to its own log device, acks the
//!   durably-received LSN, and keeps a standby [`aether_storage::db::Db`]
//!   warm by continuous ARIES redo; snapshot reads come with a measured
//!   staleness bound. [`replica::Replica::promote`] runs full recovery over
//!   the shipped prefix for failover.
//! * [`cluster`] — [`cluster::ReplicatedDb`] wires a primary to N replicas
//!   under a [`aether_core::commit::DurabilityPolicy`]: `Async`,
//!   `SemiSync(k)`, or `Quorum(k of n)` — commit completion waits on
//!   replica acks in addition to the local sync. Replicas bootstrap from a
//!   checkpoint [`aether_storage::replay::BaseSnapshot`] (pages, ATT/DPT
//!   and start LSN), so [`cluster::ReplicatedDb::add_replica`] can join a
//!   fresh replica to a cluster whose log prefix has been truncated away,
//!   and a shipper stranded below the log's low-water mark re-seeds its
//!   replica over the wire instead of reading recycled bytes.
//! * [`supervisor`] — [`supervisor::Supervisor`], the self-healing tier:
//!   owns a cluster, quarantines and re-seeds replicas whose acks stall
//!   past a lag budget, and on primary death (poisoned log or commit gate)
//!   auto-promotes the most-caught-up replica via ARIES recovery.
//! * [`router`] — [`router::ReadRouter`], the read-serving tier: routes
//!   lock-free snapshot reads across the replicas (round-robin,
//!   least-lagged, or freshness-weighted on applied-LSN watermarks),
//!   enforces per-request staleness budgets with fallback to a fresher
//!   replica or the primary, quarantines replicas that fall behind, and
//!   gives sessions read-your-writes via [`aether_core::commit::CommitToken`]s
//!   returned from [`cluster::ReplicatedDb::commit`].
//!
//! ## Quick start
//!
//! ```
//! use aether_repl::prelude::*;
//! use aether_storage::{Db, DbOptions};
//!
//! let db = Db::open(DbOptions::default());
//! db.create_table(16, 4);
//! for k in 0..4u64 {
//!     let mut rec = vec![0u8; 16];
//!     rec[..8].copy_from_slice(&k.to_le_bytes());
//!     db.load(0, k, &rec).unwrap();
//! }
//! db.setup_complete();
//! let cluster = ReplicatedDb::attach(
//!     db,
//!     ReplicationConfig {
//!         replicas: 1,
//!         policy: DurabilityPolicy::SemiSync(1),
//!         ..ReplicationConfig::default()
//!     },
//! )
//! .unwrap();
//! let mut txn = cluster.primary().begin();
//! cluster
//!     .primary()
//!     .update_with(&mut txn, 0, 1, |r| r[8] = 42)
//!     .unwrap();
//! // Completes only after the replica durably received the commit.
//! cluster.primary().commit(txn).unwrap();
//! assert!(cluster.wait_catchup(std::time::Duration::from_secs(5)));
//! assert_eq!(cluster.replica(0).read(0, 1).unwrap().unwrap()[8], 42);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod frame;
pub mod replica;
pub mod router;
pub mod shipper;
pub mod supervisor;
pub mod transport;

pub use cluster::{ReplicatedDb, ReplicationConfig};
pub use replica::{AppliedWatch, Replica, ReplicaConfig, ReplicaReader, ReplicaStatus};
pub use router::{
    ReadRouter, RoutedRead, RouterConfig, RouterStats, RoutingPolicy, Session, SourceKind,
};
pub use shipper::{Shipper, ShipperConfig};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorReport};
pub use transport::{link, LinkChaos, LinkConfig, LinkReceiver, LinkSender};

/// Convenience prelude for replication programs.
pub mod prelude {
    pub use crate::cluster::{ReplicatedDb, ReplicationConfig};
    pub use crate::replica::{AppliedWatch, Replica, ReplicaConfig, ReplicaReader, ReplicaStatus};
    pub use crate::router::{
        ReadRouter, RoutedRead, RouterConfig, RouterStats, RoutingPolicy, Session, SourceKind,
    };
    pub use crate::shipper::{Shipper, ShipperConfig};
    pub use crate::supervisor::{Supervisor, SupervisorConfig, SupervisorReport};
    pub use crate::transport::{LinkChaos, LinkConfig, LinkReceiver, LinkSender};
    pub use aether_core::commit::{CommitToken, DurabilityPolicy};
}
