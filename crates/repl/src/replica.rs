//! The replica: receives shipped log runs, keeps a standby database warm by
//! continuous redo, serves bounded-staleness snapshot reads, and can be
//! promoted to a full primary via ordinary ARIES recovery.
//!
//! Protocol: messages are restored to sequence order (reorder-resistant),
//! log runs are appended to the replica's own log device, and **acked at
//! the durably received LSN** — semi-synchronous semantics: an ack means
//! "these bytes survive a primary failure", not "these bytes are already
//! applied". Replay then advances independently through
//! [`aether_storage::replay`]; the gap between received and replayed is the
//! replica's lag, and the time since the last applied batch is its measured
//! staleness bound.
//!
//! A [`SnapshotFrame`] in the stream **re-seeds the replica**: the primary
//! truncated its log past what this replica had received (or the replica
//! attached after truncation), so the missing bytes no longer exist
//! anywhere. The replica rebuilds its standby database from the snapshot's
//! pages, rebases its log device at the snapshot LSN, and resumes frame
//! ingestion from there — no historical log required.

use crate::frame::{SnapshotFrame, WireMsg};
use crate::transport::{LinkReceiver, LinkSender};
use aether_core::device::{LogDevice, OffsetDevice};
use aether_core::reader::LogReader;
use aether_core::runtime;
use aether_core::Lsn;
use aether_storage::db::{CrashImage, Db, DbOptions};
use aether_storage::error::StorageResult;
use aether_storage::recovery::RecoveryStats;
use aether_storage::replay::{self, BaseSnapshot};
use aether_storage::store::PageStore;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Replica tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Shutdown-responsiveness bound for the apply thread's receive wait.
    pub poll: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            poll: Duration::from_millis(5),
        }
    }
}

/// A point-in-time view of a replica's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Bytes durably received (and acked) so far.
    pub received_lsn: Lsn,
    /// Replay frontier: every record below this is applied to the standby.
    pub replay_lsn: Lsn,
    /// Records applied (page-changing redo).
    pub applied: u64,
    /// Commit records observed by replay.
    pub commits_seen: u64,
    /// Frames dropped for failing their CRC or decode.
    pub corrupt_frames: u64,
    /// Snapshot bootstraps installed (1 for a snapshot-attached replica
    /// that never fell behind; +1 per re-seed after log truncation).
    pub bootstraps: u64,
    /// Measured staleness bound: time since replay last caught up with the
    /// received bytes (zero when fully caught up at sampling time).
    pub staleness: Duration,
}

/// The rebindable half of a replica: replaced wholesale when a snapshot
/// bootstrap re-seeds it.
struct ReplicaState {
    db: Arc<Db>,
    device: Arc<OffsetDevice>,
}

struct ReplicaShared {
    state: RwLock<ReplicaState>,
    received: AtomicU64,
    replay: AtomicU64,
    applied: AtomicU64,
    commits_seen: AtomicU64,
    corrupt_frames: AtomicU64,
    bootstraps: AtomicU64,
    /// `Some(t)` while replay lags the received bytes, recording the
    /// runtime-monotonic ns when the lag began; `None` while caught up.
    lag_since: Mutex<Option<u64>>,
    /// Wakes [`AppliedWatch`] waiters whenever the replay frontier moves
    /// (continuous redo or a snapshot rebase).
    apply_mutex: Mutex<()>,
    apply_cv: runtime::RtCondvar,
}

impl ReplicaShared {
    /// Publish a new replay frontier and wake every applied-watermark
    /// waiter. All frontier stores go through here so a waiter can never
    /// miss an advance (store happens-before notify under the mutex).
    fn publish_replay(&self, at: Lsn) {
        self.replay.store(at.raw(), Ordering::Release);
        let _g = self.apply_mutex.lock();
        self.apply_cv.notify_all();
    }
}

/// A running replica (apply thread + standby database).
pub struct Replica {
    shared: Arc<ReplicaShared>,
    stop: Arc<AtomicBool>,
    thread: Option<runtime::JoinHandle<()>>,
    opts: DbOptions,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.status();
        f.debug_struct("Replica")
            .field("received", &s.received_lsn)
            .field("replay", &s.replay_lsn)
            .finish()
    }
}

impl Replica {
    /// Spawn a replica from a base backup (the primary's flushed page store
    /// plus schema), receiving the log stream from LSN 0. For a primary
    /// whose log may already be truncated, use
    /// [`Replica::spawn_from_snapshot`].
    pub fn spawn(
        opts: DbOptions,
        store: Arc<PageStore>,
        schema: &[(usize, u64)],
        rx: LinkReceiver<Vec<u8>>,
        ack_tx: LinkSender<Lsn>,
        cfg: ReplicaConfig,
    ) -> StorageResult<Replica> {
        let db = replay::standby_db(opts.clone(), store, schema)?;
        Self::launch(opts, db, Lsn::ZERO, 0, rx, ack_tx, cfg)
    }

    /// Spawn a replica bootstrapped from a checkpoint [`BaseSnapshot`]: the
    /// standby starts from the snapshot's pages and the log stream begins
    /// at the snapshot LSN — the truncated history below it is never
    /// needed. This is how a freshly attached replica joins a long-running
    /// cluster.
    pub fn spawn_from_snapshot(
        opts: DbOptions,
        snap: &BaseSnapshot,
        rx: LinkReceiver<Vec<u8>>,
        ack_tx: LinkSender<Lsn>,
        cfg: ReplicaConfig,
    ) -> StorageResult<Replica> {
        let db = replay::standby_from_snapshot(opts.clone(), snap)?;
        Self::launch(opts, db, snap.start_lsn, 1, rx, ack_tx, cfg)
    }

    fn launch(
        opts: DbOptions,
        db: Arc<Db>,
        base: Lsn,
        bootstraps: u64,
        rx: LinkReceiver<Vec<u8>>,
        ack_tx: LinkSender<Lsn>,
        cfg: ReplicaConfig,
    ) -> StorageResult<Replica> {
        let shared = Arc::new(ReplicaShared {
            state: RwLock::new(ReplicaState {
                db,
                device: Arc::new(OffsetDevice::new(base)),
            }),
            received: AtomicU64::new(base.raw()),
            replay: AtomicU64::new(base.raw()),
            applied: AtomicU64::new(0),
            commits_seen: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            bootstraps: AtomicU64::new(bootstraps),
            lag_since: Mutex::new(None),
            apply_mutex: Mutex::new(()),
            apply_cv: runtime::RtCondvar::new(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let rt = opts.log_config.runtime.clone();
            let opts = opts.clone();
            rt.spawn("aether-replica", move || {
                apply_loop(shared, stop, opts, rx, ack_tx, cfg)
            })
        };
        Ok(Replica {
            shared,
            stop,
            thread: Some(thread),
            opts,
        })
    }

    /// Snapshot read against the standby (no locks; staleness bounded by
    /// [`ReplicaStatus::staleness`]).
    pub fn read(&self, table: u32, key: u64) -> StorageResult<Option<Vec<u8>>> {
        let db = Arc::clone(&self.shared.state.read().db);
        replay::snapshot_read(&db, table, key)
    }

    /// The standby database (tests fingerprint its state). A snapshot
    /// bootstrap replaces the standby wholesale — re-fetch after one.
    pub fn db(&self) -> Arc<Db> {
        Arc::clone(&self.shared.state.read().db)
    }

    /// Current progress counters.
    pub fn status(&self) -> ReplicaStatus {
        ReplicaStatus {
            received_lsn: Lsn(self.shared.received.load(Ordering::Acquire)),
            replay_lsn: Lsn(self.shared.replay.load(Ordering::Acquire)),
            applied: self.shared.applied.load(Ordering::Relaxed),
            commits_seen: self.shared.commits_seen.load(Ordering::Relaxed),
            corrupt_frames: self.shared.corrupt_frames.load(Ordering::Relaxed),
            bootstraps: self.shared.bootstraps.load(Ordering::Relaxed),
            staleness: self
                .shared
                .lag_since
                .lock()
                .map(|t| Duration::from_nanos(runtime::monotonic_ns().saturating_sub(t)))
                .unwrap_or(Duration::ZERO),
        }
    }

    /// Block until the replay frontier reaches `lsn` or `timeout` elapses;
    /// true on success. Notification-driven via [`Replica::applied_watch`]
    /// — no spin or sleep polling.
    pub fn wait_replay(&self, lsn: Lsn, timeout: Duration) -> bool {
        self.applied_watch().wait_for(lsn, timeout) >= lsn
    }

    /// A notification handle over this replica's applied watermark — the
    /// replica-side analogue of [`aether_core::manager::DurableWatch`].
    /// Waiting blocks on a condvar the apply thread signals per replayed
    /// batch, instead of sleep-polling [`ReplicaStatus::replay_lsn`].
    /// Cloneable and detached from the replica's lifetime.
    pub fn applied_watch(&self) -> AppliedWatch {
        AppliedWatch {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A cloneable serving handle: lock-free snapshot reads plus the
    /// applied watermark, detached from the replica's lifetime (the
    /// `ReadRouter` holds these, not the replicas themselves).
    pub fn reader(&self) -> ReplicaReader {
        ReplicaReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop the apply thread (idempotent); the standby stays readable.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Promote: finish replaying whatever arrived, then run full ARIES
    /// recovery (analysis / redo / undo) over the shipped prefix — which
    /// starts at the replica's bootstrap LSN, not zero: recovery tolerates
    /// the missing (truncated) history because the snapshot's pages already
    /// contain it. The shipped log may end in a torn frame — recovery
    /// truncates at the first invalid record, exactly as after a local
    /// crash. In-flight primary transactions whose commit never arrived are
    /// rolled back; every commit the primary acked under SemiSync/Quorum
    /// (which required this ack) is present and survives.
    pub fn promote(mut self) -> StorageResult<(Arc<Db>, RecoveryStats)> {
        self.stop();
        // Persist the replayed pages so recovery starts from them (redo then
        // skips everything at or below each page LSN).
        let state = self.shared.state.read();
        state.db.flush_pages();
        let image = CrashImage {
            log_start: state.device.base(),
            log_bytes: state.device.contents(),
            store: state.db.store().deep_clone(),
            schema: state.db.schema(),
        };
        drop(state);
        aether_storage::recovery::recover_with_stats(image, self.opts.clone())
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A waitable view of one replica's applied (replay) watermark — see
/// [`Replica::applied_watch`]. Every record below [`AppliedWatch::current`]
/// is applied to the standby and visible to snapshot reads.
#[derive(Clone)]
pub struct AppliedWatch {
    shared: Arc<ReplicaShared>,
}

impl std::fmt::Debug for AppliedWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppliedWatch")
            .field("applied", &self.current())
            .finish()
    }
}

impl AppliedWatch {
    /// Current applied watermark.
    pub fn current(&self) -> Lsn {
        Lsn(self.shared.replay.load(Ordering::Acquire))
    }

    /// Block until the applied watermark reaches `lsn` or `timeout`
    /// elapses; returns the watermark observed at wake-up (`>= lsn` iff the
    /// wait succeeded). The apply thread signals once per replayed batch,
    /// so a waiter wakes with the freshest frontier, not a poll-quantum
    /// later.
    pub fn wait_for(&self, lsn: Lsn, timeout: Duration) -> Lsn {
        let deadline = runtime::monotonic_ns().saturating_add(timeout.as_nanos() as u64);
        let mut g = self.shared.apply_mutex.lock();
        loop {
            let at = Lsn(self.shared.replay.load(Ordering::Acquire));
            if at >= lsn {
                return at;
            }
            let now = runtime::monotonic_ns();
            if now >= deadline {
                return at;
            }
            let left = Duration::from_nanos(deadline - now);
            let (g2, _) = self
                .shared
                .apply_cv
                .wait_for(&self.shared.apply_mutex, g, left);
            g = g2;
        }
    }
}

/// A cloneable serving handle over one replica's standby — see
/// [`Replica::reader`]. This is the unit the `ReadRouter` load-balances:
/// lock-free snapshot reads, the applied watermark (and a blocking wait on
/// it), and the received watermark for lag accounting.
#[derive(Clone)]
pub struct ReplicaReader {
    shared: Arc<ReplicaShared>,
}

impl std::fmt::Debug for ReplicaReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaReader")
            .field("applied", &self.applied())
            .finish()
    }
}

impl ReplicaReader {
    /// Lock-free snapshot read against the standby.
    pub fn read(&self, table: u32, key: u64) -> StorageResult<Option<Vec<u8>>> {
        let db = Arc::clone(&self.shared.state.read().db);
        replay::snapshot_read(&db, table, key)
    }

    /// Applied (replay) watermark: the freshness this replica can serve.
    pub fn applied(&self) -> Lsn {
        Lsn(self.shared.replay.load(Ordering::Acquire))
    }

    /// Durably received (acked) watermark.
    pub fn received(&self) -> Lsn {
        Lsn(self.shared.received.load(Ordering::Acquire))
    }

    /// A watch over the applied watermark (shared with the replica).
    pub fn applied_watch(&self) -> AppliedWatch {
        AppliedWatch {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Block until the applied watermark reaches `lsn` or `timeout`
    /// elapses; returns the watermark at wake-up.
    pub fn wait_applied(&self, lsn: Lsn, timeout: Duration) -> Lsn {
        self.applied_watch().wait_for(lsn, timeout)
    }
}

fn apply_loop(
    shared: Arc<ReplicaShared>,
    stop: Arc<AtomicBool>,
    opts: DbOptions,
    rx: LinkReceiver<Vec<u8>>,
    ack_tx: LinkSender<Lsn>,
    cfg: ReplicaConfig,
) {
    // Replica-side observability rides on the standby's log telemetry (the
    // standby is re-seedable, so re-fetch the registry after a bootstrap —
    // ids are stable because registration is idempotent by name).
    let tel = Arc::clone(shared.state.read().db.log().telemetry());
    let m_reorder = tel.gauge("repl.reorder_depth", aether_core::telemetry::Unit::Records);
    let m_staleness = tel.gauge("repl.staleness_ns", aether_core::telemetry::Unit::Nanos);
    // Reorder resistance: messages parked until their predecessors arrive.
    let mut pending: BTreeMap<u64, WireMsg> = BTreeMap::new();
    let mut next_seq = 0u64;
    let mut replay_at = Lsn(shared.replay.load(Ordering::Acquire));
    loop {
        if let Some(bytes) = rx.recv_timeout(cfg.poll) {
            replay_at = ingest(
                &shared,
                &opts,
                &ack_tx,
                &mut pending,
                &mut next_seq,
                replay_at,
                &bytes,
            );
            tel.gauge_set(m_reorder, pending.len() as i64);
        }
        // Continuous redo over everything received so far.
        replay_at = replay_available(&shared, replay_at);
        if tel.on() {
            let stale = shared
                .lag_since
                .lock()
                .map(|t| runtime::monotonic_ns().saturating_sub(t))
                .unwrap_or(0);
            tel.gauge_set(m_staleness, stale as i64);
        }
        if stop.load(Ordering::Relaxed) {
            // Final drain of already-delivered messages, then exit. Frames
            // still parked behind a gap stay unapplied — the gap is where
            // the stream (and any later promotion) cleanly ends.
            while let Some(bytes) = rx.try_recv() {
                replay_at = ingest(
                    &shared,
                    &opts,
                    &ack_tx,
                    &mut pending,
                    &mut next_seq,
                    replay_at,
                    &bytes,
                );
            }
            replay_available(&shared, replay_at);
            return;
        }
    }
}

/// Decode one wire message, restore sequence order, apply the contiguous
/// run — appending log bytes, or installing a snapshot bootstrap — and ack
/// the durably-received LSN. Returns the (possibly rebased) replay cursor.
fn ingest(
    shared: &ReplicaShared,
    opts: &DbOptions,
    ack_tx: &LinkSender<Lsn>,
    pending: &mut BTreeMap<u64, WireMsg>,
    next_seq: &mut u64,
    mut replay_at: Lsn,
    bytes: &[u8],
) -> Lsn {
    match WireMsg::decode(bytes) {
        Some(m) if m.seq() >= *next_seq => {
            pending.insert(m.seq(), m);
        }
        Some(_) => {} // duplicate of an already-applied message
        None => {
            // Corrupt message: drop it. Its sequence number never arrives,
            // so the stream stops advancing cleanly at the gap — nothing
            // corrupt is ever appended or installed.
            shared.corrupt_frames.fetch_add(1, Ordering::Relaxed);
            return replay_at;
        }
    }
    // Apply the contiguous run restored so far, then ack once.
    let mut advanced = false;
    while let Some(m) = pending.remove(next_seq) {
        match m {
            WireMsg::Log(f) => {
                let device = Arc::clone(&shared.state.read().device);
                let have = device.len();
                let start = f.start_lsn.raw();
                let end = f.end_lsn().raw();
                if end > have {
                    // Skip any overlap with already-received bytes (a
                    // re-shipped prefix after reconnect), append the rest.
                    let skip = have.saturating_sub(start) as usize;
                    if start <= have && device.append(&f.bytes[skip..]).is_ok() {
                        advanced = true;
                    }
                }
            }
            WireMsg::Snapshot(s) => {
                if let Some(at) = install_snapshot(shared, opts, &s) {
                    replay_at = at;
                    advanced = true;
                }
            }
        }
        *next_seq += 1;
    }
    if advanced {
        let received = shared.state.read().device.len();
        shared.received.store(received, Ordering::Release);
        let mut lag = shared.lag_since.lock();
        if lag.is_none() {
            *lag = Some(runtime::monotonic_ns());
        }
        drop(lag);
        // One cumulative ack per restored run: this is what the primary's
        // commit gate waits on.
        ack_tx.send(Lsn(received));
    }
    replay_at
}

/// Re-seed the standby from a shipped checkpoint snapshot: fresh database
/// from the snapshot pages, log device rebased at the snapshot LSN. A
/// malformed snapshot counts as a corrupt frame (its gap stalls the stream,
/// like any other corruption). Returns the new replay cursor.
fn install_snapshot(shared: &ReplicaShared, opts: &DbOptions, s: &SnapshotFrame) -> Option<Lsn> {
    let snap = BaseSnapshot::decode(&s.body).or_else(|| {
        shared.corrupt_frames.fetch_add(1, Ordering::Relaxed);
        None
    })?;
    let db = replay::standby_from_snapshot(opts.clone(), &snap).ok()?;
    let mut state = shared.state.write();
    // Never re-seed backwards: a stale snapshot (reordered behind a newer
    // one) would discard received bytes.
    if snap.start_lsn.raw() < state.device.len() {
        return None;
    }
    state.db = db;
    state.device = Arc::new(OffsetDevice::new(snap.start_lsn));
    drop(state);
    shared.publish_replay(snap.start_lsn);
    shared.bootstraps.fetch_add(1, Ordering::Relaxed);
    Some(snap.start_lsn)
}

/// Replay complete records in `[from, received)`; returns the new frontier.
/// Stops at an incomplete tail (more bytes may still arrive) or at a torn /
/// corrupt record (promotion truncates there).
fn replay_available(shared: &ReplicaShared, from: Lsn) -> Lsn {
    let (db, device) = {
        let state = shared.state.read();
        (Arc::clone(&state.db), Arc::clone(&state.device))
    };
    let mut reader = LogReader::from_lsn(device.clone() as Arc<dyn LogDevice>, from);
    let mut at = from;
    // Stops at an incomplete tail or corrupt record alike (Ok(None)/Err).
    while let Ok(Some(rec)) = reader.next_record() {
        if rec.header.kind == aether_core::RecordKind::Commit {
            shared.commits_seen.fetch_add(1, Ordering::Relaxed);
        }
        if replay::apply_record(&db, &rec).unwrap_or(false) {
            shared.applied.fetch_add(1, Ordering::Relaxed);
        }
        at = rec.next_lsn();
    }
    shared.publish_replay(at);
    if at.raw() >= device.len() {
        *shared.lag_since.lock() = None;
    }
    at
}
