//! The replica: receives shipped log runs, keeps a standby database warm by
//! continuous redo, serves bounded-staleness snapshot reads, and can be
//! promoted to a full primary via ordinary ARIES recovery.
//!
//! Protocol: frames are restored to sequence order (reorder-resistant),
//! appended to the replica's own log device, and **acked at the durably
//! received LSN** — semi-synchronous semantics: an ack means "these bytes
//! survive a primary failure", not "these bytes are already applied".
//! Replay then advances independently through [`aether_storage::replay`];
//! the gap between received and replayed is the replica's lag, and the time
//! since the last applied batch is its measured staleness bound.

use crate::frame::Frame;
use crate::transport::{LinkReceiver, LinkSender};
use aether_core::device::{LogDevice, SimDevice};
use aether_core::reader::LogReader;
use aether_core::Lsn;
use aether_storage::db::{CrashImage, Db, DbOptions};
use aether_storage::error::StorageResult;
use aether_storage::recovery::RecoveryStats;
use aether_storage::replay;
use aether_storage::store::PageStore;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replica tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Shutdown-responsiveness bound for the apply thread's receive wait.
    pub poll: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            poll: Duration::from_millis(5),
        }
    }
}

/// A point-in-time view of a replica's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Bytes durably received (and acked) so far.
    pub received_lsn: Lsn,
    /// Replay frontier: every record below this is applied to the standby.
    pub replay_lsn: Lsn,
    /// Records applied (page-changing redo).
    pub applied: u64,
    /// Commit records observed by replay.
    pub commits_seen: u64,
    /// Frames dropped for failing their CRC or decode.
    pub corrupt_frames: u64,
    /// Measured staleness bound: time since replay last caught up with the
    /// received bytes (zero when fully caught up at sampling time).
    pub staleness: Duration,
}

struct ReplicaShared {
    db: Arc<Db>,
    device: Arc<SimDevice>,
    received: AtomicU64,
    replay: AtomicU64,
    applied: AtomicU64,
    commits_seen: AtomicU64,
    corrupt_frames: AtomicU64,
    /// `Some(t)` while replay lags the received bytes, recording when the
    /// lag began; `None` while caught up.
    lag_since: Mutex<Option<Instant>>,
}

/// A running replica (apply thread + standby database).
pub struct Replica {
    shared: Arc<ReplicaShared>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    opts: DbOptions,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.status();
        f.debug_struct("Replica")
            .field("received", &s.received_lsn)
            .field("replay", &s.replay_lsn)
            .finish()
    }
}

impl Replica {
    /// Spawn a replica from a base backup (the primary's flushed page store
    /// plus schema), receiving frames from `rx` and acking through `ack_tx`.
    pub fn spawn(
        opts: DbOptions,
        store: Arc<PageStore>,
        schema: &[(usize, u64)],
        rx: LinkReceiver<Vec<u8>>,
        ack_tx: LinkSender<Lsn>,
        cfg: ReplicaConfig,
    ) -> StorageResult<Replica> {
        let db = replay::standby_db(opts.clone(), store, schema)?;
        let shared = Arc::new(ReplicaShared {
            db,
            device: Arc::new(SimDevice::new(Duration::ZERO)),
            received: AtomicU64::new(0),
            replay: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            commits_seen: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            lag_since: Mutex::new(None),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("aether-replica".into())
                .spawn(move || apply_loop(shared, stop, rx, ack_tx, cfg))
                .expect("spawn replica apply thread")
        };
        Ok(Replica {
            shared,
            stop,
            thread: Some(thread),
            opts,
        })
    }

    /// Snapshot read against the standby (no locks; staleness bounded by
    /// [`ReplicaStatus::staleness`]).
    pub fn read(&self, table: u32, key: u64) -> StorageResult<Option<Vec<u8>>> {
        replay::snapshot_read(&self.shared.db, table, key)
    }

    /// The standby database (tests fingerprint its state).
    pub fn db(&self) -> &Arc<Db> {
        &self.shared.db
    }

    /// Current progress counters.
    pub fn status(&self) -> ReplicaStatus {
        ReplicaStatus {
            received_lsn: Lsn(self.shared.received.load(Ordering::Acquire)),
            replay_lsn: Lsn(self.shared.replay.load(Ordering::Acquire)),
            applied: self.shared.applied.load(Ordering::Relaxed),
            commits_seen: self.shared.commits_seen.load(Ordering::Relaxed),
            corrupt_frames: self.shared.corrupt_frames.load(Ordering::Relaxed),
            staleness: self
                .shared
                .lag_since
                .lock()
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO),
        }
    }

    /// Block until the replay frontier reaches `lsn` or `timeout` elapses;
    /// true on success.
    pub fn wait_replay(&self, lsn: Lsn, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut backoff = aether_core::buffer::WaitBackoff::new();
        while Lsn(self.shared.replay.load(Ordering::Acquire)) < lsn {
            if Instant::now() >= deadline {
                return false;
            }
            backoff.wait();
        }
        true
    }

    /// Stop the apply thread (idempotent); the standby stays readable.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Promote: finish replaying whatever arrived, then run full ARIES
    /// recovery (analysis / redo / undo) over the shipped prefix. The
    /// shipped log may end in a torn frame — recovery truncates at the first
    /// invalid record, exactly as after a local crash. In-flight primary
    /// transactions whose commit never arrived are rolled back; every
    /// commit the primary acked under SemiSync/Quorum (which required this
    /// ack) is present and survives.
    pub fn promote(mut self) -> StorageResult<(Arc<Db>, RecoveryStats)> {
        self.stop();
        // Persist the replayed pages so recovery starts from them (redo then
        // skips everything at or below each page LSN).
        self.shared.db.flush_pages();
        let image = CrashImage {
            log_bytes: self.shared.device.contents(),
            store: self.shared.db.store().deep_clone(),
            schema: self.shared.db.schema(),
        };
        aether_storage::recovery::recover_with_stats(image, self.opts.clone())
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

fn apply_loop(
    shared: Arc<ReplicaShared>,
    stop: Arc<AtomicBool>,
    rx: LinkReceiver<Vec<u8>>,
    ack_tx: LinkSender<Lsn>,
    cfg: ReplicaConfig,
) {
    // Reorder resistance: frames parked until their predecessors arrive.
    let mut pending: BTreeMap<u64, Frame> = BTreeMap::new();
    let mut next_seq = 0u64;
    let mut replay_at = Lsn::ZERO;
    loop {
        if let Some(bytes) = rx.recv_timeout(cfg.poll) {
            ingest(&shared, &ack_tx, &mut pending, &mut next_seq, &bytes);
        }
        // Continuous redo over everything received so far.
        replay_at = replay_available(&shared, replay_at);
        if stop.load(Ordering::Relaxed) {
            // Final drain of already-delivered frames, then exit. Frames
            // still parked behind a gap stay unapplied — the gap is where
            // the stream (and any later promotion) cleanly ends.
            while let Some(bytes) = rx.try_recv() {
                ingest(&shared, &ack_tx, &mut pending, &mut next_seq, &bytes);
            }
            replay_available(&shared, replay_at);
            return;
        }
    }
}

/// Decode one wire message, restore sequence order, append the contiguous
/// run, and ack the durably-received LSN.
fn ingest(
    shared: &ReplicaShared,
    ack_tx: &LinkSender<Lsn>,
    pending: &mut BTreeMap<u64, Frame>,
    next_seq: &mut u64,
    bytes: &[u8],
) {
    match Frame::decode(bytes) {
        Some(f) if f.seq >= *next_seq => {
            pending.insert(f.seq, f);
        }
        Some(_) => {} // duplicate of an already-appended frame
        None => {
            // Corrupt frame: drop it. Its sequence number never arrives, so
            // the stream stops advancing cleanly at the gap — nothing
            // corrupt is ever appended.
            shared.corrupt_frames.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    // Append the contiguous run restored so far, then ack once.
    let mut appended = false;
    while let Some(f) = pending.remove(next_seq) {
        let have = shared.device.len();
        let start = f.start_lsn.raw();
        let end = f.end_lsn().raw();
        if end > have {
            // Skip any overlap with already-received bytes (a re-shipped
            // prefix after reconnect), append the rest.
            let skip = have.saturating_sub(start) as usize;
            if start <= have && shared.device.append(&f.bytes[skip..]).is_ok() {
                appended = true;
            }
        }
        *next_seq += 1;
    }
    if appended {
        let received = shared.device.len();
        shared.received.store(received, Ordering::Release);
        let mut lag = shared.lag_since.lock();
        if lag.is_none() {
            *lag = Some(Instant::now());
        }
        drop(lag);
        // One cumulative ack per restored run: this is what the primary's
        // commit gate waits on.
        ack_tx.send(Lsn(received));
    }
}

/// Replay complete records in `[from, received)`; returns the new frontier.
/// Stops at an incomplete tail (more bytes may still arrive) or at a torn /
/// corrupt record (promotion truncates there).
fn replay_available(shared: &ReplicaShared, from: Lsn) -> Lsn {
    let mut reader = LogReader::from_lsn(Arc::clone(&shared.device) as Arc<dyn LogDevice>, from);
    let mut at = from;
    // Stops at an incomplete tail or corrupt record alike (Ok(None)/Err).
    while let Ok(Some(rec)) = reader.next_record() {
        if rec.header.kind == aether_core::RecordKind::Commit {
            shared.commits_seen.fetch_add(1, Ordering::Relaxed);
        }
        if replay::apply_record(&shared.db, &rec).unwrap_or(false) {
            shared.applied.fetch_add(1, Ordering::Relaxed);
        }
        at = rec.next_lsn();
    }
    shared.replay.store(at.raw(), Ordering::Release);
    if at.raw() >= shared.device.len() {
        *shared.lag_since.lock() = None;
    }
    at
}
