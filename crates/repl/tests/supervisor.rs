//! Supervisor integration: replica healing and automatic failover.

use aether_core::runtime;
use aether_repl::prelude::*;
use aether_storage::{Db, DbOptions};
use std::sync::Arc;
use std::time::Duration;

const VAL: usize = 64;

fn primary_db() -> Arc<Db> {
    let db = Db::open(DbOptions {
        log_config: aether_core::LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    });
    db.create_table(VAL, 32);
    for k in 0..32u64 {
        db.load(0, k, &[0u8; VAL]).unwrap();
    }
    db.setup_complete();
    db
}

fn commit_mark(db: &Arc<Db>, key: u64, mark: u8) {
    let mut t = db.begin();
    db.update_with(&mut t, 0, key, |r| r[0] = mark).unwrap();
    db.commit(t).unwrap();
}

#[test]
fn stalled_replica_is_quarantined_and_healed() {
    let primary = primary_db();
    let mut cluster = ReplicatedDb::attach(
        Arc::clone(&primary),
        ReplicationConfig {
            replicas: 1,
            policy: DurabilityPolicy::Async,
            ..ReplicationConfig::default()
        },
    )
    .unwrap();
    // A second replica behind a 2-second link: its acks stall immediately.
    let laggard = cluster
        .add_replica_with_link(LinkConfig::with_latency_us(2_000_000))
        .unwrap();
    let sup = Supervisor::start(
        cluster,
        SupervisorConfig {
            probe: Duration::from_millis(2),
            lag_bytes: 1024,
            lag_grace: Duration::from_millis(10),
        },
    );
    // Push the durable frontier well past the lag budget.
    for i in 0..100u64 {
        commit_mark(&primary, i % 32, 7);
    }
    let deadline = runtime::monotonic_ns() + 5_000_000_000;
    while sup.report().heals == 0 {
        assert!(
            runtime::monotonic_ns() < deadline,
            "supervisor never healed the stalled replica: {:?}",
            sup.report()
        );
        runtime::sleep(Duration::from_millis(2));
    }
    assert_eq!(sup.report().promotions, 0, "healthy primary: no failover");
    // The healed pipeline (fresh snapshot + default fast link) catches up.
    let cluster = sup.release().expect("no failover consumed the cluster");
    assert!(
        cluster.wait_catchup(Duration::from_secs(10)),
        "healed replica must catch up: {:?}",
        cluster.status()
    );
    assert_eq!(
        cluster.replica(laggard).read(0, 5).unwrap().unwrap()[0],
        7,
        "replacement replica serves the post-heal state"
    );
}

#[test]
fn poisoned_gate_triggers_auto_promotion_with_zero_committed_loss() {
    let primary = primary_db();
    let cluster = ReplicatedDb::attach(
        Arc::clone(&primary),
        ReplicationConfig {
            replicas: 2,
            policy: DurabilityPolicy::SemiSync(1),
            ..ReplicationConfig::default()
        },
    )
    .unwrap();
    let sup = Supervisor::start(cluster, SupervisorConfig::default());
    // Every one of these was acked under SemiSync(1): at least one replica
    // durably holds each before commit() returns.
    for k in 0..32u64 {
        commit_mark(&primary, k, 42);
    }
    // Primary dies: replication is declared dead via the commit gate.
    primary.log().commit_gate().poison();

    let (promoted, stats) = sup
        .wait_promoted(Duration::from_secs(10))
        .expect("supervisor must fail over");
    assert_eq!(sup.report().promotions, 1);
    assert!(stats.winners > 0, "promotion replayed committed work");
    for k in 0..32u64 {
        let v = promoted.snapshot_read(0, k).unwrap().unwrap();
        assert_eq!(v[0], 42, "committed key {k} lost in failover");
    }
    // The supervisor now serves the promoted primary as *the* primary.
    let cur = sup.primary().expect("a primary must exist after failover");
    assert!(Arc::ptr_eq(&cur, &promoted));
}
