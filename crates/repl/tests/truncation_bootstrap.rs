//! Replica bootstrap × log truncation integration tests.
//!
//! The point of PR 3: a long-running primary recycles its log behind fuzzy
//! checkpoints, so (a) a freshly attached replica can no longer receive the
//! full historical log — it must seed from a checkpoint snapshot — and (b)
//! a shipper stranded below the low-water mark (forced truncation) must
//! re-seed its replica over the wire instead of reading recycled bytes.

use aether_core::partition::{MemSegmentFactory, SegmentedDevice};
use aether_core::{BufferKind, Lsn};
use aether_repl::prelude::*;
use aether_repl::transport::link;
use aether_repl::Shipper;
use aether_storage::replay::state_fingerprint;
use aether_storage::store::PageStore;
use aether_storage::{CommitProtocol, Db, DbOptions};
use std::sync::Arc;
use std::time::Duration;

fn record(key: u64, v: u64) -> Vec<u8> {
    let mut r = vec![0u8; 40];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&v.to_le_bytes());
    r
}

fn value_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[8..16].try_into().unwrap())
}

/// A primary on a small-segment log, with `rounds` of committed updates and
/// a checkpoint+truncation after each round.
fn truncated_primary(keys: u64, rounds: u64) -> (Arc<Db>, Arc<SegmentedDevice>) {
    let segments = Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 8 * 1024).unwrap());
    let db = Db::open_with_device(
        DbOptions {
            protocol: CommitProtocol::Baseline,
            buffer: BufferKind::Hybrid,
            log_config: aether_core::LogConfig::default().with_buffer_size(1 << 20),
            ..DbOptions::default()
        },
        Arc::clone(&segments) as _,
    );
    db.create_table(40, keys);
    for k in 0..keys {
        db.load(0, k, &record(k, 0)).unwrap();
    }
    db.setup_complete();
    for round in 1..=rounds {
        for k in 0..keys {
            let mut txn = db.begin();
            db.update(&mut txn, 0, k, &record(k, round)).unwrap();
            db.commit(txn).unwrap();
        }
        db.checkpoint_and_truncate();
    }
    (db, segments)
}

/// A replica attached *after* the log prefix was recycled seeds itself from
/// a checkpoint snapshot, keeps up with new traffic, and a further
/// `add_replica` joins the running cluster the same way. Failover from the
/// snapshot-seeded replica loses no acknowledged commit.
#[test]
fn late_attached_replica_bootstraps_from_snapshot() {
    let keys = 16u64;
    let (primary, segments) = truncated_primary(keys, 5);
    assert!(
        segments.recycled_segments() > 0,
        "precondition: history is gone"
    );
    assert!(primary.log().low_water() > Lsn::ZERO);

    // Attach: impossible from LSN 0 (those bytes no longer exist), fine
    // from a snapshot.
    let mut cluster = ReplicatedDb::attach(
        Arc::clone(&primary),
        ReplicationConfig {
            replicas: 1,
            policy: DurabilityPolicy::SemiSync(1),
            link: LinkConfig::with_latency_us(100),
            ..ReplicationConfig::default()
        },
    )
    .unwrap();
    assert_eq!(cluster.replica(0).status().bootstraps, 1);

    // Acked commits flow; the replica serves them.
    for k in 0..keys {
        let mut txn = primary.begin();
        primary.update(&mut txn, 0, k, &record(k, 100)).unwrap();
        assert!(primary.commit(txn).unwrap().is_durable_now());
    }
    assert!(cluster.wait_catchup(Duration::from_secs(10)));
    assert_eq!(
        value_of(&cluster.replica(0).read(0, 3).unwrap().unwrap()),
        100
    );

    // A second replica joins the *running* cluster from a fresh snapshot.
    let idx = cluster.add_replica().unwrap();
    for k in 0..keys {
        let mut txn = primary.begin();
        primary.update(&mut txn, 0, k, &record(k, 200)).unwrap();
        assert!(primary.commit(txn).unwrap().is_durable_now());
    }
    assert!(cluster.wait_catchup(Duration::from_secs(10)));
    assert_eq!(
        value_of(&cluster.replica(idx).read(0, 7).unwrap().unwrap()),
        200
    );

    // More checkpoints while replicated: truncation never outruns the
    // replicas' acks (safe entry point), and keeps recycling.
    let out = primary.checkpoint_and_truncate();
    assert!(out.applied <= primary.log().durable_lsn());

    // Failover: promotion over the snapshot-seeded prefix is lossless.
    cluster.kill_primary();
    let candidate = cluster.most_caught_up();
    let (promoted, _) = cluster.promote(candidate).unwrap();
    let mut txn = promoted.begin();
    for k in 0..keys {
        assert_eq!(
            value_of(&promoted.read(&mut txn, 0, k).unwrap()),
            200,
            "acked commit for key {k} must survive failover"
        );
    }
    promoted.commit(txn).unwrap();
}

/// A shipper whose read cursor lies below the log's low-water mark (here: a
/// stale start position against an already-truncated primary — the same
/// state a forced truncation leaves behind) ships a snapshot frame instead
/// of the unreadable bytes; the replica re-seeds itself and converges to
/// the primary's exact state.
#[test]
fn stranded_shipper_reseeds_replica_over_the_wire() {
    let keys = 8u64;
    let (primary, _segments) = truncated_primary(keys, 4);
    let low_water = primary.log().low_water();
    assert!(low_water > Lsn::ZERO);

    // A replica with no useful seed (empty store, no schema) and a shipper
    // starting at LSN 0 — below the low-water mark.
    let (frame_tx, frame_rx) = link::<Vec<u8>>(LinkConfig::default());
    let (ack_tx, ack_rx) = link::<Lsn>(LinkConfig::default());
    let replica = Replica::spawn(
        primary.options().clone(),
        PageStore::new(),
        &[],
        frame_rx,
        ack_tx,
        ReplicaConfig::default(),
    )
    .unwrap();
    let ack = primary.log().commit_gate().register_replica();
    let mut shipper = Shipper::spawn(
        Arc::clone(&primary),
        frame_tx,
        ack_rx,
        ack,
        Lsn::ZERO,
        ShipperConfig::default(),
    );

    // New committed traffic after the strand.
    for k in 0..keys {
        let mut txn = primary.begin();
        primary.update(&mut txn, 0, k, &record(k, 777)).unwrap();
        primary.commit(txn).unwrap();
    }
    primary.log().flush_all().unwrap();
    assert!(
        replica.wait_replay(primary.log().durable_lsn(), Duration::from_secs(10)),
        "re-seeded replica must catch up to the durable frontier"
    );
    assert!(
        shipper.snapshots_sent() >= 1,
        "bootstrap went over the wire"
    );
    let st = replica.status();
    assert!(st.bootstraps >= 1);
    assert_eq!(st.corrupt_frames, 0);
    assert!(
        st.received_lsn >= low_water,
        "replica stream begins at/above the snapshot LSN"
    );
    assert_eq!(
        state_fingerprint(&replica.db()).unwrap(),
        state_fingerprint(&primary).unwrap(),
        "snapshot + shipped suffix reproduce the primary exactly"
    );
    shipper.stop();
}
