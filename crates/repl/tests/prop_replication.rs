//! Property tests for log-shipping replication:
//!
//! * For any generated workload and **any prefix of shipped runs**, the
//!   replica's replayed table state equals the primary's state replayed to
//!   the same LSN — independent of how the byte stream was cut into frames.
//! * The full pipeline (links with latency + reordering, shipper, replica)
//!   converges to the primary's exact state for any workload.

use aether_core::device::LogDevice;
use aether_core::reader::LogReader;
use aether_core::runtime::Runtime;
use aether_core::{BufferKind, DeviceKind, LogConfig, Lsn};
use aether_repl::frame::Frame;
use aether_repl::prelude::*;
use aether_storage::replay::{apply_record, standby_db, state_fingerprint, CellFingerprint};
use aether_storage::{CommitProtocol, Db, DbOptions};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn opts() -> DbOptions {
    DbOptions {
        protocol: CommitProtocol::Baseline,
        buffer: BufferKind::Hybrid,
        device: DeviceKind::Ram,
        log_config: LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    }
}

fn mk(key: u64, v: u64) -> Vec<u8> {
    let mut r = vec![0u8; 24];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&v.to_le_bytes());
    r
}

/// Run a generated script against a fresh primary. Ops: update / insert /
/// delete / abort, over dense keys 0..8 and appended keys 100..104.
/// Returns the primary after a final log flush.
fn run_script(script: &[(u8, u64, u64, bool)]) -> Arc<Db> {
    let db = Db::open(opts());
    db.create_table(24, 8);
    for k in 0..8u64 {
        db.load(0, k, &mk(k, 0)).unwrap();
    }
    db.setup_complete();
    for &(op, key, v, commit) in script {
        let mut txn = db.begin();
        let key = match op % 3 {
            0 => key % 8,       // dense update target
            _ => 100 + key % 5, // appended-key insert/delete target
        };
        let ok = match op % 3 {
            0 => db.update(&mut txn, 0, key, &mk(key, v)).is_ok(),
            1 => db.insert(&mut txn, 0, key, &mk(key, v)).is_ok(),
            _ => db.delete(&mut txn, 0, key).is_ok(),
        };
        if ok && commit {
            db.commit(txn).unwrap();
        } else {
            db.abort(txn).unwrap();
        }
    }
    db.log().flush_all().unwrap();
    db
}

/// Replay `bytes[..cut]` into a fresh standby via frames of the given chunk
/// size (exercising arbitrary run boundaries), returning its fingerprint
/// and the replayed LSN frontier.
fn replay_prefix_chunked(primary: &Db, bytes: &[u8], chunk: usize) -> (CellFingerprint, Lsn) {
    let standby = standby_db(opts(), primary.store().deep_clone(), &primary.schema()).unwrap();
    let device = Arc::new(aether_core::device::SimDevice::new(Duration::ZERO));
    let mut seq = 0u64;
    let mut at = 0usize;
    while at < bytes.len() {
        let n = chunk.min(bytes.len() - at);
        // Round-trip through the wire encoding: what the replica would see.
        let f = Frame {
            seq,
            start_lsn: Lsn(at as u64),
            bytes: bytes[at..at + n].to_vec(),
        };
        let decoded = Frame::decode(&f.encode()).expect("frame round-trips");
        device.append(&decoded.bytes).unwrap();
        seq += 1;
        at += n;
    }
    let mut frontier = Lsn::ZERO;
    let mut reader = LogReader::new(Arc::clone(&device) as Arc<dyn aether_core::device::LogDevice>);
    while let Some(rec) = reader.next_record().unwrap() {
        apply_record(&standby, &rec).unwrap();
        frontier = rec.next_lsn();
    }
    (state_fingerprint(&standby).unwrap(), frontier)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any prefix of the shipped stream, cut into frames of any size,
    /// replays to exactly the state of the primary's log replayed to the
    /// same LSN (the one-shot whole-prefix replay is the reference).
    #[test]
    fn any_prefix_any_chunking_matches_reference_replay(
        script in proptest::collection::vec(
            (0u8..3, 0u64..8, 1u64..10_000, any::<bool>()), 1..30),
        cut_frac in 0.0f64..1.0,
        chunk in 1usize..512,
    ) {
        let primary = run_script(&script);
        let bytes = primary.log().device().snapshot().unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;

        let (chunked, lsn_a) = replay_prefix_chunked(&primary, &bytes[..cut], chunk);
        // Reference: the same prefix in one run (chunk > prefix length).
        let (reference, lsn_b) =
            replay_prefix_chunked(&primary, &bytes[..cut], bytes.len().max(1));
        prop_assert_eq!(lsn_a, lsn_b, "replay frontier independent of framing");
        prop_assert_eq!(chunked, reference, "state independent of framing");
    }

    /// The live pipeline — latency, reordering links, shipper, replica —
    /// converges to the primary's exact state for any workload.
    #[test]
    fn live_pipeline_converges_to_primary_state(
        script in proptest::collection::vec(
            (0u8..3, 0u64..8, 1u64..10_000, any::<bool>()), 1..25),
        reorder in 0usize..4,
        latency_us in 0u64..300,
    ) {
        let primary = Db::open(opts());
        primary.create_table(24, 8);
        for k in 0..8u64 {
            primary.load(0, k, &mk(k, 0)).unwrap();
        }
        primary.setup_complete();
        let cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 1,
                policy: DurabilityPolicy::Async,
                link: LinkConfig {
                    latency: Duration::from_micros(latency_us),
                    reorder_period: reorder,
                    ..LinkConfig::default()
                },
                shipper: ShipperConfig { chunk: 96, ..ShipperConfig::default() },
                ..ReplicationConfig::default()
            },
        ).unwrap();
        for &(op, key, v, commit) in &script {
            let mut txn = primary.begin();
            let key = match op % 3 {
                0 => key % 8,
                _ => 100 + key % 5,
            };
            let ok = match op % 3 {
                0 => primary.update(&mut txn, 0, key, &mk(key, v)).is_ok(),
                1 => primary.insert(&mut txn, 0, key, &mk(key, v)).is_ok(),
                _ => primary.delete(&mut txn, 0, key).is_ok(),
            };
            if ok && commit {
                primary.commit(txn).unwrap();
            } else {
                primary.abort(txn).unwrap();
            }
        }
        primary.log().flush_all().unwrap();
        prop_assert!(cluster.wait_catchup(Duration::from_secs(10)), "replica caught up");
        let st = cluster.replica(0).status();
        prop_assert_eq!(st.corrupt_frames, 0);
        prop_assert_eq!(
            state_fingerprint(&cluster.replica(0).db()).unwrap(),
            state_fingerprint(&primary).unwrap(),
            "replica state == primary state"
        );
    }
}

/// The live pipeline under [`Runtime::sim`]: the same seed must replay
/// the same scheduler history — shipper, reordering link, replica apply
/// loop included — and converge to the same fingerprint both times.
/// `AETHER_SIM_SEED=<n>` replays a specific interleaving.
#[test]
fn sim_seeded_pipeline_replays_byte_identically() {
    // splitmix64, inlined (this crate cannot depend on aether-sim — the
    // sim crate depends on us): decorrelates the op script from the
    // scheduler's own seed stream.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn run(seed: u64) -> ((u64, u64), CellFingerprint, CellFingerprint) {
        let rt = Runtime::sim(seed);
        let guard = rt.enter();
        let opts = DbOptions {
            log_config: LogConfig::default()
                .with_buffer_size(1 << 20)
                .with_runtime(rt.clone()),
            ..opts()
        };
        let primary = Db::open(opts);
        primary.create_table(24, 8);
        for k in 0..8u64 {
            primary.load(0, k, &mk(k, 0)).unwrap();
        }
        primary.setup_complete();
        let mut cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: 1,
                policy: DurabilityPolicy::Async,
                link: LinkConfig {
                    latency: Duration::from_micros(120),
                    reorder_period: 3,
                    runtime: rt.clone(),
                    ..LinkConfig::default()
                },
                shipper: ShipperConfig {
                    chunk: 96,
                    ..ShipperConfig::default()
                },
                ..ReplicationConfig::default()
            },
        )
        .unwrap();

        let mut s = seed ^ 0xC0DE;
        for _ in 0..40 {
            let (op, key, v, commit) = (mix(&mut s), mix(&mut s), mix(&mut s), mix(&mut s));
            let mut txn = primary.begin();
            let key = match op % 3 {
                0 => key % 8,
                _ => 100 + key % 5,
            };
            let ok = match op % 3 {
                0 => primary.update(&mut txn, 0, key, &mk(key, v)).is_ok(),
                1 => primary.insert(&mut txn, 0, key, &mk(key, v)).is_ok(),
                _ => primary.delete(&mut txn, 0, key).is_ok(),
            };
            if ok && commit % 4 != 0 {
                primary.commit(txn).unwrap();
            } else {
                primary.abort(txn).unwrap();
            }
        }
        primary.log().flush_all().unwrap();
        assert!(
            cluster.wait_catchup(Duration::from_secs(30)),
            "replica caught up (virtual time)"
        );
        let fp_primary = state_fingerprint(&primary).unwrap();
        let fp_replica = state_fingerprint(&cluster.replica(0).db()).unwrap();
        cluster.shutdown();
        primary.log().shutdown();
        let history = rt.history();
        drop(guard);
        (history, fp_primary, fp_replica)
    }

    let seed: u64 = std::env::var("AETHER_SIM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xA57E_C0DE);
    let (h1, p1, r1) = run(seed);
    assert_eq!(r1, p1, "replica converged to primary state");
    let (h2, p2, r2) = run(seed);
    assert_eq!(h1, h2, "same seed must replay the same scheduler history");
    assert_eq!((p1, r1), (p2, r2), "same history, same states");
    let (h3, _, _) = run(seed ^ 1);
    assert_ne!(h1, h3, "different seed must steer the interleaving");
}
