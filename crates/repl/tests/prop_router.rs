//! Property tests for the read router's three core invariants, under
//! randomized replica lag (up to effectively-failed: a link so slow the
//! replica never applies anything within the test horizon), random join
//! interleavings, and all three routing policies:
//!
//! (a) **Read-your-writes**: a session read never observes state older
//!     than the session's commit-token watermark — the value read for a
//!     key is exactly the last value this (single-writer) session
//!     committed to it.
//! (b) **Bounded staleness**: `read_at_least(lsn)` never returns a
//!     snapshot whose applied watermark is below `lsn`.
//! (c) **Quarantine**: a quarantined replica receives no reads until it
//!     is re-admitted.

use aether_core::{BufferKind, DeviceKind, LogConfig};
use aether_repl::prelude::*;
use aether_storage::{CommitProtocol, Db, DbOptions};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const KEYS: u64 = 8;

fn opts() -> DbOptions {
    DbOptions {
        protocol: CommitProtocol::Baseline,
        buffer: BufferKind::Hybrid,
        device: DeviceKind::Ram,
        log_config: LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    }
}

fn mk(key: u64, v: u64) -> Vec<u8> {
    let mut r = vec![0u8; 24];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&v.to_le_bytes());
    r
}

fn counter_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[8..16].try_into().unwrap())
}

fn primary() -> Arc<Db> {
    let db = Db::open(opts());
    db.create_table(24, KEYS);
    for k in 0..KEYS {
        db.load(0, k, &mk(k, 0)).unwrap();
    }
    db.setup_complete();
    db
}

/// Per-read check for invariant (c): comparing router stats before/after a
/// single-threaded read, any replica that was quarantined across the whole
/// read (and was not re-admitted during it) must not have served it.
fn assert_no_quarantined_serves(
    before: &RouterStats,
    after: &RouterStats,
) -> Result<(), TestCaseError> {
    for i in 0..before.quarantined.len() {
        if before.quarantined[i]
            && after.quarantined[i]
            && before.readmissions == after.readmissions
        {
            prop_assert_eq!(
                before.routed_per_replica[i],
                after.routed_per_replica[i],
                "replica {} served a read while quarantined: {:?} -> {:?}",
                i,
                before,
                after
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn session_reads_are_token_monotonic_under_lag(
        ops in proptest::collection::vec((0u64..KEYS, 1u64..10_000), 5..30),
        policy_ix in 0usize..3,
        healthy in 1usize..3,
        lag_ms in 0u64..400,
        budget_us in 200u64..20_000,
        join_at in 0usize..5,
        floor_pick in 0usize..64,
    ) {
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastLagged,
            RoutingPolicy::FreshnessWeighted,
        ][policy_ix];
        let primary = primary();
        let mut cluster = ReplicatedDb::attach(
            Arc::clone(&primary),
            ReplicationConfig {
                replicas: healthy,
                policy: DurabilityPolicy::SemiSync(1),
                ..ReplicationConfig::default()
            },
        ).unwrap();

        let router_cfg = RouterConfig {
            policy,
            budget: Duration::from_micros(budget_us),
            quarantine_lag: 256,
            readmit_lag: 128,
            ..RouterConfig::default()
        };
        let session = Session::new();
        let mut last_written = vec![0u64; KEYS as usize];
        let mut tokens: Vec<CommitToken> = Vec::new();
        let mut router: Option<ReadRouter> = None;

        for (i, &(key, v)) in ops.iter().enumerate() {
            // A laggy-to-effectively-failed replica joins mid-workload: the
            // router it feeds is rebuilt to include it (routers hold reader
            // handles; building one is cheap).
            if i == join_at {
                cluster
                    .add_replica_with_link(LinkConfig::with_latency_us(lag_ms * 1_000))
                    .unwrap();
                router = None;
            }
            let router = router.get_or_insert_with(|| cluster.router(router_cfg.clone()));

            let mut txn = primary.begin();
            primary.update(&mut txn, 0, key, &mk(key, v)).unwrap();
            let (_, token) = cluster.commit(txn).unwrap();
            session.observe(token);
            last_written[key as usize] = v;
            tokens.push(token);

            let before = router.stats();
            let read = router.read_session(&session, 0, key).unwrap();
            let after = router.stats();

            // (a) read-your-writes: never older than the session token.
            prop_assert!(
                read.applied >= session.watermark(),
                "session floor {:?}, served applied {:?} from {:?}",
                session.watermark(), read.applied, read.source
            );
            // Single writer + applied >= watermark: the value is exactly
            // the last one this session committed.
            let got = read.value.as_deref().map(counter_of).unwrap_or(0);
            prop_assert_eq!(got, last_written[key as usize], "from {:?}", read.source);

            // (c) no reads land on a quarantined replica.
            assert_no_quarantined_serves(&before, &after)?;
        }

        // (b) explicit bounded-staleness floors: an arbitrary historic
        // token and the freshest one both must be honored.
        let router = router.get_or_insert_with(|| cluster.router(router_cfg.clone()));
        let floor = tokens[floor_pick % tokens.len()].lsn();
        for min in [floor, tokens.last().unwrap().lsn()] {
            let before = router.stats();
            let read = router.read_at_least(0, ops[0].0, min).unwrap();
            let after = router.stats();
            prop_assert!(
                read.applied >= min,
                "read_at_least({min:?}) served applied {:?} from {:?}",
                read.applied, read.source
            );
            assert_no_quarantined_serves(&before, &after)?;
        }
    }
}
