//! Kill-primary → promote-replica integration tests.
//!
//! The headline guarantee: under `SemiSync`, **zero committed-transaction
//! loss** — every commit acknowledged to a client before the primary died
//! is present on the promoted replica. Bounded by the `AETHER_TEST_*` env
//! knobs so CI wall time stays flat (same pattern as the crash tests).

use aether_core::{BufferKind, DeviceKind, LogConfig};
use aether_repl::frame::Frame;
use aether_repl::prelude::*;
use aether_repl::transport::link;
use aether_storage::{CommitProtocol, Db, DbOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opts(protocol: CommitProtocol) -> DbOptions {
    DbOptions {
        protocol,
        buffer: BufferKind::Hybrid,
        device: DeviceKind::Ram,
        log_config: LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    }
}

fn record(key: u64, counter: u64) -> Vec<u8> {
    let mut r = vec![0u8; 40];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&counter.to_le_bytes());
    r
}

fn counter_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[8..16].try_into().unwrap())
}

/// Workers commit monotonically increasing counters under `SemiSync(1)`;
/// the primary "dies" mid-flight (network cut); the most-caught-up replica
/// is promoted. Every counter acknowledged before the kill must be on the
/// promoted database — zero committed-transaction loss.
#[test]
fn semisync_failover_loses_no_acked_commit() {
    let workers = env_or("AETHER_TEST_THREADS", 4u64).max(2);
    let min_acks = env_or("AETHER_TEST_MIN_ACKS", 5u64);

    let primary = Db::open(opts(CommitProtocol::Baseline));
    primary.create_table(40, workers);
    for k in 0..workers {
        primary.load(0, k, &record(k, 0)).unwrap();
    }
    primary.setup_complete();

    let mut cluster = ReplicatedDb::attach(
        Arc::clone(&primary),
        ReplicationConfig {
            replicas: 2,
            policy: DurabilityPolicy::SemiSync(1),
            link: LinkConfig::with_latency_us(200),
            ..ReplicationConfig::default()
        },
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Vec<AtomicU64>> = Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
    let submitted: Arc<Vec<AtomicU64>> =
        Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());

    let acked_floor = std::thread::scope(|s| {
        for k in 0..workers {
            let db = Arc::clone(&primary);
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            let submitted = Arc::clone(&submitted);
            s.spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v += 1;
                    let mut txn = db.begin();
                    db.update(&mut txn, 0, k, &record(k, v)).unwrap();
                    submitted[k as usize].store(v, Ordering::SeqCst);
                    // Blocking SemiSync commit: `Durable` only once a
                    // replica durably holds the commit record. Commits
                    // released by the kill report `Unsafe` (replication
                    // indeterminate) and are not counted as acked.
                    if db.commit(txn).unwrap().is_durable_now() {
                        acked[k as usize].store(v, Ordering::SeqCst);
                    }
                }
            });
        }
        // Let them race until every worker has a meaningful number of
        // SemiSync-acked commits — an ack-count trigger rather than a
        // wall-clock window, so the kill always lands mid-flight with a
        // non-trivial floor — then snapshot the floor and pull the plug.
        let mut backoff = aether_core::buffer::WaitBackoff::new();
        while acked.iter().any(|a| a.load(Ordering::SeqCst) < min_acks) {
            backoff.wait();
        }
        let floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        cluster.kill_primary();
        stop.store(true, Ordering::Relaxed);
        floor
    });

    // Failover: promote the most-caught-up replica.
    let candidate = cluster.most_caught_up();
    let (promoted, stats) = cluster.promote(candidate).unwrap();
    assert!(stats.winners > 0, "promoted replica saw committed work");

    let mut txn = promoted.begin();
    for k in 0..workers {
        let v = counter_of(&promoted.read(&mut txn, 0, k).unwrap());
        let a = acked_floor[k as usize];
        let s = submitted[k as usize].load(Ordering::SeqCst);
        assert!(
            v >= a,
            "key {k}: promoted value {v} lost acked commit {a} — SemiSync must not lose acked work"
        );
        assert!(
            v <= s,
            "key {k}: promoted value {v} exceeds anything submitted ({s})"
        );
    }
    promoted.commit(txn).unwrap();

    // The promoted replica is a full primary: accepts new committed work.
    let mut txn = promoted.begin();
    promoted
        .update(&mut txn, 0, 0, &record(0, 999_999))
        .unwrap();
    promoted.commit(txn).unwrap();
    let mut txn = promoted.begin();
    assert_eq!(counter_of(&promoted.read(&mut txn, 0, 0).unwrap()), 999_999);
    promoted.commit(txn).unwrap();
}

/// A replica served a corrupted frame drops it and stops advancing at the
/// gap — and promotion still succeeds with the clean prefix (truncate, not
/// error).
#[test]
fn corrupt_frame_truncates_cleanly_on_promote() {
    let primary = Db::open(opts(CommitProtocol::Baseline));
    primary.create_table(40, 8);
    for k in 0..8u64 {
        primary.load(0, k, &record(k, 0)).unwrap();
    }
    primary.setup_complete();
    // Three committed batches; remember the log length after each.
    let mut marks = Vec::new();
    for batch in 1..=3u64 {
        for k in 0..8u64 {
            let mut txn = primary.begin();
            primary.update(&mut txn, 0, k, &record(k, batch)).unwrap();
            primary.commit(txn).unwrap();
        }
        primary.log().flush_all().unwrap();
        marks.push(primary.log().device().len());
    }
    let bytes = primary.log().device().snapshot().unwrap();

    // Hand-feed the replica three frames, corrupting the middle one.
    let (tx, rx) = link::<Vec<u8>>(LinkConfig::default());
    let (ack_tx, ack_rx) = link::<aether_core::Lsn>(LinkConfig::default());
    let replica = Replica::spawn(
        opts(CommitProtocol::Baseline),
        primary.store().deep_clone(),
        &primary.schema(),
        rx,
        ack_tx,
        ReplicaConfig::default(),
    )
    .unwrap();
    let cuts = [0, marks[0] as usize, marks[1] as usize, bytes.len()];
    for i in 0..3 {
        let mut enc = Frame {
            seq: i as u64,
            start_lsn: aether_core::Lsn(cuts[i] as u64),
            bytes: bytes[cuts[i]..cuts[i + 1]].to_vec(),
        }
        .encode();
        if i == 1 {
            let at = enc.len() / 2;
            enc[at] ^= 0xFF; // corrupt the middle frame in transit
        }
        assert!(tx.send(enc));
    }
    // The replica applies only the first batch, then stalls at the gap.
    assert!(replica.wait_replay(aether_core::Lsn(marks[0]), Duration::from_secs(5)));
    // The corrupt frame may still be in flight when replay catches up: the
    // link delivers in order, so wait on the drop counter itself (the
    // replica's "ack" that it saw and rejected the frame) instead of
    // sleeping a wall-clock deadline away.
    let mut backoff = aether_core::buffer::WaitBackoff::new();
    while replica.status().corrupt_frames == 0 {
        backoff.wait();
    }
    let st = replica.status();
    assert_eq!(st.corrupt_frames, 1, "corrupt frame detected and dropped");
    assert_eq!(st.received_lsn, aether_core::Lsn(marks[0]));
    while ack_rx.try_recv().is_some() {}

    // Promotion succeeds on the clean prefix: batch-1 values, no error.
    let (promoted, _) = replica.promote().unwrap();
    let mut txn = promoted.begin();
    for k in 0..8u64 {
        assert_eq!(counter_of(&promoted.read(&mut txn, 0, k).unwrap()), 1);
    }
    promoted.commit(txn).unwrap();
}
