//! Instrumentation: counters and phase timers.
//!
//! The paper's evaluation leans on time breakdowns ("log mgr. work",
//! "log mgr. contention", Figures 2 and 7). We reproduce those categories by
//! timing the three insert phases — acquire (contention), fill (work) and
//! release (ordering wait) — with cheap monotonic-clock reads guarded so the
//! microbenchmarks can disable them entirely.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Aggregate counters for a log buffer. All counters are monotonically
/// increasing; read a consistent-enough view via [`BufferStats::snapshot`].
#[derive(Debug, Default)]
pub struct BufferStats {
    timing_enabled: AtomicBool,
    inserts: CachePadded<AtomicU64>,
    bytes: CachePadded<AtomicU64>,
    /// Inserts that acquired the mutex without contention (fast path).
    direct_acquires: CachePadded<AtomicU64>,
    /// Inserts that joined a consolidation-array group as followers.
    consolidations: CachePadded<AtomicU64>,
    /// Group-leader acquisitions (one per consolidated group).
    group_acquires: CachePadded<AtomicU64>,
    /// Buffer releases delegated to a predecessor (CDME only).
    delegated_releases: CachePadded<AtomicU64>,
    /// Inserts that arrived as pre-encoded byte slices through the legacy
    /// `insert(&[u8])` wrapper. Each implies the caller materialized its
    /// payload in a temporary buffer first — the allocation + copy the
    /// reservation path exists to eliminate. Zero on a fully re-plumbed
    /// hot path.
    wrapper_inserts: CachePadded<AtomicU64>,
    /// Bytes copied *out* of the ring into scratch buffers (the pre-vectored
    /// flush drain). The vectored drain hands ring slices straight to the
    /// device, so this stays zero unless something regresses onto
    /// `read_released`.
    scratch_bytes: CachePadded<AtomicU64>,
    /// Nanoseconds spent waiting to acquire buffer space (contention).
    acquire_wait_ns: CachePadded<AtomicU64>,
    /// Nanoseconds spent copying into the buffer (work).
    fill_ns: CachePadded<AtomicU64>,
    /// Nanoseconds spent waiting for in-order release.
    release_wait_ns: CachePadded<AtomicU64>,
}

/// A point-in-time copy of [`BufferStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total records inserted.
    pub inserts: u64,
    /// Total bytes inserted (on-log footprint).
    pub bytes: u64,
    /// Fast-path (uncontended) acquisitions.
    pub direct_acquires: u64,
    /// Follower joins in consolidation groups.
    pub consolidations: u64,
    /// Leader acquisitions for consolidation groups.
    pub group_acquires: u64,
    /// Delegated buffer releases (CDME).
    pub delegated_releases: u64,
    /// Inserts through the legacy pre-encoded-slice wrapper (each implies
    /// an upstream payload materialization).
    pub wrapper_inserts: u64,
    /// Bytes copied out of the ring into scratch buffers on drain (zero
    /// with the vectored flush path).
    pub scratch_bytes: u64,
    /// ns waiting in acquire.
    pub acquire_wait_ns: u64,
    /// ns copying payloads.
    pub fill_ns: u64,
    /// ns waiting for in-order release.
    pub release_wait_ns: u64,
}

impl BufferStats {
    /// New stats block; timing disabled (counter-only) by default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable phase timing. Counters are always maintained.
    pub fn set_timing(&self, on: bool) {
        self.timing_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether phase timing is on.
    #[inline]
    pub fn timing(&self) -> bool {
        self.timing_enabled.load(Ordering::Relaxed)
    }

    /// Start a phase timer iff timing is enabled. The value is a
    /// runtime-monotonic timestamp in nanoseconds (virtual under simulation).
    #[inline]
    pub fn phase_start(&self) -> Option<u64> {
        if self.timing() {
            Some(crate::runtime::monotonic_ns())
        } else {
            None
        }
    }

    /// Record one insert of `bytes` on-log bytes.
    #[inline]
    pub fn record_insert(&self, bytes: u64) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count a fast-path acquisition.
    #[inline]
    pub fn record_direct(&self) {
        self.direct_acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a follower consolidation.
    #[inline]
    pub fn record_consolidation(&self) {
        self.consolidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a group-leader acquisition.
    #[inline]
    pub fn record_group_acquire(&self) {
        self.group_acquires.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a delegated release.
    #[inline]
    pub fn record_delegated(&self) {
        self.delegated_releases.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a legacy byte-slice wrapper insert.
    #[inline]
    pub fn record_wrapper(&self) {
        self.wrapper_inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `bytes` staged through a scratch buffer on drain.
    #[inline]
    pub fn record_scratch_copy(&self, bytes: u64) {
        self.scratch_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Close an acquire-phase timer.
    #[inline]
    pub fn phase_acquire(&self, t: Option<u64>) {
        if let Some(t) = t {
            let dt = crate::runtime::monotonic_ns().saturating_sub(t);
            self.acquire_wait_ns.fetch_add(dt, Ordering::Relaxed);
        }
    }

    /// Close a fill-phase timer.
    #[inline]
    pub fn phase_fill(&self, t: Option<u64>) {
        if let Some(t) = t {
            let dt = crate::runtime::monotonic_ns().saturating_sub(t);
            self.fill_ns.fetch_add(dt, Ordering::Relaxed);
        }
    }

    /// Close a release-phase timer.
    #[inline]
    pub fn phase_release(&self, t: Option<u64>) {
        if let Some(t) = t {
            let dt = crate::runtime::monotonic_ns().saturating_sub(t);
            self.release_wait_ns.fetch_add(dt, Ordering::Relaxed);
        }
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            direct_acquires: self.direct_acquires.load(Ordering::Relaxed),
            consolidations: self.consolidations.load(Ordering::Relaxed),
            group_acquires: self.group_acquires.load(Ordering::Relaxed),
            delegated_releases: self.delegated_releases.load(Ordering::Relaxed),
            wrapper_inserts: self.wrapper_inserts.load(Ordering::Relaxed),
            scratch_bytes: self.scratch_bytes.load(Ordering::Relaxed),
            acquire_wait_ns: self.acquire_wait_ns.load(Ordering::Relaxed),
            fill_ns: self.fill_ns.load(Ordering::Relaxed),
            release_wait_ns: self.release_wait_ns.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Difference of two snapshots (self - earlier), for interval reporting.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            inserts: self.inserts - earlier.inserts,
            bytes: self.bytes - earlier.bytes,
            direct_acquires: self.direct_acquires - earlier.direct_acquires,
            consolidations: self.consolidations - earlier.consolidations,
            group_acquires: self.group_acquires - earlier.group_acquires,
            delegated_releases: self.delegated_releases - earlier.delegated_releases,
            wrapper_inserts: self.wrapper_inserts - earlier.wrapper_inserts,
            scratch_bytes: self.scratch_bytes - earlier.scratch_bytes,
            acquire_wait_ns: self.acquire_wait_ns - earlier.acquire_wait_ns,
            fill_ns: self.fill_ns - earlier.fill_ns,
            release_wait_ns: self.release_wait_ns - earlier.release_wait_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = BufferStats::new();
        s.record_insert(120);
        s.record_insert(40);
        s.record_direct();
        s.record_consolidation();
        s.record_group_acquire();
        s.record_delegated();
        let snap = s.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.bytes, 160);
        assert_eq!(snap.direct_acquires, 1);
        assert_eq!(snap.consolidations, 1);
        assert_eq!(snap.group_acquires, 1);
        assert_eq!(snap.delegated_releases, 1);
    }

    #[test]
    fn timing_disabled_by_default() {
        let s = BufferStats::new();
        assert!(s.phase_start().is_none());
        s.set_timing(true);
        let t = s.phase_start();
        assert!(t.is_some());
        s.phase_acquire(t);
        assert!(s.snapshot().acquire_wait_ns > 0 || s.snapshot().acquire_wait_ns == 0);
    }

    #[test]
    fn timers_record_when_enabled() {
        let s = BufferStats::new();
        s.set_timing(true);
        let t = s.phase_start();
        crate::runtime::sleep(std::time::Duration::from_millis(2));
        s.phase_fill(t);
        assert!(s.snapshot().fill_ns >= 1_000_000);
    }

    #[test]
    fn delta_subtracts() {
        let s = BufferStats::new();
        s.record_insert(10);
        let a = s.snapshot();
        s.record_insert(30);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.inserts, 1);
        assert_eq!(d.bytes, 30);
    }
}
