//! # aether-core — a scalable approach to logging
//!
//! This crate is a from-scratch implementation of the **Aether** log manager
//! from Johnson et al., *"Aether: A Scalable Approach to Logging"*, PVLDB 3(1),
//! 2010. It provides:
//!
//! * A write-ahead **log buffer** with five interchangeable insertion
//!   algorithms studied by the paper (module [`buffer`]):
//!   - [`buffer::BaselineBuffer`] — one mutex across acquire/fill/release
//!     (paper Algorithm 1),
//!   - [`buffer::ConsolidationBuffer`] (**C**) — consolidation-array backoff
//!     (Algorithm 2),
//!   - [`buffer::DecoupledBuffer`] (**D**) — decoupled buffer fill
//!     (Algorithm 3),
//!   - [`buffer::HybridBuffer`] (**CD**) — both combined (§5.3),
//!   - [`buffer::DelegatedBuffer`] (**CDME**) — CD plus delegated buffer
//!     release over an abortable-MCS queue (Algorithm 4, §A.3).
//! * The **consolidation array** itself ([`carray`]), a generalization of
//!   elimination-based backoff where threads combine log-insert requests
//!   instead of cancelling them (§A.2, Figure 10 state machine).
//! * A **flush daemon** with group-commit policies and **flush pipelining**
//!   ([`flush`], [`commit`]) so transactions commit without triggering
//!   context switches (§4).
//! * Simulated and real **log devices** ([`device`]): ramdisk (0µs), flash
//!   (100µs), fast disk (1ms), slow disk (10ms) — the same latency models the
//!   paper injects with high-resolution timers — plus a real file device.
//! * A [`manager::LogManager`] facade tying everything together, and a
//!   [`reader`] used by ARIES-style recovery in the `aether-storage` crate.
//!
//! ## Quick start
//!
//! ```
//! use aether_core::{LogConfig, manager::LogManager, record::RecordKind};
//!
//! let log = LogManager::builder()
//!     .buffer(aether_core::BufferKind::Hybrid)
//!     .device(aether_core::DeviceKind::Ram)
//!     .build();
//! let lsn = log.insert(RecordKind::Update, 42, b"hello, aether");
//! log.flush_all();
//! assert!(log.durable_lsn() > lsn);
//! let _ = LogConfig::default();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod buffer;
pub mod carray;
pub mod commit;
pub mod config;
pub mod device;
pub mod error;
pub mod flush;
pub mod lsn;
pub mod manager;
pub mod mcs;
pub mod partition;
pub mod reader;
pub mod record;
pub mod ring;
pub mod runtime;
pub mod stats;
pub mod telemetry;

pub use buffer::{BufferKind, EncodePayload, LogBuffer, LogSlot, SlotWriter};
pub use commit::{CommitGate, CommitToken, DurabilityPolicy, ReplicaAck};
pub use config::LogConfig;
pub use device::DeviceKind;
pub use error::{AetherError, LogError, Result};
pub use lsn::Lsn;
pub use manager::{DurableWatch, LogManager, TruncationOutcome, TruncationStats, TruncationWatch};
pub use record::{RecordHeader, RecordKind};
pub use runtime::Runtime;
pub use telemetry::{Telemetry, TelemetryConfig, TelemetrySnapshot};
