//! Log sequence numbers.
//!
//! Aether (like ARIES) assigns every log record a unique, totally-ordered log
//! sequence number. Following §5 of the paper, the LSN doubles as the record's
//! byte address in the logical log stream, so *generating an LSN also reserves
//! buffer space*: the record that starts at `Lsn(n)` occupies bytes
//! `[n, n + len)` of the stream, and its position in the in-memory ring buffer
//! is `n mod capacity`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A log sequence number: a byte offset into the unbounded logical log stream.
///
/// `Lsn` is a strictly monotonic currency throughout the crate: buffer
/// reservations, release ordering, durability watermarks and recovery scans
/// all speak LSNs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The zero LSN: start of the log stream; used as the "null" predecessor
    /// pointer in per-transaction undo chains.
    pub const ZERO: Lsn = Lsn(0);

    /// Largest representable LSN, used as a sentinel for "flush everything".
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True iff this is [`Lsn::ZERO`] (the null undo-chain terminator).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The LSN `len` bytes past `self` — the end of a record of length `len`
    /// that starts here, i.e. the start LSN of the next record.
    #[inline]
    pub const fn advance(self, len: u64) -> Lsn {
        Lsn(self.0 + len)
    }

    /// Distance in bytes from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier > self`.
    #[inline]
    pub fn since(self, earlier: Lsn) -> u64 {
        debug_assert!(earlier.0 <= self.0, "LSN arithmetic went backwards");
        self.0 - earlier.0
    }

    /// Ring-buffer index of this LSN for a power-of-two capacity.
    #[inline]
    pub const fn ring_index(self, capacity_mask: u64) -> usize {
        (self.0 & capacity_mask) as usize
    }
}

impl Add<u64> for Lsn {
    type Output = Lsn;
    #[inline]
    fn add(self, rhs: u64) -> Lsn {
        Lsn(self.0 + rhs)
    }
}

impl AddAssign<u64> for Lsn {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Lsn> for Lsn {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Lsn) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lsn({})", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Lsn {
    fn from(v: u64) -> Self {
        Lsn(v)
    }
}

/// An atomic LSN watermark (e.g. `released`, `durable`).
///
/// Thin wrapper over `AtomicU64` so call sites document *which* memory
/// ordering contract they rely on. Watermarks only move forward.
#[derive(Debug, Default)]
pub struct AtomicLsn(std::sync::atomic::AtomicU64);

impl AtomicLsn {
    /// New watermark starting at `lsn`.
    pub const fn new(lsn: Lsn) -> Self {
        AtomicLsn(std::sync::atomic::AtomicU64::new(lsn.0))
    }

    /// Acquire-load: pairs with [`AtomicLsn::publish`] so that all byte writes
    /// performed before the publish are visible after this load.
    #[inline]
    pub fn load(&self) -> Lsn {
        Lsn(self.0.load(std::sync::atomic::Ordering::Acquire))
    }

    /// Relaxed load for statistics only.
    #[inline]
    pub fn load_relaxed(&self) -> Lsn {
        Lsn(self.0.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Release-store: publishes every prior write (ring-buffer fill, device
    /// write) to acquire-loaders.
    ///
    /// # Panics
    /// Debug-asserts monotonicity.
    #[inline]
    pub fn publish(&self, lsn: Lsn) {
        debug_assert!(
            self.load_relaxed() <= lsn,
            "watermark must be monotonically non-decreasing"
        );
        self.0.store(lsn.0, std::sync::atomic::Ordering::Release);
    }

    /// Advance to `max(current, lsn)` atomically; returns the new value.
    pub fn fetch_max(&self, lsn: Lsn) -> Lsn {
        let prev = self.0.fetch_max(lsn.0, std::sync::atomic::Ordering::AcqRel);
        Lsn(prev.max(lsn.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_since_roundtrip() {
        let a = Lsn(100);
        let b = a.advance(28);
        assert_eq!(b, Lsn(128));
        assert_eq!(b.since(a), 28);
        assert_eq!(b - a, 28);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Lsn(1) < Lsn(2));
        assert!(Lsn::ZERO < Lsn::MAX);
        assert_eq!(Lsn::default(), Lsn::ZERO);
    }

    #[test]
    fn ring_index_wraps_power_of_two() {
        let mask = 1024 - 1;
        assert_eq!(Lsn(0).ring_index(mask), 0);
        assert_eq!(Lsn(1023).ring_index(mask), 1023);
        assert_eq!(Lsn(1024).ring_index(mask), 0);
        assert_eq!(Lsn(1030).ring_index(mask), 6);
    }

    #[test]
    fn atomic_watermark_publish_load() {
        let w = AtomicLsn::new(Lsn(10));
        assert_eq!(w.load(), Lsn(10));
        w.publish(Lsn(20));
        assert_eq!(w.load(), Lsn(20));
        assert_eq!(w.fetch_max(Lsn(15)), Lsn(20));
        assert_eq!(w.fetch_max(Lsn(25)), Lsn(25));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn since_panics_backwards_in_debug() {
        let _ = Lsn(5).since(Lsn(6));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Lsn(7)), "7");
        assert_eq!(format!("{:?}", Lsn(7)), "Lsn(7)");
        assert_eq!(Lsn::from(9u64), Lsn(9));
        assert!(Lsn::ZERO.is_zero());
        assert!(!Lsn(3).is_zero());
        assert_eq!(Lsn(3).raw(), 3);
    }

    #[test]
    fn add_assign_works() {
        let mut l = Lsn(1);
        l += 9;
        assert_eq!(l, Lsn(10));
        assert_eq!(l + 5, Lsn(15));
    }
}
