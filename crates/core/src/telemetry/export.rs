//! Snapshot assembly and export: human-readable text, JSON-lines, and the
//! periodic exporter daemon.
//!
//! A [`TelemetrySnapshot`] starts from a registry's own metrics
//! ([`super::Telemetry::snapshot`]) and is then extended by higher layers
//! (`push_counter`/`push_gauge`) with values that live outside the registry —
//! `BufferStats` counters, truncation stats, flush totals — so consumers read
//! one document instead of scraping per-bin output.
//!
//! Both renderers are deterministic: metrics appear in registration order,
//! trace events in `(lsn, stage)` order, and every timestamp is
//! runtime-monotonic — under `Runtime::sim(seed)` two runs of the same seed
//! render byte-identical output. Text lines all start with `telemetry>` so
//! logs stay grep-stable; JSON-lines go to the file named by
//! `AETHER_TELEMETRY_OUT`.

use super::trace::{assemble_spans, TraceEvent};
use super::{HistSnapshot, Unit};
use crate::runtime::{JoinHandle, RtCondvar, Runtime};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// A named scalar metric inside a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricValue<T> {
    /// Metric name (`layer.metric` convention).
    pub name: &'static str,
    /// Value unit.
    pub unit: Unit,
    /// The value at snapshot time.
    pub value: T,
}

/// Rendered view of one histogram: summary stats plus fixed quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistView {
    /// Metric name.
    pub name: &'static str,
    /// Unit of recorded values.
    pub unit: Unit,
    /// Observation count.
    pub count: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// A point-in-time, renderable view of one log instance's telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Which instance this describes (e.g. `primary`, `replica-1`, a bench
    /// config string).
    pub scope: String,
    /// Runtime-monotonic capture time.
    pub at_ns: u64,
    /// Counters, registry order first, then pushed extras.
    pub counters: Vec<MetricValue<u64>>,
    /// Gauges, registry order first, then pushed extras.
    pub gauges: Vec<MetricValue<i64>>,
    /// Histograms, registry order.
    pub hists: Vec<HistView>,
    /// Live trace events, sorted by `(lsn, stage, start)`.
    pub events: Vec<TraceEvent>,
}

impl TelemetrySnapshot {
    /// Empty snapshot for `scope` captured at `at_ns`.
    pub fn new(scope: &str, at_ns: u64) -> Self {
        TelemetrySnapshot {
            scope: scope.to_string(),
            at_ns,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Append a counter (used by layers whose totals live outside the
    /// registry, e.g. `BufferStats`).
    pub fn push_counter(&mut self, name: &'static str, unit: Unit, value: u64) {
        self.counters.push(MetricValue { name, unit, value });
    }

    /// Append a gauge.
    pub fn push_gauge(&mut self, name: &'static str, unit: Unit, value: i64) {
        self.gauges.push(MetricValue { name, unit, value });
    }

    /// Append a histogram view computed from a merged snapshot.
    pub fn push_hist(&mut self, name: &'static str, unit: Unit, h: HistSnapshot) {
        self.hists.push(HistView {
            name,
            unit,
            count: h.count,
            min: h.min,
            max: h.max,
            mean: h.mean(),
            p50: h.p50(),
            p90: h.value_at_quantile(0.90),
            p99: h.p99(),
            p999: h.p999(),
        });
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Look up a histogram view by name.
    pub fn hist(&self, name: &str) -> Option<&HistView> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Human-readable rendering. Every line starts with `telemetry>` so the
    /// output stays grep-stable when interleaved with other stderr traffic.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry> snapshot scope={} at_ns={}",
            self.scope, self.at_ns
        );
        for m in &self.counters {
            let _ = writeln!(
                out,
                "telemetry> counter {}={} unit={}",
                m.name,
                m.value,
                m.unit.as_str()
            );
        }
        for m in &self.gauges {
            let _ = writeln!(
                out,
                "telemetry> gauge {}={} unit={}",
                m.name,
                m.value,
                m.unit.as_str()
            );
        }
        for h in &self.hists {
            let _ = writeln!(
                out,
                "telemetry> hist {} count={} min={} p50={} p90={} p99={} p999={} max={} mean={} unit={}",
                h.name, h.count, h.min, h.p50, h.p90, h.p99, h.p999, h.max, h.mean,
                h.unit.as_str()
            );
        }
        for span in assemble_spans(&self.events) {
            let mut line = format!("telemetry> span lsn={}", span.lsn);
            for e in span.stages.iter().chain(span.batch.iter()) {
                if e.start_ns == e.end_ns {
                    let _ = write!(line, " {}@{}", e.stage.label(), e.start_ns);
                } else {
                    let _ = write!(line, " {}={}..{}", e.stage.label(), e.start_ns, e.end_ns);
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// JSON-lines rendering: one self-describing object per line, each
    /// tagged with `"telemetry"` (record kind) and the scope.
    pub fn render_jsonl(&self) -> String {
        let scope = json_escape(&self.scope);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"telemetry\":\"snapshot\",\"scope\":\"{}\",\"at_ns\":{}}}",
            scope, self.at_ns
        );
        for m in &self.counters {
            let _ = writeln!(
                out,
                "{{\"telemetry\":\"counter\",\"scope\":\"{}\",\"name\":\"{}\",\"unit\":\"{}\",\"value\":{}}}",
                scope, m.name, m.unit.as_str(), m.value
            );
        }
        for m in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"telemetry\":\"gauge\",\"scope\":\"{}\",\"name\":\"{}\",\"unit\":\"{}\",\"value\":{}}}",
                scope, m.name, m.unit.as_str(), m.value
            );
        }
        for h in &self.hists {
            let _ = writeln!(
                out,
                "{{\"telemetry\":\"hist\",\"scope\":\"{}\",\"name\":\"{}\",\"unit\":\"{}\",\"count\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{},\"mean\":{}}}",
                scope, h.name, h.unit.as_str(), h.count, h.min, h.p50, h.p90, h.p99, h.p999,
                h.max, h.mean
            );
        }
        for e in &self.events {
            let _ = writeln!(
                out,
                "{{\"telemetry\":\"span\",\"scope\":\"{}\",\"lsn\":{},\"stage\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
                scope, e.lsn, e.stage.label(), e.start_ns, e.end_ns
            );
        }
        out
    }

    /// Append the JSON-lines rendering to `path` (created if absent).
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(self.render_jsonl().as_bytes())
    }

    /// Append to the file named by `AETHER_TELEMETRY_OUT`, if set. Returns
    /// whether anything was written.
    pub fn emit_env(&self) -> std::io::Result<bool> {
        match std::env::var("AETHER_TELEMETRY_OUT") {
            Ok(path) if !path.is_empty() => {
                self.append_to(Path::new(&path))?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct ExporterShared {
    stop: Mutex<bool>,
    cv: RtCondvar,
}

/// Handle to the periodic exporter daemon. Stopping (or dropping) it emits
/// one final snapshot before the thread exits.
pub struct Exporter {
    shared: Arc<ExporterShared>,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Exporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Exporter")
    }
}

/// Spawn the exporter daemon on `rt` (named `aether-telemetryd`). Every
/// `every`, and once more on stop, it calls `make` and appends the JSON-lines
/// rendering to `out` — or, with no output file, writes the text rendering to
/// stderr.
pub fn spawn_exporter(
    rt: &Runtime,
    every: Duration,
    out: Option<PathBuf>,
    mut make: impl FnMut() -> TelemetrySnapshot + Send + 'static,
) -> Exporter {
    let shared = Arc::new(ExporterShared {
        stop: Mutex::new(false),
        cv: RtCondvar::new(),
    });
    let sh = Arc::clone(&shared);
    let join = rt.spawn("aether-telemetryd", move || loop {
        let guard = sh.stop.lock();
        if *guard {
            // Final emit below, then exit.
        } else {
            let (guard, _) = sh.cv.wait_for(&sh.stop, guard, every);
            drop(guard);
        }
        let snap = make();
        match &out {
            Some(path) => {
                let _ = snap.append_to(path);
            }
            None => eprint!("{}", snap.render_text()),
        }
        if *sh.stop.lock() {
            return;
        }
    });
    Exporter {
        shared,
        join: Some(join),
    }
}

impl Exporter {
    /// Stop the daemon; it emits one final snapshot first.
    pub fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            *self.shared.stop.lock() = true;
            self.shared.cv.notify_all();
            let _ = join.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Stage, Telemetry, TelemetryConfig, Unit};
    use crate::lsn::Lsn;

    fn sample() -> super::TelemetrySnapshot {
        let t = Telemetry::new(&TelemetryConfig {
            enabled: true,
            sample_every: 1,
            ..TelemetryConfig::default()
        });
        let c = t.counter("x.events", Unit::Count);
        t.add(c, 3);
        t.record(t.ids().log_insert_ns, 1500);
        t.span(Stage::Fill, Lsn(64), 10, 20);
        t.event(Stage::Durable, Lsn(128), 30);
        let mut snap = t.snapshot("unit \"test\"");
        snap.push_counter("extra.pushed", Unit::Bytes, 42);
        snap
    }

    #[test]
    fn text_rendering_is_line_prefixed_and_complete() {
        let snap = sample();
        let text = snap.render_text();
        assert!(text.lines().all(|l| l.starts_with("telemetry> ")));
        assert!(text.contains("counter x.events=3 unit=count"));
        assert!(text.contains("counter extra.pushed=42 unit=bytes"));
        assert!(text.contains("hist log.insert_ns count=1"));
        assert!(text.contains("span lsn=64 fill=10..20 durable@30"));
    }

    #[test]
    fn jsonl_rendering_parses_and_escapes() {
        let snap = sample();
        let jsonl = snap.render_jsonl();
        for line in jsonl.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
            assert!(line.contains("\"telemetry\":\""));
            // The scope contains a quote; it must be escaped.
            assert!(line.contains("unit \\\"test\\\""));
        }
        assert!(jsonl.contains("\"name\":\"x.events\",\"unit\":\"count\",\"value\":3"));
        assert!(jsonl.contains("\"stage\":\"fill\""));
    }

    #[test]
    fn snapshot_lookups() {
        let snap = sample();
        assert_eq!(snap.counter("x.events"), Some(3));
        assert_eq!(snap.counter("extra.pushed"), Some(42));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.hist("log.insert_ns").unwrap().count, 1);
    }

    #[test]
    fn append_to_writes_jsonl() {
        let snap = sample();
        let path = std::env::temp_dir().join(format!(
            "aether-telemetry-test-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        snap.append_to(&path).unwrap();
        snap.append_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let snapshots = body
            .lines()
            .filter(|l| l.contains("\"telemetry\":\"snapshot\""))
            .count();
        assert_eq!(snapshots, 2, "append, not truncate");
        let _ = std::fs::remove_file(&path);
    }
}
