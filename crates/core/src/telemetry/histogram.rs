//! Log-bucketed, sharded latency histogram (HDR-style).
//!
//! Values are bucketed on a log scale: the first [`SUB_COUNT`] buckets are
//! exact (one value each), and every power-of-two range above that is split
//! into [`SUB_COUNT`] equal-width sub-buckets. With 5 sub-bucket bits the
//! relative quantization error is bounded by `1/32` (~3.1%) for any value up
//! to `2^MAX_BITS` (≈18 minutes in nanoseconds); larger values clamp into the
//! top bucket while the exact maximum is still tracked separately.
//!
//! The record path is wait-free and allocation-free: each recording thread
//! hashes to one of a fixed set of cache-padded shards (assigned round-robin
//! at first use) and performs four relaxed atomic RMWs. Shards are merged
//! only at snapshot time; because the merge is a commutative sum, the merged
//! result is independent of shard assignment — which is what makes snapshots
//! byte-deterministic under `Runtime::sim` even though thread→shard mapping
//! varies run to run in real time.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of sub-bucket bits: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two range (`2^SUB_BITS`).
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Values at or above `2^MAX_BITS` clamp into the final bucket.
pub const MAX_BITS: u32 = 40;
const SCALES: usize = (MAX_BITS - SUB_BITS) as usize;
/// Total bucket count.
pub const BUCKET_COUNT: usize = SUB_COUNT + SCALES * SUB_COUNT;

/// Map a value to its bucket index. Total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb >= MAX_BITS {
        return BUCKET_COUNT - 1;
    }
    let scale = (msb - SUB_BITS) as usize;
    let sub = (v >> (msb - SUB_BITS)) as usize - SUB_COUNT;
    SUB_COUNT + scale * SUB_COUNT + sub
}

/// Smallest value that maps into bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < BUCKET_COUNT);
    if i < SUB_COUNT {
        return i as u64;
    }
    let j = i - SUB_COUNT;
    let scale = j / SUB_COUNT;
    let sub = j % SUB_COUNT;
    ((SUB_COUNT + sub) as u64) << scale
}

/// Largest value that maps into bucket `i` (`u64::MAX` for the top bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

struct Shard {
    count: CachePadded<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Self {
        let buckets = (0..BUCKET_COUNT)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Shard {
            count: CachePadded::new(AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets,
        }
    }
}

/// A sharded, lock-free, log-bucketed histogram.
pub struct Histogram {
    shards: Box<[Shard]>,
    mask: usize,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.merged();
        write!(f, "Histogram(count={}, max={})", s.count, s.max)
    }
}

impl Histogram {
    /// Allocate a histogram with `shards` cache-padded shards (rounded up to
    /// a power of two, at least 1). All memory is allocated here; recording
    /// never allocates.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| Shard::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Histogram {
            mask: n - 1,
            shards,
        }
    }

    /// Record one observation. Wait-free: four relaxed RMWs on this thread's
    /// shard, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[super::thread_shard() & self.mask];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.min.fetch_min(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merge all shards into a point-in-time snapshot. The merge is a
    /// commutative sum, so the result does not depend on which shard each
    /// thread recorded into.
    pub fn merged(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; BUCKET_COUNT];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            count += shard.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            min = min.min(shard.min.load(Ordering::Relaxed));
            max = max.max(shard.max.load(Ordering::Relaxed));
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        if count == 0 {
            min = 0;
        }
        HistSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }
}

/// Merged, point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations (wrapping).
    pub sum: u64,
    /// Exact minimum observation (0 when empty).
    pub min: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Value at quantile `q` in `[0, 1]`. Returns the upper bound of the
    /// bucket containing the rank-`ceil(q*count)` observation, clamped to the
    /// exact observed maximum, so the error is bounded by the bucket width
    /// (≤ ~3.1% relative). Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_sub_count() {
        for v in 0..SUB_COUNT as u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_upper(i), v);
        }
    }

    #[test]
    fn bucket_bounds_are_tight_and_monotone() {
        // Every bucket's bounds must round-trip through bucket_index, and
        // consecutive buckets must tile the value space with no gaps.
        for i in 0..BUCKET_COUNT {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            let hi = bucket_upper(i);
            if i + 1 < BUCKET_COUNT {
                assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
                assert_eq!(bucket_lower(i + 1), hi + 1, "gap after bucket {i}");
            }
        }
    }

    #[test]
    fn boundary_values_around_powers_of_two() {
        for bits in SUB_BITS..MAX_BITS {
            let p = 1u64 << bits;
            assert_eq!(bucket_index(p), bucket_index(p), "self-consistency");
            assert!(bucket_index(p - 1) < bucket_index(p));
            assert_eq!(
                bucket_lower(bucket_index(p)),
                p,
                "2^{bits} starts its bucket"
            );
        }
        // Values at and beyond the clamp land in the top bucket.
        assert_eq!(bucket_index(1 << MAX_BITS), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn relative_error_bounded() {
        let mut v = SUB_COUNT as u64;
        while v < (1 << MAX_BITS) {
            let i = bucket_index(v);
            let width = bucket_upper(i) - bucket_lower(i);
            assert!(
                (width as f64) / (bucket_lower(i) as f64) <= 1.0 / SUB_COUNT as f64 + 1e-9,
                "bucket {i} width {width} too wide for lower {}",
                bucket_lower(i)
            );
            v = v.wrapping_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new(4);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.merged();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // 3.2% tolerance: one sub-bucket of slack.
        let p50 = s.p50();
        assert!((468..=532).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((980..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.value_at_quantile(1.0), 1000);
        assert_eq!(s.value_at_quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new(1);
        let s = h.merged();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn snapshot_is_idempotent() {
        let h = Histogram::new(8);
        for v in [0, 1, 31, 32, 33, 1_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.merged(), h.merged());
    }
}
