//! LSN-correlated pipeline tracing.
//!
//! Every record's journey through the commit pipeline passes through a fixed
//! set of [`Stage`]s. When tracing is enabled, instrumented call sites record
//! `(lsn, stage, start_ns, end_ns)` events into a sharded fixed-capacity ring
//! (overwrite-oldest). Per-record stages are sampled by LSN mask — the same
//! record is either traced at *every* per-record stage or at none, across
//! threads, with no RNG and no coordination — while batch-scoped stages
//! (device writes, durability advances, replica acks) are cheap enough to
//! record unconditionally and are joined to sampled records at assembly time
//! by LSN range.
//!
//! All timestamps come from `runtime::monotonic_ns`, so under
//! `Runtime::sim(seed)` a trace is byte-reproducible for a given seed.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stage in the life of a log record, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Waiting to acquire log space (per-record, sampled).
    Reserve = 1,
    /// Copying the record into the ring (per-record, sampled).
    Fill = 2,
    /// Waiting for / performing in-order buffer release (per-record, sampled).
    Release = 3,
    /// Flush daemon picked up a drain request covering this LSN (batch).
    FlushEnqueue = 4,
    /// Vectored device write + sync for the batch ending at this LSN (batch).
    DeviceWrite = 5,
    /// Durable watermark advanced to this LSN (batch, instant).
    Durable = 6,
    /// A replica acknowledged up to this LSN (batch, instant).
    ReplicaAck = 7,
    /// Commit completion delivered for this LSN (per-record, sampled).
    CommitComplete = 8,
}

impl Stage {
    /// Stable lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Reserve => "reserve",
            Stage::Fill => "fill",
            Stage::Release => "release",
            Stage::FlushEnqueue => "flush_enqueue",
            Stage::DeviceWrite => "device_write",
            Stage::Durable => "durable",
            Stage::ReplicaAck => "replica_ack",
            Stage::CommitComplete => "commit_complete",
        }
    }

    /// Whether events of this stage describe a flush/replication batch (keyed
    /// by the batch's end LSN) rather than a single record.
    pub fn batch_scoped(self) -> bool {
        matches!(
            self,
            Stage::FlushEnqueue | Stage::DeviceWrite | Stage::Durable | Stage::ReplicaAck
        )
    }

    fn from_u8(v: u8) -> Option<Stage> {
        Some(match v {
            1 => Stage::Reserve,
            2 => Stage::Fill,
            3 => Stage::Release,
            4 => Stage::FlushEnqueue,
            5 => Stage::DeviceWrite,
            6 => Stage::Durable,
            7 => Stage::ReplicaAck,
            8 => Stage::CommitComplete,
            _ => return None,
        })
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Record LSN (per-record stages) or batch end LSN (batch stages).
    pub lsn: u64,
    /// Pipeline stage.
    pub stage: Stage,
    /// Stage start, runtime-monotonic nanoseconds.
    pub start_ns: u64,
    /// Stage end; equals `start_ns` for instantaneous events.
    pub end_ns: u64,
}

struct EventSlot {
    lsn: AtomicU64,
    stage: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

struct TraceShard {
    head: CachePadded<AtomicU64>,
    slots: Box<[EventSlot]>,
}

/// Sharded fixed-capacity event ring with overwrite-oldest semantics.
///
/// Recording is wait-free (one `fetch_add` to claim a slot, four relaxed
/// stores) and never allocates. A snapshot taken concurrently with recording
/// may observe a torn slot; torn slots are filtered by stage validity. Under
/// the sim runtime there is no true concurrency, so snapshots are exact.
pub struct TraceRing {
    shards: Box<[TraceShard]>,
    shard_mask: usize,
    slot_mask: u64,
}

impl TraceRing {
    /// Allocate `shards` rings of `capacity` slots each (both rounded up to
    /// powers of two).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let cap = capacity.max(16).next_power_of_two();
        let shards = (0..n)
            .map(|_| TraceShard {
                head: CachePadded::new(AtomicU64::new(0)),
                slots: (0..cap)
                    .map(|_| EventSlot {
                        lsn: AtomicU64::new(0),
                        stage: AtomicU64::new(0),
                        start_ns: AtomicU64::new(0),
                        end_ns: AtomicU64::new(0),
                    })
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TraceRing {
            shards,
            shard_mask: n - 1,
            slot_mask: (cap - 1) as u64,
        }
    }

    /// Record one event into this thread's shard.
    #[inline]
    pub fn record(&self, stage: Stage, lsn: u64, start_ns: u64, end_ns: u64) {
        let shard = &self.shards[super::thread_shard() & self.shard_mask];
        let idx = (shard.head.fetch_add(1, Ordering::Relaxed) & self.slot_mask) as usize;
        let slot = &shard.slots[idx];
        slot.stage.store(0, Ordering::Relaxed);
        slot.lsn.store(lsn, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.end_ns.store(end_ns, Ordering::Relaxed);
        slot.stage.store(stage as u64, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Collect all live events, sorted by `(lsn, stage, start_ns)` so the
    /// result is independent of shard assignment.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let live = shard.head.load(Ordering::Relaxed).min(self.slot_mask + 1);
            for slot in shard.slots.iter().take(live as usize) {
                let Some(stage) = Stage::from_u8(slot.stage.load(Ordering::Acquire) as u8) else {
                    continue;
                };
                out.push(TraceEvent {
                    lsn: slot.lsn.load(Ordering::Relaxed),
                    stage,
                    start_ns: slot.start_ns.load(Ordering::Relaxed),
                    end_ns: slot.end_ns.load(Ordering::Relaxed),
                });
            }
        }
        out.sort_unstable();
        out
    }
}

/// All events for one sampled record, plus the batch-scoped events that
/// carried it: a causal span tree for a single commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSpan {
    /// The record's LSN.
    pub lsn: u64,
    /// Per-record stage events, in pipeline order.
    pub stages: Vec<TraceEvent>,
    /// Batch events covering this record: for each batch stage, the earliest
    /// event whose end LSN is at or past this record's LSN.
    pub batch: Vec<TraceEvent>,
}

/// Group a sorted event list (from [`TraceRing::snapshot`]) into per-commit
/// span trees. Batch-scoped events are matched to each record by LSN range:
/// a batch event with end LSN `B` covers records with `lsn <= B`, and the
/// earliest such batch per stage is the one that carried the record.
pub fn assemble_spans(events: &[TraceEvent]) -> Vec<CommitSpan> {
    let batch: Vec<&TraceEvent> = events.iter().filter(|e| e.stage.batch_scoped()).collect();
    let mut spans: Vec<CommitSpan> = Vec::new();
    for e in events.iter().filter(|e| !e.stage.batch_scoped()) {
        match spans.last_mut() {
            Some(s) if s.lsn == e.lsn => s.stages.push(*e),
            _ => spans.push(CommitSpan {
                lsn: e.lsn,
                stages: vec![*e],
                batch: Vec::new(),
            }),
        }
    }
    for span in &mut spans {
        for stage in [
            Stage::FlushEnqueue,
            Stage::DeviceWrite,
            Stage::Durable,
            Stage::ReplicaAck,
        ] {
            if let Some(e) = batch
                .iter()
                .filter(|e| e.stage == stage && e.lsn >= span.lsn)
                .min_by_key(|e| (e.lsn, e.start_ns))
            {
                span.batch.push(**e);
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_and_sorts() {
        let r = TraceRing::new(2, 16);
        r.record(Stage::Fill, 200, 5, 9);
        r.record(Stage::Reserve, 200, 1, 5);
        r.record(Stage::DeviceWrite, 300, 20, 40);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].stage, Stage::Reserve);
        assert_eq!(snap[1].stage, Stage::Fill);
        assert_eq!(snap[2].lsn, 300);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = TraceRing::new(1, 16);
        for i in 0..40u64 {
            r.record(Stage::Fill, i, i, i + 1);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 16, "capacity bounds live events");
        assert_eq!(r.recorded(), 40);
        // The survivors are the most recent 16.
        assert!(snap.iter().all(|e| e.lsn >= 24));
    }

    #[test]
    fn spans_join_batches_by_lsn_range() {
        let r = TraceRing::new(1, 64);
        // Two records, one flush batch ending at lsn 250 covering both.
        for lsn in [100u64, 200] {
            r.record(Stage::Reserve, lsn, lsn, lsn + 1);
            r.record(Stage::Fill, lsn, lsn + 1, lsn + 4);
            r.record(Stage::Release, lsn, lsn + 4, lsn + 5);
            r.record(Stage::CommitComplete, lsn, lsn + 50, lsn + 50);
        }
        r.record(Stage::DeviceWrite, 250, 300, 340);
        r.record(Stage::Durable, 250, 340, 340);
        let spans = assemble_spans(&r.snapshot());
        assert_eq!(spans.len(), 2);
        for span in &spans {
            assert_eq!(span.stages.len(), 4);
            assert_eq!(span.batch.len(), 2, "device write + durable joined");
            assert!(span.batch.iter().all(|e| e.lsn == 250));
        }
    }

    #[test]
    fn earliest_covering_batch_wins() {
        let r = TraceRing::new(1, 64);
        r.record(Stage::Fill, 100, 0, 1);
        r.record(Stage::Durable, 150, 10, 10);
        r.record(Stage::Durable, 400, 20, 20);
        let spans = assemble_spans(&r.snapshot());
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].batch.len(), 1);
        assert_eq!(spans[0].batch[0].lsn, 150, "first batch at/past the record");
    }
}
