//! End-to-end telemetry: a lock-free metrics registry, log-bucketed latency
//! histograms, and LSN-correlated pipeline tracing.
//!
//! Design (see DESIGN.md § Telemetry):
//!
//! * **One registry per log instance.** [`Telemetry`] is owned by the
//!   buffer core and shared (via `Arc`) with the flush daemon, commit gate,
//!   storage layer, and replication shippers, so every metric about one log
//!   lands in one snapshot.
//! * **Wait-free record path, zero allocations after registration.**
//!   Counters and gauges are preallocated cache-padded atomics; histograms
//!   and the trace ring allocate their shards at registration/construction
//!   time. Recording is index-into-array + relaxed RMW. Registration (which
//!   may allocate) takes a mutex and is idempotent by name.
//! * **Single relaxed load when disabled.** Every record method begins with
//!   `if !self.on() { return; }`; with telemetry off, instrumented hot paths
//!   cost one relaxed bool load, the same discipline as
//!   [`crate::stats::BufferStats::timing`].
//! * **Deterministic under simulation.** All timestamps come from
//!   [`crate::runtime::monotonic_ns`], trace sampling is a pure function of
//!   the LSN, and histogram shard merges are commutative sums — so two runs
//!   of `Runtime::sim(seed)` with the same seed render byte-identical
//!   snapshots.

mod export;
pub mod histogram;
pub mod trace;

pub use export::{spawn_exporter, Exporter, HistView, MetricValue, TelemetrySnapshot};
pub use histogram::{HistSnapshot, Histogram};
pub use trace::{assemble_spans, CommitSpan, Stage, TraceEvent, TraceRing};

use crate::lsn::Lsn;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Maximum registered counters per registry.
pub const MAX_COUNTERS: usize = 96;
/// Maximum registered gauges per registry.
pub const MAX_GAUGES: usize = 48;
/// Maximum registered histograms per registry.
pub const MAX_HISTS: usize = 32;

// Round-robin shard assignment for histograms and trace rings. A thread gets
// one index for its lifetime; shard arrays mask it down to their own width.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    // Reserve-entry timestamp, parked here between a buffer variant's
    // reserve entry (LSN not yet known) and `begin_fill` (LSN known).
    static RESERVE_MARK: Cell<u64> = const { Cell::new(0) };
}

#[inline]
pub(crate) fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
            s.set(v);
            v
        }
    })
}

/// Stash the current runtime-monotonic time as "reserve started" for this
/// thread. Called at the top of each buffer variant's reserve path; consumed
/// by `begin_fill` once the LSN is known.
#[inline]
pub(crate) fn mark_reserve_start() {
    let now = crate::runtime::monotonic_ns();
    RESERVE_MARK.with(|m| m.set(now));
}

/// Take (and clear) the stashed reserve-entry timestamp; 0 if none.
#[inline]
pub(crate) fn take_reserve_mark() -> u64 {
    RESERVE_MARK.with(|m| m.replace(0))
}

/// Unit of a metric's value, carried into both renderers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless event count.
    Count,
    /// Bytes.
    Bytes,
    /// Nanoseconds (runtime-monotonic; virtual under sim).
    Nanos,
    /// Log sequence numbers (byte offsets into the log stream).
    Lsns,
    /// Log records / commits.
    Records,
}

impl Unit {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Nanos => "ns",
            Unit::Lsns => "lsn",
            Unit::Records => "records",
        }
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u16);
/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u16);
/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(u16);

/// Telemetry configuration, part of [`crate::LogConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. Off = every record call is a single relaxed load.
    pub enabled: bool,
    /// Trace roughly one in `sample_every` records (power of two; 0 disables
    /// tracing while keeping metrics). The sampling decision is a pure
    /// function of the LSN, so all stages of one record agree across threads.
    pub sample_every: u64,
    /// Histogram shards (power of two). More shards = less cross-thread
    /// contention, more memory per histogram.
    pub hist_shards: usize,
    /// Trace-ring shards (power of two).
    pub trace_shards: usize,
    /// Trace-ring capacity per shard (power of two); oldest events are
    /// overwritten.
    pub trace_capacity: usize,
    /// Spawn a daemon that emits a snapshot this often. `None` = only emit
    /// on shutdown (when `AETHER_TELEMETRY_OUT` is set).
    pub export_every: Option<Duration>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_every: 64,
            hist_shards: 8,
            trace_shards: 4,
            trace_capacity: 1024,
            export_every: None,
        }
    }
}

impl TelemetryConfig {
    /// Defaults overridden from the environment: `AETHER_TELEMETRY` (1/true
    /// enables), `AETHER_TELEMETRY_SAMPLE` (records per trace sample, power
    /// of two, 0 = no tracing), `AETHER_TELEMETRY_MS` (periodic export
    /// interval in milliseconds).
    pub fn from_env() -> Self {
        let mut cfg = TelemetryConfig::default();
        if let Ok(v) = std::env::var("AETHER_TELEMETRY") {
            cfg.enabled = matches!(v.as_str(), "1" | "true" | "on");
        }
        if let Some(v) = std::env::var("AETHER_TELEMETRY_SAMPLE")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.sample_every = if v == 0 { 0 } else { v.next_power_of_two() };
        }
        if let Some(ms) = std::env::var("AETHER_TELEMETRY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            cfg.export_every = (ms > 0).then(|| Duration::from_millis(ms));
        }
        cfg
    }

    /// Validate invariants; returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.sample_every != 0 && !self.sample_every.is_power_of_two() {
            return Err(format!(
                "telemetry.sample_every must be 0 or a power of two (got {})",
                self.sample_every
            ));
        }
        if self.hist_shards == 0 || !self.hist_shards.is_power_of_two() {
            return Err(format!(
                "telemetry.hist_shards must be a power of two >= 1 (got {})",
                self.hist_shards
            ));
        }
        if self.trace_shards == 0 || !self.trace_shards.is_power_of_two() {
            return Err(format!(
                "telemetry.trace_shards must be a power of two >= 1 (got {})",
                self.trace_shards
            ));
        }
        if self.trace_capacity < 16 || !self.trace_capacity.is_power_of_two() {
            return Err(format!(
                "telemetry.trace_capacity must be a power of two >= 16 (got {})",
                self.trace_capacity
            ));
        }
        Ok(())
    }
}

/// Ids of the metrics the core registers for itself at construction, so hot
/// paths skip the by-name lookup entirely.
#[derive(Debug, Clone, Copy)]
pub struct CoreIds {
    /// `log.insert_ns` — fill + release time per record insert.
    pub log_insert_ns: HistId,
    /// `flush.write_bytes` — bytes per vectored device write.
    pub flush_write_bytes: HistId,
    /// `flush.drain_ns` — write + sync latency per flush batch.
    pub flush_drain_ns: HistId,
    /// `commit.group_size` — commits completed per flush batch.
    pub commit_group_size: HistId,
    /// `commit.wait_ns` — time a committer waits for its durability policy.
    pub commit_wait_ns: HistId,
    /// `flush.queue_depth` — commits pending at flush trigger.
    pub flush_queue_depth: GaugeId,
    /// `flush.pending_bytes` — unflushed bytes at flush trigger.
    pub flush_pending_bytes: GaugeId,
}

struct MetaEntry {
    name: &'static str,
    unit: Unit,
}

#[derive(Default)]
struct Meta {
    counters: Vec<MetaEntry>,
    gauges: Vec<MetaEntry>,
    hists: Vec<MetaEntry>,
}

/// The per-log metrics registry. See the module docs for the design.
pub struct Telemetry {
    enabled: AtomicBool,
    sample_every: u64,
    hist_shards: usize,
    counters: Box<[CachePadded<AtomicU64>]>,
    gauges: Box<[CachePadded<AtomicI64>]>,
    hists: Box<[std::sync::OnceLock<Histogram>]>,
    trace: TraceRing,
    meta: Mutex<Meta>,
    ids: CoreIds,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Telemetry(enabled={})", self.on())
    }
}

impl Telemetry {
    /// Build a registry per `cfg` and pre-register the core metric set.
    /// The registry starts enabled iff `cfg.enabled`.
    pub fn new(cfg: &TelemetryConfig) -> Self {
        let counters = (0..MAX_COUNTERS)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let gauges = (0..MAX_GAUGES)
            .map(|_| CachePadded::new(AtomicI64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let hists = (0..MAX_HISTS)
            .map(|_| std::sync::OnceLock::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let mut t = Telemetry {
            enabled: AtomicBool::new(cfg.enabled),
            sample_every: cfg.sample_every,
            hist_shards: cfg.hist_shards,
            counters,
            gauges,
            hists,
            trace: TraceRing::new(cfg.trace_shards, cfg.trace_capacity),
            meta: Mutex::new(Meta::default()),
            ids: CoreIds {
                log_insert_ns: HistId(0),
                flush_write_bytes: HistId(0),
                flush_drain_ns: HistId(0),
                commit_group_size: HistId(0),
                commit_wait_ns: HistId(0),
                flush_queue_depth: GaugeId(0),
                flush_pending_bytes: GaugeId(0),
            },
        };
        t.ids = CoreIds {
            log_insert_ns: t.histogram("log.insert_ns", Unit::Nanos),
            flush_write_bytes: t.histogram("flush.write_bytes", Unit::Bytes),
            flush_drain_ns: t.histogram("flush.drain_ns", Unit::Nanos),
            commit_group_size: t.histogram("commit.group_size", Unit::Records),
            commit_wait_ns: t.histogram("commit.wait_ns", Unit::Nanos),
            flush_queue_depth: t.gauge("flush.queue_depth", Unit::Records),
            flush_pending_bytes: t.gauge("flush.pending_bytes", Unit::Bytes),
        };
        t
    }

    /// Ids of the pre-registered core metrics.
    #[inline]
    pub fn ids(&self) -> &CoreIds {
        &self.ids
    }

    /// Whether recording is enabled — one relaxed load, the entire cost of
    /// every instrumented call site when telemetry is off.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Current runtime-monotonic time iff enabled, else `None`. Mirrors
    /// [`crate::stats::BufferStats::phase_start`].
    #[inline]
    pub fn ts(&self) -> Option<u64> {
        if self.on() {
            Some(crate::runtime::monotonic_ns())
        } else {
            None
        }
    }

    /// Register (or look up) a counter. Idempotent by name; panics when the
    /// registry is full. Allocation happens only here, never on record.
    pub fn counter(&self, name: &'static str, unit: Unit) -> CounterId {
        let mut meta = self.meta.lock();
        if let Some(i) = meta.counters.iter().position(|e| e.name == name) {
            return CounterId(i as u16);
        }
        assert!(meta.counters.len() < MAX_COUNTERS, "counter registry full");
        meta.counters.push(MetaEntry { name, unit });
        CounterId((meta.counters.len() - 1) as u16)
    }

    /// Register (or look up) a gauge. Idempotent by name.
    pub fn gauge(&self, name: &'static str, unit: Unit) -> GaugeId {
        let mut meta = self.meta.lock();
        if let Some(i) = meta.gauges.iter().position(|e| e.name == name) {
            return GaugeId(i as u16);
        }
        assert!(meta.gauges.len() < MAX_GAUGES, "gauge registry full");
        meta.gauges.push(MetaEntry { name, unit });
        GaugeId((meta.gauges.len() - 1) as u16)
    }

    /// Register (or look up) a histogram; shard memory is allocated on first
    /// registration. Idempotent by name.
    pub fn histogram(&self, name: &'static str, unit: Unit) -> HistId {
        let mut meta = self.meta.lock();
        if let Some(i) = meta.hists.iter().position(|e| e.name == name) {
            return HistId(i as u16);
        }
        assert!(meta.hists.len() < MAX_HISTS, "histogram registry full");
        let id = meta.hists.len();
        self.hists[id].get_or_init(|| Histogram::new(self.hist_shards));
        meta.hists.push(MetaEntry { name, unit });
        HistId(id as u16)
    }

    /// Add `n` to a counter (no-op when disabled).
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if !self.on() {
            return;
        }
        self.counters[id.0 as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one (no-op when disabled).
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Set a gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: i64) {
        if !self.on() {
            return;
        }
        self.gauges[id.0 as usize].store(v, Ordering::Relaxed);
    }

    /// Adjust a gauge by a signed delta (no-op when disabled).
    #[inline]
    pub fn gauge_add(&self, id: GaugeId, d: i64) {
        if !self.on() {
            return;
        }
        self.gauges[id.0 as usize].fetch_add(d, Ordering::Relaxed);
    }

    /// Record one histogram observation (no-op when disabled).
    #[inline]
    pub fn record(&self, id: HistId, v: u64) {
        if !self.on() {
            return;
        }
        if let Some(h) = self.hists[id.0 as usize].get() {
            h.record(v);
        }
    }

    /// Whether the record at `lsn` is trace-sampled. Pure function of the
    /// LSN (records are 8-byte aligned, so the mask applies to `lsn >> 3`):
    /// every stage of one record agrees on the answer with no coordination,
    /// and the same seed samples the same records under `Runtime::sim`.
    #[inline]
    pub fn sampled(&self, lsn: Lsn) -> bool {
        self.on() && self.sample_every != 0 && ((lsn.0 >> 3) & (self.sample_every - 1)) == 0
    }

    /// Record a span for `stage` at `lsn`. Per-record stages are dropped
    /// unless [`Telemetry::sampled`] holds; batch-scoped stages are recorded
    /// whenever enabled (they are per flush batch, not per record).
    #[inline]
    pub fn span(&self, stage: Stage, lsn: Lsn, start_ns: u64, end_ns: u64) {
        if !self.on() {
            return;
        }
        if !stage.batch_scoped() && !self.sampled(lsn) {
            return;
        }
        self.trace.record(stage, lsn.0, start_ns, end_ns);
    }

    /// Record an instantaneous event (`start == end`).
    #[inline]
    pub fn event(&self, stage: Stage, lsn: Lsn, at_ns: u64) {
        self.span(stage, lsn, at_ns, at_ns);
    }

    /// Raw access to the trace ring (snapshotting, tests).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Point-in-time snapshot of every registered metric plus the live trace
    /// events, tagged with `scope`.
    pub fn snapshot(&self, scope: &str) -> TelemetrySnapshot {
        let meta = self.meta.lock();
        let mut snap = TelemetrySnapshot::new(scope, crate::runtime::monotonic_ns());
        for (i, e) in meta.counters.iter().enumerate() {
            snap.push_counter(e.name, e.unit, self.counters[i].load(Ordering::Relaxed));
        }
        for (i, e) in meta.gauges.iter().enumerate() {
            snap.push_gauge(e.name, e.unit, self.gauges[i].load(Ordering::Relaxed));
        }
        for (i, e) in meta.hists.iter().enumerate() {
            if let Some(h) = self.hists[i].get() {
                snap.push_hist(e.name, e.unit, h.merged());
            }
        }
        drop(meta);
        snap.events = self.trace.snapshot();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled() -> Telemetry {
        Telemetry::new(&TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        })
    }

    #[test]
    fn registration_is_idempotent() {
        let t = enabled();
        let a = t.counter("x.events", Unit::Count);
        let b = t.counter("x.events", Unit::Count);
        assert_eq!(a, b);
        let h1 = t.histogram("x.lat", Unit::Nanos);
        let h2 = t.histogram("x.lat", Unit::Nanos);
        assert_eq!(h1, h2);
        // Core ids are pre-registered, so a re-registration maps onto them.
        assert_eq!(
            t.histogram("log.insert_ns", Unit::Nanos),
            t.ids().log_insert_ns
        );
    }

    #[test]
    fn disabled_is_a_no_op() {
        let t = Telemetry::new(&TelemetryConfig::default());
        assert!(!t.on());
        let c = t.counter("x.events", Unit::Count);
        t.add(c, 5);
        t.record(t.ids().log_insert_ns, 100);
        t.span(Stage::DeviceWrite, Lsn(0), 0, 1);
        assert!(t.ts().is_none());
        let snap = t.snapshot("test");
        assert_eq!(
            snap.counters
                .iter()
                .find(|m| m.name == "x.events")
                .unwrap()
                .value,
            0
        );
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_gauges_hists_record_when_enabled() {
        let t = enabled();
        let c = t.counter("x.events", Unit::Count);
        let g = t.gauge("x.depth", Unit::Records);
        t.add(c, 2);
        t.inc(c);
        t.gauge_set(g, 7);
        t.gauge_add(g, -3);
        t.record(t.ids().log_insert_ns, 1000);
        let snap = t.snapshot("test");
        assert_eq!(
            snap.counters
                .iter()
                .find(|m| m.name == "x.events")
                .unwrap()
                .value,
            3
        );
        assert_eq!(
            snap.gauges
                .iter()
                .find(|m| m.name == "x.depth")
                .unwrap()
                .value,
            4
        );
        let h = snap
            .hists
            .iter()
            .find(|h| h.name == "log.insert_ns")
            .unwrap();
        assert_eq!(h.count, 1);
    }

    #[test]
    fn sampling_is_a_pure_lsn_function() {
        let t = Telemetry::new(&TelemetryConfig {
            enabled: true,
            sample_every: 4,
            ..TelemetryConfig::default()
        });
        // Records are 8-aligned; with sample_every=4 every 4th aligned LSN
        // (i.e. multiples of 32) samples.
        assert!(t.sampled(Lsn(0)));
        assert!(t.sampled(Lsn(32)));
        assert!(!t.sampled(Lsn(8)));
        assert!(!t.sampled(Lsn(16)));
        // Per-record stages honor sampling; batch stages do not.
        t.span(Stage::Fill, Lsn(8), 1, 2);
        assert_eq!(t.trace().snapshot().len(), 0);
        t.span(Stage::Fill, Lsn(32), 1, 2);
        t.span(Stage::DeviceWrite, Lsn(8), 1, 2);
        assert_eq!(t.trace().snapshot().len(), 2);
    }

    #[test]
    fn sample_every_zero_disables_tracing_only() {
        let t = Telemetry::new(&TelemetryConfig {
            enabled: true,
            sample_every: 0,
            ..TelemetryConfig::default()
        });
        assert!(!t.sampled(Lsn(0)));
        t.span(Stage::Fill, Lsn(0), 1, 2);
        assert!(t.trace().snapshot().is_empty());
        t.record(t.ids().log_insert_ns, 5);
        assert_eq!(t.snapshot("t").hists[0].count, 1);
    }

    #[test]
    fn config_validation() {
        let mut c = TelemetryConfig::default();
        assert!(c.validate().is_ok());
        c.sample_every = 3;
        assert!(c.validate().is_err());
        c.sample_every = 0;
        assert!(c.validate().is_ok());
        c.hist_shards = 0;
        assert!(c.validate().is_err());
        c.hist_shards = 8;
        c.trace_capacity = 17;
        assert!(c.validate().is_err());
    }
}
