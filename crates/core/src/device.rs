//! Log devices: where flushed bytes go.
//!
//! §3.2 and §6.1 of the paper evaluate four latency classes, created "by
//! using a combination of asynchronous I/O and high resolution timers to
//! impose additional response times": ramdisk (~0), fast flash (100 µs), fast
//! magnetic disk (1 ms) and slow magnetic disk (10 ms). [`SimDevice`] does the
//! same — an in-memory append store plus an injected synchronous `sync()`
//! latency. [`FileDevice`] writes a real file with `fdatasync` for users who
//! want actual durability, and [`NullDevice`] discards writes so the
//! log-insert microbenchmarks (§6.3) measure pure buffer performance.

use crate::error::Result;
use crate::lsn::Lsn;
use parking_lot::Mutex;
use std::io::{Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Abstraction over the durable end of the log.
///
/// The flush daemon appends byte runs in LSN order and calls [`LogDevice::sync`]
/// to make them durable; recovery reads them back with
/// [`LogDevice::read_at`].
pub trait LogDevice: Send + Sync {
    /// Append `data` at the device's write offset.
    fn append(&self, data: &[u8]) -> Result<()>;

    /// Append several byte runs as one logical append — the vectored drain.
    /// The flush daemon hands the ring's released window here as at most two
    /// slices (tail + wrapped head), so bytes go ring → device with no
    /// scratch copy in between. The runs are one contiguous span of the log
    /// stream; a partial failure leaves a prefix, exactly like a torn
    /// [`LogDevice::append`].
    ///
    /// The default forwards to `append` per run; devices with an internal
    /// lock override it to take the lock once.
    fn write_vectored(&self, bufs: &[&[u8]]) -> Result<()> {
        for b in bufs {
            if !b.is_empty() {
                self.append(b)?;
            }
        }
        Ok(())
    }

    /// Make all appended bytes durable. This is where simulated write latency
    /// is charged, mirroring the paper's methodology.
    fn sync(&self) -> Result<()>;

    /// Read up to `dst.len()` bytes starting at byte `offset`; returns the
    /// number of bytes read (0 at end of log).
    fn read_at(&self, offset: u64, dst: &mut [u8]) -> Result<usize>;

    /// Number of bytes appended so far.
    fn len(&self) -> u64;

    /// True if the device has no content.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if writes are discarded (microbenchmark mode): the flush daemon
    /// then skips the copy entirely and reclaims ring space directly.
    fn discards(&self) -> bool {
        false
    }

    /// Nominal sync latency, for reporting.
    fn nominal_latency(&self) -> Duration {
        Duration::ZERO
    }

    /// Point-in-time copy of the device's durable contents, if the device
    /// supports it. Crash-injection tests use this to capture exactly the
    /// bytes that survived (ring contents are lost, as in a real crash).
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Stream offset of the first byte a scan may rely on (the log's
    /// low-water mark). Everything below has been truncated/recycled; on a
    /// device that never reclaims this is [`Lsn::ZERO`]. Always a record
    /// boundary: truncation only ever lands on the LSN of a record start.
    fn low_water(&self) -> Lsn {
        Lsn::ZERO
    }

    /// Reclaim storage wholly below stream offset `upto`, if the device
    /// supports it; returns the number of storage units (segments) recycled.
    /// Devices without reclamation ignore the call. Callers must guarantee
    /// that no reader — recovery, replica shipping — still needs a byte
    /// below `upto` (see `LogManager::truncate_to`, which enforces this).
    /// Fallible: recycling may itself need I/O (renaming/unlinking segment
    /// files, rewriting a manifest) that can hit ENOSPC — the
    /// disk-full-on-truncate double fault the sim injects.
    fn truncate_before(&self, _upto: Lsn) -> Result<usize> {
        Ok(0)
    }

    /// Point-in-time copy of the *retained* durable contents together with
    /// the stream offset of the first returned byte. For devices that never
    /// truncate, this is `(Lsn::ZERO, full snapshot)`; after truncation the
    /// recycled prefix is gone and recovery must start at the offset.
    fn snapshot_from(&self) -> Option<(Lsn, Vec<u8>)> {
        self.snapshot().map(|b| (Lsn::ZERO, b))
    }
}

pub use crate::runtime::precise_sleep;

/// Discards everything; tracks only length. Used by the Figure-8/11/12
/// microbenchmarks ("log insertions without flushes to disk").
#[derive(Debug, Default)]
pub struct NullDevice {
    len: AtomicU64,
}

impl NullDevice {
    /// New discarding device.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogDevice for NullDevice {
    fn append(&self, data: &[u8]) -> Result<()> {
        self.len.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }
    fn write_vectored(&self, bufs: &[&[u8]]) -> Result<()> {
        let total: u64 = bufs.iter().map(|b| b.len() as u64).sum();
        self.len.fetch_add(total, Ordering::Relaxed);
        Ok(())
    }
    fn sync(&self) -> Result<()> {
        Ok(())
    }
    fn read_at(&self, _offset: u64, _dst: &mut [u8]) -> Result<usize> {
        Ok(0)
    }
    fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }
    fn discards(&self) -> bool {
        true
    }
}

/// In-memory append store with injected sync latency. `latency == 0` models
/// the paper's ramdisk; 100 µs a fast flash drive; 1 ms / 10 ms magnetic
/// drives.
#[derive(Debug)]
pub struct SimDevice {
    data: Mutex<Vec<u8>>,
    latency: Duration,
}

impl SimDevice {
    /// New simulated device with the given per-sync latency.
    pub fn new(latency: Duration) -> Self {
        SimDevice {
            data: Mutex::new(Vec::new()),
            latency,
        }
    }

    /// Snapshot the full device contents (tests / crash simulation).
    pub fn contents(&self) -> Vec<u8> {
        self.data.lock().clone()
    }

    /// Truncate to `len` bytes — used by crash-injection tests to model a
    /// torn tail.
    pub fn truncate(&self, len: u64) {
        self.data.lock().truncate(len as usize);
    }
}

impl LogDevice for SimDevice {
    fn append(&self, data: &[u8]) -> Result<()> {
        self.data.lock().extend_from_slice(data);
        Ok(())
    }
    fn write_vectored(&self, bufs: &[&[u8]]) -> Result<()> {
        let mut data = self.data.lock();
        data.reserve(bufs.iter().map(|b| b.len()).sum());
        for b in bufs {
            data.extend_from_slice(b);
        }
        Ok(())
    }
    fn sync(&self) -> Result<()> {
        precise_sleep(self.latency);
        Ok(())
    }
    fn read_at(&self, offset: u64, dst: &mut [u8]) -> Result<usize> {
        let data = self.data.lock();
        if offset >= data.len() as u64 {
            return Ok(0);
        }
        let start = offset as usize;
        let n = dst.len().min(data.len() - start);
        dst[..n].copy_from_slice(&data[start..start + n]);
        Ok(n)
    }
    fn len(&self) -> u64 {
        self.data.lock().len() as u64
    }
    fn nominal_latency(&self) -> Duration {
        self.latency
    }
    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(self.contents())
    }
}

/// A real log file: appends then `fdatasync`s.
#[derive(Debug)]
pub struct FileDevice {
    file: Mutex<std::fs::File>,
    len: AtomicU64,
    path: std::path::PathBuf,
}

impl FileDevice {
    /// Open (create/truncate) the log file at `path`.
    pub fn create(path: impl Into<std::path::PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(FileDevice {
            file: Mutex::new(file),
            len: AtomicU64::new(0),
            path,
        })
    }

    /// Open an existing log file for recovery.
    pub fn open(path: impl Into<std::path::PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(FileDevice {
            file: Mutex::new(file),
            len: AtomicU64::new(len),
            path,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl LogDevice for FileDevice {
    fn append(&self, data: &[u8]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::End(0))?;
        f.write_all(data)?;
        self.len.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }
    fn write_vectored(&self, bufs: &[&[u8]]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::End(0))?;
        // One seek, then gathered writes. `Write::write_vectored` may write
        // short, so drive each run with write_all — the bytes still go
        // straight from the ring to the file with no staging buffer.
        let mut written = 0u64;
        for b in bufs {
            f.write_all(b)?;
            written += b.len() as u64;
        }
        self.len.fetch_add(written, Ordering::Relaxed);
        Ok(())
    }
    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
    fn read_at(&self, offset: u64, dst: &mut [u8]) -> Result<usize> {
        use std::io::Read;
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(offset))?;
        let mut total = 0;
        while total < dst.len() {
            let n = f.read(&mut dst[total..])?;
            if n == 0 {
                break;
            }
            total += n;
        }
        Ok(total)
    }
    fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }
}

/// An in-memory device whose stream starts at a non-zero base offset: the
/// backing bytes represent `[base, base + inner_len)` of the logical log.
///
/// Two users: rebuilding a log whose prefix was truncated away (recovery
/// from a [`crate::partition::SegmentedDevice`] crash image — materializing
/// `base` zero bytes would make recovery O(uptime) instead of O(retained)),
/// and a replica's receive log after a snapshot bootstrap (the shipped
/// stream begins at the snapshot LSN, not at zero).
#[derive(Debug)]
pub struct OffsetDevice {
    base: Lsn,
    data: Mutex<Vec<u8>>,
}

impl OffsetDevice {
    /// New empty device whose first byte will live at stream offset `base`.
    pub fn new(base: Lsn) -> Self {
        OffsetDevice {
            base,
            data: Mutex::new(Vec::new()),
        }
    }

    /// The base stream offset (== [`LogDevice::low_water`]).
    pub fn base(&self) -> Lsn {
        self.base
    }

    /// Copy of the retained bytes (stream offsets `[base, len)`).
    pub fn contents(&self) -> Vec<u8> {
        self.data.lock().clone()
    }

    /// Truncate so the stream ends at `stream_len` — crash tests clip a
    /// torn tail exactly as [`SimDevice::truncate`] does.
    pub fn truncate(&self, stream_len: u64) {
        let keep = stream_len.saturating_sub(self.base.raw());
        self.data.lock().truncate(keep as usize);
    }
}

impl LogDevice for OffsetDevice {
    fn append(&self, data: &[u8]) -> Result<()> {
        self.data.lock().extend_from_slice(data);
        Ok(())
    }
    fn write_vectored(&self, bufs: &[&[u8]]) -> Result<()> {
        let mut data = self.data.lock();
        data.reserve(bufs.iter().map(|b| b.len()).sum());
        for b in bufs {
            data.extend_from_slice(b);
        }
        Ok(())
    }
    fn sync(&self) -> Result<()> {
        Ok(())
    }
    fn read_at(&self, offset: u64, dst: &mut [u8]) -> Result<usize> {
        if offset < self.base.raw() {
            // The truncated prefix: nothing to read, as after recycling.
            return Ok(0);
        }
        let data = self.data.lock();
        let start = (offset - self.base.raw()) as usize;
        if start >= data.len() {
            return Ok(0);
        }
        let n = dst.len().min(data.len() - start);
        dst[..n].copy_from_slice(&data[start..start + n]);
        Ok(n)
    }
    fn len(&self) -> u64 {
        self.base.raw() + self.data.lock().len() as u64
    }
    fn low_water(&self) -> Lsn {
        self.base
    }
    fn snapshot_from(&self) -> Option<(Lsn, Vec<u8>)> {
        Some((self.base, self.contents()))
    }
}

/// Convenience selector mirroring the paper's device classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceKind {
    /// Discard writes (microbenchmark mode).
    Null,
    /// In-memory, zero injected latency (ramdisk, the paper's "0 ms" series).
    Ram,
    /// 100 µs per sync (fast flash drive).
    Flash,
    /// 1 ms per sync (fast magnetic disk).
    FastDisk,
    /// 10 ms per sync (slow magnetic disk).
    SlowDisk,
    /// Arbitrary injected latency in microseconds.
    CustomUs(u64),
    /// Real file at the given path.
    File(std::path::PathBuf),
}

impl DeviceKind {
    /// Instantiate the device.
    pub fn build(&self) -> Result<std::sync::Arc<dyn LogDevice>> {
        Ok(match self {
            DeviceKind::Null => std::sync::Arc::new(NullDevice::new()),
            DeviceKind::Ram => std::sync::Arc::new(SimDevice::new(Duration::ZERO)),
            DeviceKind::Flash => std::sync::Arc::new(SimDevice::new(Duration::from_micros(100))),
            DeviceKind::FastDisk => std::sync::Arc::new(SimDevice::new(Duration::from_millis(1))),
            DeviceKind::SlowDisk => std::sync::Arc::new(SimDevice::new(Duration::from_millis(10))),
            DeviceKind::CustomUs(us) => {
                std::sync::Arc::new(SimDevice::new(Duration::from_micros(*us)))
            }
            DeviceKind::File(p) => std::sync::Arc::new(FileDevice::create(p)?),
        })
    }
}

/// Compute where a recovery scan should begin given a device: its low-water
/// mark — byte 0 for a single-file log, the first retained record boundary
/// for a segmented log that has recycled its prefix behind checkpoints.
pub fn scan_start(device: &dyn LogDevice) -> Lsn {
    device.low_water()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_device_discards() {
        let d = NullDevice::new();
        d.append(b"hello").unwrap();
        assert_eq!(d.len(), 5);
        assert!(d.discards());
        let mut buf = [0u8; 4];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 0);
    }

    #[test]
    fn sim_device_roundtrip() {
        let d = SimDevice::new(Duration::ZERO);
        d.append(b"hello ").unwrap();
        d.append(b"world").unwrap();
        d.sync().unwrap();
        assert_eq!(d.len(), 11);
        let mut buf = vec![0u8; 11];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 11);
        assert_eq!(&buf, b"hello world");
        let mut tail = vec![0u8; 20];
        assert_eq!(d.read_at(6, &mut tail).unwrap(), 5);
        assert_eq!(&tail[..5], b"world");
        assert_eq!(d.read_at(11, &mut tail).unwrap(), 0);
    }

    #[test]
    fn write_vectored_matches_sequential_appends() {
        let runs: [&[u8]; 3] = [b"alpha-", b"beta-", b"gamma"];
        // SimDevice.
        let d = SimDevice::new(Duration::ZERO);
        d.write_vectored(&runs).unwrap();
        assert_eq!(d.contents(), b"alpha-beta-gamma");
        // OffsetDevice preserves its stream base.
        let o = OffsetDevice::new(Lsn(100));
        o.write_vectored(&runs).unwrap();
        assert_eq!(o.contents(), b"alpha-beta-gamma");
        assert_eq!(o.len(), 116);
        // NullDevice counts the bytes.
        let n = NullDevice::new();
        n.write_vectored(&runs).unwrap();
        assert_eq!(n.len(), 16);
        // FileDevice writes one gathered run.
        let dir = std::env::temp_dir().join(format!("aether-vec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = FileDevice::create(dir.join("log.bin")).unwrap();
        f.append(b"pre-").unwrap();
        f.write_vectored(&runs).unwrap();
        f.sync().unwrap();
        assert_eq!(f.len(), 20);
        let mut out = vec![0u8; 20];
        assert_eq!(f.read_at(0, &mut out).unwrap(), 20);
        assert_eq!(&out, b"pre-alpha-beta-gamma");
        std::fs::remove_dir_all(&dir).ok();
        // Empty runs are skipped by the default impl.
        let d2 = SimDevice::new(Duration::ZERO);
        LogDevice::write_vectored(&d2, &[b"", b"x", b""]).unwrap();
        assert_eq!(d2.contents(), b"x");
    }

    #[test]
    fn sim_device_latency_charged_on_sync() {
        let d = SimDevice::new(Duration::from_millis(2));
        d.append(b"x").unwrap();
        let t = crate::runtime::monotonic_ns();
        d.sync().unwrap();
        assert!(crate::runtime::monotonic_ns() - t >= 2_000_000);
        assert_eq!(d.nominal_latency(), Duration::from_millis(2));
    }

    #[test]
    fn sim_device_truncate_models_torn_tail() {
        let d = SimDevice::new(Duration::ZERO);
        d.append(b"0123456789").unwrap();
        d.truncate(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.contents(), b"0123".to_vec());
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aether-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let d = FileDevice::create(&path).unwrap();
        d.append(b"abcdef").unwrap();
        d.sync().unwrap();
        assert_eq!(d.len(), 6);
        let mut buf = vec![0u8; 6];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"abcdef");
        drop(d);
        let d2 = FileDevice::open(&path).unwrap();
        assert_eq!(d2.len(), 6);
        assert_eq!(d2.path(), path.as_path());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn device_kind_builds() {
        assert!(DeviceKind::Null.build().unwrap().discards());
        assert_eq!(
            DeviceKind::Flash.build().unwrap().nominal_latency(),
            Duration::from_micros(100)
        );
        assert_eq!(
            DeviceKind::CustomUs(250).build().unwrap().nominal_latency(),
            Duration::from_micros(250)
        );
        assert!(DeviceKind::Ram.build().unwrap().is_empty());
    }

    #[test]
    fn offset_device_rebases_the_stream() {
        let d = OffsetDevice::new(Lsn(1000));
        assert_eq!(d.low_water(), Lsn(1000));
        assert_eq!(d.len(), 1000);
        assert!(!d.is_empty());
        d.append(b"hello world").unwrap();
        d.sync().unwrap();
        assert_eq!(d.len(), 1011);
        // Reads below the base return nothing (truncated prefix).
        let mut buf = [0u8; 4];
        assert_eq!(d.read_at(0, &mut buf).unwrap(), 0);
        assert_eq!(d.read_at(999, &mut buf).unwrap(), 0);
        // Reads are addressed in stream offsets.
        let mut out = vec![0u8; 11];
        assert_eq!(d.read_at(1000, &mut out).unwrap(), 11);
        assert_eq!(&out, b"hello world");
        assert_eq!(d.read_at(1006, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"worl");
        let (base, bytes) = d.snapshot_from().unwrap();
        assert_eq!(base, Lsn(1000));
        assert_eq!(bytes, b"hello world");
        assert_eq!(scan_start(&d), Lsn(1000));
        // Torn-tail clipping speaks stream lengths too.
        d.truncate(1005);
        assert_eq!(d.len(), 1005);
        assert_eq!(d.contents(), b"hello");
    }

    #[test]
    fn precise_sleep_short_and_long() {
        let t = crate::runtime::monotonic_ns();
        precise_sleep(Duration::from_micros(50));
        assert!(crate::runtime::monotonic_ns() - t >= 50_000);
        let t = crate::runtime::monotonic_ns();
        precise_sleep(Duration::from_millis(1));
        assert!(crate::runtime::monotonic_ns() - t >= 1_000_000);
        precise_sleep(Duration::ZERO); // no-op
    }
}
