//! The consolidation array (§5.1, §A.2, Algorithm 5, Figure 10).
//!
//! Elimination-based backoff [Hendler et al., SPAA'04] turns opposing stack
//! operations into a productive form of backoff. Log inserts don't cancel —
//! they *compose*: two requests concatenated are one larger request. So
//! threads that hit contention on the log mutex back off into this array and
//! **consolidate**: the first thread to claim a slot (the *leader*, offset 0)
//! acquires buffer space for the whole group; followers compute their record
//! positions from their join offsets with no further communication; the last
//! to finish its copy releases the group's buffer region.
//!
//! ## Slot state machine (Figure 10)
//!
//! One `AtomicI64` encodes the entire life cycle:
//!
//! ```text
//!   FREE ──(mutex holder: SET(READY))──► OPEN (state = READY + joined_bytes)
//!   OPEN ──(owner + mutex: total = SWAP(PENDING))──► PENDING
//!   PENDING ──(owner: SET(DONE − total))──► COPYING (state in [DONE−total, DONE))
//!   COPYING ──(each member: ADD(size))──► … ──(last: ADD makes state == DONE)
//!   DONE ──(last one: SET(FREE))──► FREE
//! ```
//!
//! `join` succeeds only while `state >= READY`; every other state makes the
//! probing thread retry elsewhere. Because the closing leader first swaps a
//! *fresh* slot into the array, newly arriving threads practically never see
//! a closed slot ("the array slot reopens even though the threads that
//! consolidated their request are still working on the previous, now-private,
//! version of that slot").

use crate::buffer::fast_rand;
use crate::lsn::Lsn;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Base of the OPEN range: an open slot's state is `READY + joined bytes`.
pub const SLOT_READY: i64 = 0;
/// Slot is unused and may be installed into the array by a closing leader.
pub const SLOT_FREE: i64 = -1;
/// Transient: leader has closed the group but not yet published the LSN.
pub const SLOT_PENDING: i64 = -2;
/// Copy-phase base: after `notify`, state is `DONE - remaining_bytes` and
/// climbs back to `DONE` as members finish (Figure 10's COPYING range).
pub const SLOT_DONE: i64 = i64::MIN / 2;

/// One consolidation slot. All fields are written under the protocol above;
/// `lsn`/`group_size`/`extra` are published by the release-store in
/// [`Slot::notify`] and read after the acquire-load in [`Slot::wait`].
#[derive(Debug)]
pub struct Slot {
    state: AtomicI64,
    lsn: AtomicU64,
    group_size: AtomicU64,
    /// Variant-specific payload published along with the LSN; the CDME buffer
    /// stores its release-queue handle here.
    extra: AtomicU64,
    /// Which array position currently points at this slot (meaningful only
    /// while OPEN; used by the closing leader to install the replacement).
    array_pos: AtomicUsize,
}

impl Slot {
    fn new_free() -> Self {
        Slot {
            state: AtomicI64::new(SLOT_FREE),
            lsn: AtomicU64::new(0),
            group_size: AtomicU64::new(0),
            extra: AtomicU64::new(0),
            array_pos: AtomicUsize::new(usize::MAX),
        }
    }

    /// Raw state, for diagnostics and tests.
    pub fn state(&self) -> i64 {
        self.state.load(Ordering::Relaxed)
    }

    /// Leader publishes the group's base LSN (+ a variant-specific word) and
    /// opens the copy phase. `group_size` is the total bytes closed into the
    /// group.
    pub fn notify(&self, lsn: Lsn, group_size: u64, extra: u64) {
        self.lsn.store(lsn.raw(), Ordering::Relaxed);
        self.group_size.store(group_size, Ordering::Relaxed);
        self.extra.store(extra, Ordering::Relaxed);
        self.state
            .store(SLOT_DONE - group_size as i64, Ordering::Release);
    }

    /// Follower waits for the leader's [`Slot::notify`]; returns
    /// `(base_lsn, group_size, extra)`.
    pub fn wait(&self) -> (Lsn, u64, u64) {
        let mut backoff = crate::buffer::WaitBackoff::new();
        while self.state.load(Ordering::Acquire) > SLOT_DONE {
            backoff.wait();
        }
        (
            Lsn(self.lsn.load(Ordering::Relaxed)),
            self.group_size.load(Ordering::Relaxed),
            self.extra.load(Ordering::Relaxed),
        )
    }

    /// Member signals its copy of `size` bytes is complete. Returns `true`
    /// for the last member out (who must release the group's buffer and then
    /// [`Slot::free`] the slot).
    pub fn release_member(&self, size: u64) -> bool {
        let new = self.state.fetch_add(size as i64, Ordering::AcqRel) + size as i64;
        debug_assert!(new <= SLOT_DONE, "slot over-released");
        new == SLOT_DONE
    }

    /// Return the slot to the pool (terminal FREE state).
    pub fn free(&self) {
        self.state.store(SLOT_FREE, Ordering::Release);
    }
}

/// Result of a successful [`CArray::join`].
#[derive(Debug, Clone, Copy)]
pub struct JoinResult<'a> {
    /// The slot joined.
    pub slot: &'a Slot,
    /// Byte offset of this thread's record within the group allocation.
    /// Offset 0 means this thread is the group leader.
    pub offset: u64,
}

/// The consolidation array: `n_active` visible slots backed by a recycled
/// pool (preallocated at startup, §A.1).
#[derive(Debug)]
pub struct CArray {
    pool: Box<[CachePadded<Slot>]>,
    active: Box<[CachePadded<AtomicUsize>]>,
    pool_cursor: AtomicUsize,
    max_group: u64,
}

impl CArray {
    /// `n_active` array entries over a pool of `pool_size` slots. Groups are
    /// capped at `max_group` bytes so a consolidated allocation always fits
    /// in the ring.
    pub fn new(n_active: usize, pool_size: usize, max_group: u64) -> CArray {
        assert!(n_active >= 1, "need at least one active slot");
        assert!(
            pool_size >= 2 * n_active,
            "pool must be at least twice the active set"
        );
        let pool: Box<[CachePadded<Slot>]> = (0..pool_size)
            .map(|_| CachePadded::new(Slot::new_free()))
            .collect();
        let active: Box<[CachePadded<AtomicUsize>]> = (0..n_active)
            .map(|i| {
                pool[i].state.store(SLOT_READY, Ordering::Relaxed);
                pool[i].array_pos.store(i, Ordering::Relaxed);
                CachePadded::new(AtomicUsize::new(i))
            })
            .collect();
        CArray {
            pool,
            active,
            pool_cursor: AtomicUsize::new(n_active),
            max_group,
        }
    }

    /// Number of visible slots.
    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Largest group (bytes) the array will form.
    pub fn max_group(&self) -> u64 {
        self.max_group
    }

    /// Probe for an OPEN slot and add `size` bytes to its group (Algorithm 5
    /// lines 1–19). Returns the slot and this thread's offset; offset 0 makes
    /// the caller the group leader, responsible for
    /// [`CArray::close_and_replace`] + buffer acquisition + [`Slot::notify`].
    ///
    /// `size` must be `<= max_group` (callers route oversized records to the
    /// direct path instead).
    pub fn join(&self, size: u64) -> JoinResult<'_> {
        debug_assert!(size <= self.max_group);
        loop {
            // probe_slot:
            let pos = fast_rand() as usize % self.active.len();
            let slot_idx = self.active[pos].load(Ordering::Acquire);
            let slot: &Slot = &self.pool[slot_idx];
            let mut state = slot.state.load(Ordering::Relaxed);
            // join_slot:
            loop {
                if state < SLOT_READY || (state - SLOT_READY) as u64 + size > self.max_group {
                    break; // closed or full: new threads not welcome here
                }
                match slot.state.compare_exchange_weak(
                    state,
                    state + size as i64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        return JoinResult {
                            slot,
                            offset: (state - SLOT_READY) as u64,
                        }
                    }
                    Err(cur) => state = cur,
                }
            }
        }
    }

    /// Leader-only (Algorithm 5 lines 21–33): install a fresh slot in this
    /// slot's array position, then close the group with an atomic swap.
    /// Returns the total bytes joined. The caller must hold the log's insert
    /// lock (which also serializes pool allocation, per the paper).
    pub fn close_and_replace(&self, slot: &Slot) -> u64 {
        let pos = slot.array_pos.load(Ordering::Relaxed);
        // Find a FREE pool slot; "in the common case the next slot to be
        // allocated was freed long ago and each allocation requires only an
        // index increment".
        loop {
            let i = self.pool_cursor.fetch_add(1, Ordering::Relaxed) % self.pool.len();
            let cand = &self.pool[i];
            if cand.state.load(Ordering::Relaxed) == SLOT_FREE {
                cand.array_pos.store(pos, Ordering::Relaxed);
                cand.state.store(SLOT_READY, Ordering::Release);
                // New arrivals will no longer see `slot`.
                self.active[pos].store(i, Ordering::Release);
                break;
            }
        }
        let old = slot.state.swap(SLOT_PENDING, Ordering::AcqRel);
        debug_assert!(old >= SLOT_READY, "only OPEN slots can close");
        (old - SLOT_READY) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_group_of_one() {
        let ca = CArray::new(2, 8, 1 << 20);
        let j = ca.join(100);
        assert_eq!(j.offset, 0, "first joiner is leader");
        let total = ca.close_and_replace(j.slot);
        assert_eq!(total, 100);
        j.slot.notify(Lsn(4096), total, 7);
        let (lsn, group, extra) = j.slot.wait();
        assert_eq!(lsn, Lsn(4096));
        assert_eq!(group, 100);
        assert_eq!(extra, 7);
        assert!(j.slot.release_member(100), "sole member is last out");
        j.slot.free();
        assert_eq!(j.slot.state(), SLOT_FREE);
    }

    #[test]
    fn offsets_accumulate_in_join_order() {
        let ca = CArray::new(1, 4, 1 << 20);
        let a = ca.join(40);
        let b = ca.join(264);
        let c = ca.join(8);
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 40);
        assert_eq!(c.offset, 304);
        assert!(std::ptr::eq(a.slot, b.slot));
        let total = ca.close_and_replace(a.slot);
        assert_eq!(total, 312);
        // After close, new joins land on the *replacement* slot.
        let d = ca.join(16);
        assert!(!std::ptr::eq(a.slot, d.slot));
        assert_eq!(d.offset, 0);
        // Drain the first group so the slot recycles.
        a.slot.notify(Lsn(0), total, 0);
        assert!(!a.slot.release_member(40));
        assert!(!a.slot.release_member(264));
        assert!(a.slot.release_member(8));
        a.slot.free();
    }

    #[test]
    fn join_respects_max_group() {
        let ca = Arc::new(CArray::new(1, 4, 512));
        let a = ca.join(500);
        assert_eq!(a.offset, 0);
        // A 100-byte join would exceed max_group=512; it must wait for the
        // close and land on the replacement slot. Run it in a scoped thread.
        std::thread::scope(|s| {
            let ca2 = Arc::clone(&ca);
            let h = s.spawn(move || {
                let j = ca2.join(100);
                j.offset
            });
            crate::runtime::sleep(std::time::Duration::from_millis(10));
            let total = ca.close_and_replace(a.slot);
            assert_eq!(total, 500);
            assert_eq!(h.join().unwrap(), 0, "lands as leader of fresh slot");
            a.slot.notify(Lsn(0), total, 0);
            assert!(a.slot.release_member(500));
            a.slot.free();
        });
    }

    #[test]
    fn concurrent_joins_partition_the_group() {
        // Many threads join; one leader closes; the offsets must tile
        // [0, total) exactly with no overlap.
        let ca = Arc::new(CArray::new(1, 8, 1 << 30));
        let threads = 16;
        let size = 48u64;
        let results = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let ca = Arc::clone(&ca);
                let results = Arc::clone(&results);
                s.spawn(move || {
                    let j = ca.join(size);
                    if j.offset == 0 {
                        // tiny delay lets others pile in
                        crate::runtime::sleep(std::time::Duration::from_millis(20));
                        let total = ca.close_and_replace(j.slot);
                        j.slot.notify(Lsn(0), total, 0);
                    }
                    let (_, _, _) = j.slot.wait();
                    results
                        .lock()
                        .push((j.slot as *const Slot as usize, j.offset));
                    if j.slot.release_member(size) {
                        j.slot.free();
                    }
                });
            }
        });
        let results = results.lock();
        assert_eq!(results.len(), threads);
        // Group offsets within each slot must be distinct multiples of size.
        use std::collections::HashMap;
        let mut by_slot: HashMap<usize, Vec<u64>> = HashMap::new();
        for (slot, off) in results.iter() {
            by_slot.entry(*slot).or_default().push(*off);
        }
        for offs in by_slot.values_mut() {
            offs.sort();
            for (i, off) in offs.iter().enumerate() {
                assert_eq!(*off, i as u64 * size, "offsets must tile contiguously");
            }
        }
    }

    #[test]
    fn slot_recycling_reuses_pool() {
        let ca = CArray::new(1, 4, 1 << 20);
        // Cycle through many groups; pool of 4 must keep up because each
        // group is fully drained before the next closes.
        for round in 0..50u64 {
            let j = ca.join(64);
            assert_eq!(j.offset, 0);
            let total = ca.close_and_replace(j.slot);
            assert_eq!(total, 64);
            j.slot.notify(Lsn(round * 64), total, 0);
            assert!(j.slot.release_member(64));
            j.slot.free();
        }
    }

    #[test]
    fn state_constants_are_disjoint() {
        const { assert!(SLOT_FREE < SLOT_READY) };
        const { assert!(SLOT_PENDING < SLOT_READY) };
        const { assert!(SLOT_DONE < SLOT_PENDING) };
        // COPYING range [DONE - g, DONE) must not collide with FREE/PENDING
        // for any plausible group size.
        let g = (1u64 << 40) as i64;
        assert!(SLOT_DONE - g > i64::MIN);
        assert!(SLOT_DONE < SLOT_FREE - g);
    }
}
