//! Segmented (partitioned) log storage.
//!
//! Production log managers split the log stream into fixed-size partition
//! files that are created, sealed, archived and deleted as the log advances;
//! §A.3 notes that these "buffer and log file wraparounds complicate
//! matters... because they impose extra work at log flush time, such as
//! closing and opening log files". This module implements that machinery
//! over any inner [`LogDevice`] factory:
//!
//! * the stream position maps to `(segment number, offset)` by division;
//! * appends that straddle a boundary are split, sealing the old segment and
//!   opening the next;
//! * sealed segments below the *truncation point* (computed by the storage
//!   layer as `min(durable checkpoint redo point, oldest active txn LSN)`)
//!   can be recycled;
//! * reads stitch segments back together, so recovery code is oblivious.

use crate::device::LogDevice;
use crate::error::Result;
use crate::lsn::Lsn;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Factory for segment backing stores (e.g. one [`crate::device::SimDevice`]
/// or one file per segment).
pub trait SegmentFactory: Send + Sync {
    /// Create the backing device for segment `seg_no`.
    fn create(&self, seg_no: u64) -> Result<Arc<dyn LogDevice>>;
}

/// In-memory segment factory (tests, simulations).
#[derive(Debug, Default)]
pub struct MemSegmentFactory;

impl SegmentFactory for MemSegmentFactory {
    fn create(&self, _seg_no: u64) -> Result<Arc<dyn LogDevice>> {
        Ok(Arc::new(crate::device::SimDevice::new(
            std::time::Duration::ZERO,
        )))
    }
}

struct Segment {
    seg_no: u64,
    device: Arc<dyn LogDevice>,
    sealed: bool,
}

/// A log device built from fixed-size segments.
pub struct SegmentedDevice {
    factory: Box<dyn SegmentFactory>,
    segment_size: u64,
    segments: Mutex<Vec<Segment>>,
    /// Total bytes appended (stream length).
    len: AtomicU64,
    /// The logical low-water mark: the highest truncation LSN applied so
    /// far. Always a record boundary (callers pass redo points). Whole
    /// segments entirely below it are recycled; the first retained segment
    /// may still physically hold a few bytes below the mark, which no scan
    /// ever reads.
    truncated: AtomicU64,
    /// Segments recycled so far (metric).
    recycled: AtomicU64,
}

impl std::fmt::Debug for SegmentedDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedDevice")
            .field("segment_size", &self.segment_size)
            .field("len", &self.len.load(Ordering::Relaxed))
            .field("segments", &self.segments.lock().len())
            .finish()
    }
}

impl SegmentedDevice {
    /// New segmented device with `segment_size`-byte segments.
    pub fn new(factory: Box<dyn SegmentFactory>, segment_size: u64) -> Result<SegmentedDevice> {
        assert!(segment_size >= 4096, "segments must be at least 4 KiB");
        let first = factory.create(0)?;
        Ok(SegmentedDevice {
            factory,
            segment_size,
            segments: Mutex::new(vec![Segment {
                seg_no: 0,
                device: first,
                sealed: false,
            }]),
            len: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        })
    }

    /// Number of live (unrecycled) segments.
    pub fn live_segments(&self) -> usize {
        self.segments.lock().len()
    }

    /// Segments recycled by truncation.
    pub fn recycled_segments(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// The logical low-water mark: the highest truncation LSN applied so
    /// far (scans start here; see [`LogDevice::low_water`]).
    pub fn truncation_point(&self) -> Lsn {
        Lsn(self.truncated.load(Ordering::Relaxed))
    }

    /// Advance the low-water mark to `upto` (a record boundary computed by
    /// the storage layer) and recycle every sealed segment that lies
    /// entirely below it. The mark advances even when no whole segment can
    /// be dropped yet — the *next* truncation, or a recovery scan, picks up
    /// from it. Returns how many segments were recycled.
    pub fn truncate_before(&self, upto: Lsn) -> Result<usize> {
        let mut segments = self.segments.lock();
        // Clamp to the stream length: the mark must stay a valid scan start.
        let upto = upto.raw().min(self.len.load(Ordering::Acquire));
        self.truncated.fetch_max(upto, Ordering::AcqRel);
        let mut dropped = 0;
        while let Some(first) = segments.first() {
            let seg_end = (first.seg_no + 1) * self.segment_size;
            if first.sealed && seg_end <= upto {
                segments.remove(0);
                dropped += 1;
            } else {
                break;
            }
        }
        if dropped > 0 {
            self.recycled.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        Ok(dropped)
    }

    fn seg_of(&self, offset: u64) -> u64 {
        offset / self.segment_size
    }
}

impl LogDevice for SegmentedDevice {
    fn append(&self, mut data: &[u8]) -> Result<()> {
        let mut at = self.len.load(Ordering::Relaxed);
        let mut segments = self.segments.lock();
        while !data.is_empty() {
            let seg_no = self.seg_of(at);
            // Open the segment if the append crossed a boundary.
            if segments.last().map(|s| s.seg_no) != Some(seg_no) {
                if let Some(last) = segments.last_mut() {
                    last.sealed = true;
                }
                segments.push(Segment {
                    seg_no,
                    device: self.factory.create(seg_no)?,
                    sealed: false,
                });
            }
            let seg = segments.last().expect("segment just ensured");
            let room = (seg_no + 1) * self.segment_size - at;
            let n = (room as usize).min(data.len());
            seg.device.append(&data[..n])?;
            data = &data[n..];
            at += n as u64;
        }
        drop(segments);
        self.len.store(at, Ordering::Release);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        // Only the open (last) segment can have unsynced bytes. Sync it
        // outside the segments lock: a latency-modeling segment parks in
        // `sync`, and readers must be able to take the lock meanwhile.
        let last = self.segments.lock().last().map(|s| Arc::clone(&s.device));
        if let Some(last) = last {
            last.sync()?;
        }
        Ok(())
    }

    fn read_at(&self, offset: u64, dst: &mut [u8]) -> Result<usize> {
        let end = self.len.load(Ordering::Acquire);
        if offset >= end {
            return Ok(0);
        }
        let want = dst.len().min((end - offset) as usize);
        let mut done = 0usize;
        let segments = self.segments.lock();
        while done < want {
            let at = offset + done as u64;
            let seg_no = self.seg_of(at);
            let seg = match segments.iter().find(|s| s.seg_no == seg_no) {
                Some(s) => s,
                None => break, // truncated away
            };
            let within = at - seg_no * self.segment_size;
            let room = (self.segment_size - within) as usize;
            let n = room.min(want - done);
            let got = seg.device.read_at(within, &mut dst[done..done + n])?;
            if got == 0 {
                break;
            }
            done += got;
            if got < n {
                break;
            }
        }
        Ok(done)
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        // Only meaningful when nothing has been truncated (crash images need
        // the full prefix); use `snapshot_from` otherwise.
        if self.truncated.load(Ordering::Relaxed) != 0 {
            return None;
        }
        let mut out = vec![0u8; self.len() as usize];
        match self.read_at(0, &mut out) {
            Ok(n) if n as u64 == self.len() => Some(out),
            _ => None,
        }
    }

    fn low_water(&self) -> Lsn {
        self.truncation_point()
    }

    fn truncate_before(&self, upto: Lsn) -> Result<usize> {
        SegmentedDevice::truncate_before(self, upto)
    }

    fn snapshot_from(&self) -> Option<(Lsn, Vec<u8>)> {
        let start = self.truncation_point();
        let want = self.len().saturating_sub(start.raw()) as usize;
        let mut out = vec![0u8; want];
        match self.read_at(start.raw(), &mut out) {
            Ok(n) if n == want => Some((start, out)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(seg: u64) -> SegmentedDevice {
        SegmentedDevice::new(Box::new(MemSegmentFactory), seg).unwrap()
    }

    #[test]
    fn append_within_one_segment() {
        let d = dev(4096);
        d.append(b"hello world").unwrap();
        d.sync().unwrap();
        assert_eq!(d.len(), 11);
        assert_eq!(d.live_segments(), 1);
        let mut out = vec![0u8; 11];
        assert_eq!(d.read_at(0, &mut out).unwrap(), 11);
        assert_eq!(&out, b"hello world");
    }

    #[test]
    fn append_straddles_segments_and_reads_stitch() {
        let d = dev(4096);
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        d.append(&data).unwrap();
        assert_eq!(d.len(), 10_000);
        assert_eq!(d.live_segments(), 3);
        let mut out = vec![0u8; 10_000];
        assert_eq!(d.read_at(0, &mut out).unwrap(), 10_000);
        assert_eq!(out, data);
        // Read spanning a boundary only.
        let mut mid = vec![0u8; 100];
        assert_eq!(d.read_at(4096 - 50, &mut mid).unwrap(), 100);
        assert_eq!(&mid[..], &data[4096 - 50..4096 + 50]);
    }

    #[test]
    fn many_small_appends_seal_segments() {
        let d = dev(4096);
        for i in 0..1000u32 {
            d.append(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(d.len(), 4000);
        assert_eq!(d.live_segments(), 1);
        d.append(&[0u8; 200]).unwrap();
        assert_eq!(d.live_segments(), 2);
    }

    #[test]
    fn truncation_recycles_sealed_segments_only() {
        let d = dev(4096);
        d.append(&vec![7u8; 12_000]).unwrap();
        assert_eq!(d.live_segments(), 3);
        // Truncate below 9000: segments 0 and 1 (ends 4096, 8192) qualify.
        assert_eq!(d.truncate_before(Lsn(9000)).unwrap(), 2);
        assert_eq!(d.live_segments(), 1);
        assert_eq!(d.recycled_segments(), 2);
        // The low-water mark is the requested (record-boundary) LSN, not
        // the coarser segment boundary.
        assert_eq!(d.truncation_point(), Lsn(9000));
        assert_eq!(d.low_water(), Lsn(9000));
        // Reads in recycled segments return nothing.
        let mut out = vec![0u8; 10];
        assert_eq!(d.read_at(0, &mut out).unwrap(), 0);
        // Reads above the mark still work.
        assert_eq!(d.read_at(9000, &mut out).unwrap(), 10);
        // The open segment never recycles, however far the mark advances.
        assert_eq!(d.truncate_before(Lsn::MAX).unwrap(), 0);
        assert_eq!(d.live_segments(), 1);
    }

    #[test]
    fn tail_snapshot_survives_truncation() {
        let d = dev(4096);
        let data: Vec<u8> = (0..12_000).map(|i| (i % 113) as u8).collect();
        d.append(&data).unwrap();
        d.truncate_before(Lsn(5000)).unwrap();
        assert!(
            d.snapshot().is_none(),
            "full snapshot gone after truncation"
        );
        let (start, bytes) = d.snapshot_from().unwrap();
        assert_eq!(start, Lsn(5000));
        assert_eq!(bytes, &data[5000..]);
        // Mark advance without a whole droppable segment still moves the
        // scan start.
        let d2 = dev(4096);
        d2.append(&vec![3u8; 3000]).unwrap();
        assert_eq!(d2.truncate_before(Lsn(1000)).unwrap(), 0);
        assert_eq!(d2.low_water(), Lsn(1000));
        let (start, bytes) = d2.snapshot_from().unwrap();
        assert_eq!((start, bytes.len()), (Lsn(1000), 2000));
    }

    #[test]
    fn log_manager_runs_over_segmented_device() {
        use crate::manager::LogManager;
        use crate::record::RecordKind;
        let seg = Arc::new(dev(1 << 16));
        let log = LogManager::builder()
            .device_instance(Arc::clone(&seg) as Arc<dyn LogDevice>)
            .build();
        for i in 0..2000u64 {
            log.insert(RecordKind::Update, i, &[i as u8; 100]);
        }
        log.flush_all().unwrap();
        assert!(seg.live_segments() > 2, "stream must span segments");
        let records = log.reader().read_all().unwrap();
        assert_eq!(records.len(), 2000);
        // Recycle old segments; the tail is still readable.
        let keep_from = seg.live_segments() as u64 / 2 * (1 << 16);
        seg.truncate_before(Lsn(keep_from)).unwrap();
        assert!(seg.recycled_segments() > 0);
    }

    #[test]
    fn snapshot_only_before_truncation() {
        let d = dev(4096);
        d.append(&vec![1u8; 5000]).unwrap();
        assert!(d.snapshot().is_some());
        d.truncate_before(Lsn(4096)).unwrap();
        assert!(d.snapshot().is_none());
    }
}
