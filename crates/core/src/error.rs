//! Error types for the log manager.

use std::fmt;

/// Errors surfaced by the log manager and the layers above it.
///
/// The hot insert path is infallible by construction (back-pressure blocks
/// instead of failing); errors arise at the edges — device I/O, recovery
/// scans, configuration validation — and, since the self-healing work, from
/// the flush daemon's retry machinery (a log that exhausted its retries is
/// *poisoned*: a terminal state every pending and future committer observes
/// as an `Err` instead of a hang) and from disk-pressure admission control
/// ([`AetherError::LogFull`] / [`AetherError::Busy`]).
#[derive(Debug)]
pub enum AetherError {
    /// Underlying device I/O failure.
    Io(std::io::Error),
    /// The device ran out of space (ENOSPC). Classified separately from
    /// [`AetherError::Io`] because the cure is different: truncation frees
    /// space, so the disk-pressure machinery retries after checkpointing
    /// rather than poisoning the log.
    DiskFull,
    /// A record failed validation during a recovery scan (torn write, bad
    /// checksum, or impossible length). Scans stop at the first such record:
    /// per §5.2 of the paper, recovery must stop at the first gap.
    Corrupt {
        /// LSN at which the corruption was detected.
        at: crate::Lsn,
        /// Human-readable description.
        reason: String,
    },
    /// Configuration rejected (e.g. non-power-of-two buffer size).
    Config(String),
    /// The log manager has been shut down.
    Shutdown,
    /// The log is poisoned: the flush daemon hit a permanent device failure
    /// (or exhausted its bounded retries on a transient one) and halted.
    /// Terminal — all pending committers were released with this error and
    /// every future durability wait fails fast with it.
    Poisoned {
        /// What killed the flush daemon.
        reason: String,
    },
    /// Admission control: the retained log footprint crossed the hard
    /// watermark and new transactions are being shed until
    /// checkpoint+truncate frees space. Retryable.
    LogFull {
        /// Bytes of log currently retained.
        retained: u64,
        /// The configured hard watermark.
        limit: u64,
    },
    /// Transient overload pushback (retryable after backoff).
    Busy(String),
}

/// Historical name for [`AetherError`], kept so existing `LogError` call
/// sites (and the `LogError::Io(..)` pattern matches behind them) keep
/// compiling unchanged.
pub type LogError = AetherError;

impl AetherError {
    /// Whether a bounded retry with backoff is a sensible response.
    ///
    /// Transient: interrupted/timed-out I/O (the classes a flaky device or
    /// controller reset produces), [`AetherError::Busy`] and
    /// [`AetherError::LogFull`] (pressure that truncation relieves).
    /// Everything else — corruption, configuration, shutdown, a poisoned
    /// log, and unclassified I/O errors like EIO — is permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            AetherError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            ),
            AetherError::Busy(_) | AetherError::LogFull { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for AetherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AetherError::Io(e) => write!(f, "log device I/O error: {e}"),
            AetherError::DiskFull => write!(f, "log device out of space (ENOSPC)"),
            AetherError::Corrupt { at, reason } => {
                write!(f, "corrupt log record at LSN {at}: {reason}")
            }
            AetherError::Config(msg) => write!(f, "invalid log configuration: {msg}"),
            AetherError::Shutdown => write!(f, "log manager is shut down"),
            AetherError::Poisoned { reason } => {
                write!(f, "log is poisoned (flush daemon halted): {reason}")
            }
            AetherError::LogFull { retained, limit } => write!(
                f,
                "log full: {retained} bytes retained exceeds hard watermark {limit}"
            ),
            AetherError::Busy(msg) => write!(f, "busy: {msg}"),
        }
    }
}

impl std::error::Error for AetherError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AetherError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AetherError {
    fn from(e: std::io::Error) -> Self {
        // ENOSPC gets its own variant: disk pressure is curable (truncate),
        // unlike a generic I/O failure. Matched by raw errno — stable across
        // toolchains, unlike `ErrorKind::StorageFull`.
        if e.raw_os_error() == Some(28) {
            return AetherError::DiskFull;
        }
        AetherError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AetherError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lsn;

    #[test]
    fn display_variants() {
        let e = LogError::Corrupt {
            at: Lsn(64),
            reason: "bad checksum".into(),
        };
        assert!(e.to_string().contains("64"));
        assert!(LogError::Shutdown.to_string().contains("shut down"));
        assert!(LogError::Config("x".into()).to_string().contains("x"));
        let io: LogError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(AetherError::DiskFull.to_string().contains("ENOSPC"));
        assert!(AetherError::Poisoned {
            reason: "sync failed".into()
        }
        .to_string()
        .contains("sync failed"));
        assert!(AetherError::LogFull {
            retained: 100,
            limit: 50
        }
        .to_string()
        .contains("100"));
        assert!(AetherError::Busy("ckpt".into())
            .to_string()
            .contains("ckpt"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let io: LogError = std::io::Error::other("boom").into();
        assert!(io.source().is_some());
        assert!(LogError::Shutdown.source().is_none());
    }

    #[test]
    fn enospc_classifies_as_disk_full() {
        let e: AetherError = std::io::Error::from_raw_os_error(28).into();
        assert!(matches!(e, AetherError::DiskFull));
        // EIO stays a plain (permanent) I/O error.
        let e: AetherError = std::io::Error::from_raw_os_error(5).into();
        assert!(matches!(e, AetherError::Io(_)));
    }

    #[test]
    fn transience_classification() {
        let transient: AetherError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "blip").into();
        assert!(transient.is_transient());
        let timed: AetherError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(timed.is_transient());
        assert!(AetherError::Busy("x".into()).is_transient());
        assert!(AetherError::LogFull {
            retained: 1,
            limit: 1
        }
        .is_transient());
        assert!(!AetherError::DiskFull.is_transient());
        assert!(!AetherError::Shutdown.is_transient());
        assert!(!AetherError::Poisoned { reason: "x".into() }.is_transient());
        let eio: AetherError = std::io::Error::from_raw_os_error(5).into();
        assert!(!eio.is_transient());
    }
}
