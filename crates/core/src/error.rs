//! Error types for the log manager.

use std::fmt;

/// Errors surfaced by the log manager.
///
/// The hot insert path is infallible by construction (back-pressure blocks
/// instead of failing); errors arise only at the edges: device I/O, recovery
/// scans, and configuration validation.
#[derive(Debug)]
pub enum LogError {
    /// Underlying device I/O failure.
    Io(std::io::Error),
    /// A record failed validation during a recovery scan (torn write, bad
    /// checksum, or impossible length). Scans stop at the first such record:
    /// per §5.2 of the paper, recovery must stop at the first gap.
    Corrupt {
        /// LSN at which the corruption was detected.
        at: crate::Lsn,
        /// Human-readable description.
        reason: String,
    },
    /// Configuration rejected (e.g. non-power-of-two buffer size).
    Config(String),
    /// The log manager has been shut down.
    Shutdown,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log device I/O error: {e}"),
            LogError::Corrupt { at, reason } => {
                write!(f, "corrupt log record at LSN {at}: {reason}")
            }
            LogError::Config(msg) => write!(f, "invalid log configuration: {msg}"),
            LogError::Shutdown => write!(f, "log manager is shut down"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LogError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lsn;

    #[test]
    fn display_variants() {
        let e = LogError::Corrupt {
            at: Lsn(64),
            reason: "bad checksum".into(),
        };
        assert!(e.to_string().contains("64"));
        assert!(LogError::Shutdown.to_string().contains("shut down"));
        assert!(LogError::Config("x".into()).to_string().contains("x"));
        let io: LogError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let io: LogError = std::io::Error::other("boom").into();
        assert!(io.source().is_some());
        assert!(LogError::Shutdown.source().is_none());
    }
}
