//! The five log-buffer insertion algorithms of the paper (§5, §A.1, §A.3).
//!
//! Every variant shares the same [`BufferCore`] (ring + watermarks + stats)
//! and differs only in *how* the three insert phases are synchronized:
//!
//! | Variant | Acquire | Fill | Release |
//! |---|---|---|---|
//! | [`BaselineBuffer`] | global mutex | under mutex | under mutex |
//! | [`ConsolidationBuffer`] (C) | mutex, one leader per group | parallel within group, mutex held | last of group, releases mutex |
//! | [`DecoupledBuffer`] (D) | mutex (LSN gen only) | parallel | in LSN order |
//! | [`HybridBuffer`] (CD) | mutex, one leader per group | parallel | groups in LSN order |
//! | [`DelegatedBuffer`] (CDME) | as CD | parallel | delegated via MCS queue |
//!
//! Every variant exposes the same **reservation protocol**
//! ([`LogBuffer::reserve`] → [`LogSlot`]): acquire hands the caller an
//! exclusively owned byte range of the ring with the header already encoded
//! in place, the caller serializes its payload straight into the ring (the
//! frame CRC streams along with the bytes), and releasing the slot runs the
//! variant's release stage. Consolidation-group members compute disjoint
//! fill offsets at join time, so they fill their slots in place with no
//! extra coordination — exactly as the copy-based fill did.
//!
//! The insert critical path never allocates and never blocks on I/O;
//! back-pressure (ring full) is the only wait, and it resolves as the flush
//! daemon reclaims space. A record costs exactly one pass over its payload:
//! no intermediate encode buffer on the way in (see [`EncodePayload`]) and
//! no scratch copy on the way out (the flush daemon drains ring slices via
//! [`BufferCore::released_slices`]).

mod baseline;
mod consolidation;
mod decoupled;
mod delegated;
mod hybrid;

pub use baseline::BaselineBuffer;
pub use consolidation::ConsolidationBuffer;
pub use decoupled::DecoupledBuffer;
pub use delegated::DelegatedBuffer;
pub use hybrid::HybridBuffer;

use crate::carray::Slot;
use crate::config::LogConfig;
use crate::lsn::{AtomicLsn, Lsn};
use crate::mcs::{ReleaseHandle, ReleaseQueue};
use crate::record::{
    crc32_finish, crc32_update, encode_frame_header, on_log_size, RecordHeader, RecordKind,
    CHECKSUM_OFFSET, CRC32_INIT, HEADER_SIZE, MAX_PAYLOAD,
};
use crate::ring::Ring;
use crate::runtime::{self, RtCondvar};
use crate::stats::BufferStats;
use crate::telemetry::{Stage, Telemetry};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which insertion algorithm a [`crate::manager::LogManager`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// Algorithm 1: one mutex across acquire/fill/release.
    Baseline,
    /// Algorithm 2: consolidation-array backoff (C).
    Consolidation,
    /// Algorithm 3: decoupled buffer fill (D).
    Decoupled,
    /// §5.3: consolidation + decoupling (CD).
    Hybrid,
    /// §A.3: CD + delegated buffer release over an MCS queue (CDME).
    Delegated,
}

impl BufferKind {
    /// All variants, in the order the paper's figures present them.
    pub const ALL: [BufferKind; 5] = [
        BufferKind::Baseline,
        BufferKind::Consolidation,
        BufferKind::Decoupled,
        BufferKind::Hybrid,
        BufferKind::Delegated,
    ];

    /// Short label used in experiment output ("B", "C", "D", "CD", "CDME").
    pub fn label(&self) -> &'static str {
        match self {
            BufferKind::Baseline => "B",
            BufferKind::Consolidation => "C",
            BufferKind::Decoupled => "D",
            BufferKind::Hybrid => "CD",
            BufferKind::Delegated => "CDME",
        }
    }

    /// Construct a buffer of this kind over `core`.
    pub fn build(&self, core: Arc<BufferCore>, config: &LogConfig) -> Arc<dyn LogBuffer> {
        match self {
            BufferKind::Baseline => Arc::new(BaselineBuffer::new(core)),
            BufferKind::Consolidation => Arc::new(ConsolidationBuffer::new(core, config)),
            BufferKind::Decoupled => Arc::new(DecoupledBuffer::new(core)),
            BufferKind::Hybrid => Arc::new(HybridBuffer::new(core, config)),
            BufferKind::Delegated => Arc::new(DelegatedBuffer::new(core, config)),
        }
    }
}

impl std::fmt::Display for BufferKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A log buffer: the contract every variant implements.
///
/// The primitive operation is [`LogBuffer::reserve`]: it runs the variant's
/// acquire protocol (lock / consolidation / LSN generation / back-pressure)
/// and hands back a [`LogSlot`] — an exclusively owned byte range of the
/// ring with the record header already serialized in place. The caller
/// writes its payload **directly into the ring** through the slot (the ring
/// handles the wrap split; the frame CRC is computed as the bytes stream
/// by) and then [`LogSlot::release`]s, which patches the checksum in place
/// and runs the variant's ordinary release path. No intermediate buffer, no
/// allocation, exactly one copy of the payload — the memcpy the paper says
/// an insert should cost (§5).
///
/// [`LogBuffer::insert`] is a thin compatibility wrapper over `reserve` for
/// callers that already hold an encoded payload slice.
pub trait LogBuffer: Send + Sync {
    /// Reserve ring space for one record of `payload_len` payload bytes and
    /// return the slot to fill. Blocks only for ring back-pressure (and, by
    /// design, contention); never for device I/O.
    ///
    /// The record is published when the returned slot is released (or
    /// dropped); until then, depending on the variant, later inserts may be
    /// blocked behind it — fill promptly.
    fn reserve(&self, kind: RecordKind, txn: u64, prev: Lsn, payload_len: usize) -> LogSlot<'_>;

    /// Insert one pre-encoded record and return its start LSN — the legacy
    /// byte-slice path, now a wrapper over [`LogBuffer::reserve`].
    fn insert(&self, kind: RecordKind, txn: u64, prev: Lsn, payload: &[u8]) -> Lsn {
        self.core().stats.record_wrapper();
        let mut slot = self.reserve(kind, txn, prev, payload.len());
        slot.write(payload);
        slot.release()
    }

    /// Shared core (watermarks, stats, ring geometry).
    fn core(&self) -> &BufferCore;

    /// Variant label for reporting.
    fn kind(&self) -> BufferKind;
}

/// Reject oversized payloads **before** any lock is taken or LSN space is
/// reserved. Every variant's `reserve`/`reserve_backoff` calls this on
/// entry: panicking later (insert mutex held, reservation issued, slot not
/// yet constructed) would leave the lock locked and the hole unreleased,
/// wedging every subsequent insert.
#[inline]
pub(crate) fn check_payload_len(payload_len: usize) {
    assert!(
        payload_len <= MAX_PAYLOAD,
        "payload of {payload_len} bytes exceeds MAX_PAYLOAD"
    );
}

/// A payload that can serialize itself straight into a reserved log slot.
///
/// Implementors promise `encode_into` writes exactly `encoded_len()` bytes.
/// This is how the storage layer's WAL payloads (update/CLR/checkpoint)
/// reach the log with zero intermediate `Vec`s: the encoding happens inside
/// the ring, not into a temporary that is then copied.
pub trait EncodePayload {
    /// Exact number of bytes `encode_into` will write.
    fn encoded_len(&self) -> usize;

    /// Serialize into the slot's payload region.
    fn encode_into(&self, w: &mut SlotWriter<'_>);
}

impl EncodePayload for [u8] {
    fn encoded_len(&self) -> usize {
        self.len()
    }
    fn encode_into(&self, w: &mut SlotWriter<'_>) {
        w.put_slice(self);
    }
}

impl<const N: usize> EncodePayload for [u8; N] {
    fn encoded_len(&self) -> usize {
        N
    }
    fn encode_into(&self, w: &mut SlotWriter<'_>) {
        w.put_slice(self);
    }
}

/// Streaming writer over a reserved payload region of the ring.
///
/// Bytes go straight to their final location (`write_at` splits the copy in
/// at most two segments on ring wrap) while the frame CRC accumulates, so a
/// record costs exactly one pass over its payload.
pub struct SlotWriter<'a> {
    ring: &'a Ring,
    /// Stream offset of payload byte 0.
    base: u64,
    /// Payload capacity in bytes.
    len: u32,
    written: u32,
    /// Running (pre-finalization) frame CRC: header already folded in.
    crc: u32,
}

impl std::fmt::Debug for SlotWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotWriter")
            .field("len", &self.len)
            .field("written", &self.written)
            .finish()
    }
}

impl SlotWriter<'_> {
    /// Payload capacity of the reservation.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len as usize
    }

    /// Bytes written so far.
    #[inline]
    pub fn written(&self) -> usize {
        self.written as usize
    }

    /// Bytes still unwritten.
    #[inline]
    pub fn remaining(&self) -> usize {
        (self.len - self.written) as usize
    }

    /// Append `bytes` to the payload.
    ///
    /// # Panics
    /// Panics if the write would overflow the reservation.
    #[inline]
    pub fn put_slice(&mut self, bytes: &[u8]) {
        assert!(
            bytes.len() <= self.remaining(),
            "slot overflow: {} bytes into a reservation with {} remaining",
            bytes.len(),
            self.remaining()
        );
        // SAFETY: the slot owns `[base, base + len)` exclusively (LSN space
        // is handed out exactly once) and `written` never exceeds `len`.
        unsafe { self.ring.write_at(self.base + self.written as u64, bytes) };
        self.crc = crc32_update(self.crc, bytes);
        self.written += bytes.len() as u32;
    }

    /// Append one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// How a [`LogSlot`] publishes its record — the release half of each
/// variant's protocol, run by [`LogSlot::release`]. Consolidation-group
/// members share one entry: whichever member finishes last performs the
/// group's release exactly as the pre-reservation code did.
#[derive(Clone, Copy)]
pub(crate) enum SlotFinish<'a> {
    /// Advance the released watermark past this record, then drop the
    /// insert mutex (Baseline always; C's direct path).
    LockedDirect { lock: &'a InsertLock },
    /// Release in LSN order (D; CD's direct path).
    InOrder,
    /// Release through the delegated-release queue (CDME's direct path).
    Queue {
        queue: &'a ReleaseQueue,
        handle: ReleaseHandle,
    },
    /// C group member: last one out publishes the group region, unlocks the
    /// mutex the leader acquired, and recycles the slot.
    GroupLocked {
        slot: &'a Slot,
        lock: &'a InsertLock,
        base: Lsn,
        group: u64,
    },
    /// CD group member: last one out releases the group region in LSN order.
    GroupInOrder {
        slot: &'a Slot,
        base: Lsn,
        group: u64,
    },
    /// CDME group member: last one out releases the group's queue node.
    GroupQueue {
        slot: &'a Slot,
        queue: &'a ReleaseQueue,
        extra: u64,
    },
}

/// An exclusively owned, header-initialized record reservation in the ring.
///
/// Produced by [`LogBuffer::reserve`]; the caller streams its payload in via
/// the embedded [`SlotWriter`] and calls [`LogSlot::release`]. Dropping a
/// slot without releasing it zero-fills the unwritten payload tail and
/// releases anyway — the release protocols are chained (in-order watermarks,
/// group counts, cross-thread mutex handoff), so an abandoned reservation
/// would wedge every later insert.
pub struct LogSlot<'a> {
    core: &'a BufferCore,
    writer: SlotWriter<'a>,
    start: Lsn,
    total_len: u32,
    timer: Option<u64>,
    /// Fill-start timestamp when telemetry is enabled, else 0.
    t_fill: u64,
    finish: SlotFinish<'a>,
    done: bool,
}

impl std::fmt::Debug for LogSlot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogSlot")
            .field("start", &self.start)
            .field("total_len", &self.total_len)
            .field("written", &self.writer.written)
            .finish()
    }
}

impl<'a> LogSlot<'a> {
    /// Start LSN of the record.
    #[inline]
    pub fn lsn(&self) -> Lsn {
        self.start
    }

    /// LSN one past the record (start + aligned on-log size) — the
    /// durability target for commit waits on this record.
    #[inline]
    pub fn end_lsn(&self) -> Lsn {
        self.start.advance(self.total_len as u64)
    }

    /// The payload writer.
    #[inline]
    pub fn writer(&mut self) -> &mut SlotWriter<'a> {
        &mut self.writer
    }

    /// Append payload bytes (shorthand for `writer().put_slice`).
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        self.writer.put_slice(bytes);
    }

    /// Serialize `payload` into the slot. The payload's `encoded_len` must
    /// match the reserved length (callers reserve with that same value).
    #[inline]
    pub fn fill<P: EncodePayload + ?Sized>(&mut self, payload: &P) {
        payload.encode_into(&mut self.writer);
    }

    /// Finalize and publish the record: patch the frame CRC into the header
    /// in place, account the insert, and run the variant's release path.
    /// Returns the record's start LSN.
    ///
    /// The payload must be completely written; a debug assertion enforces it
    /// (release builds treat a short release like a drop: the record is
    /// neutralized to an all-zero [`RecordKind::Filler`]).
    pub fn release(mut self) -> Lsn {
        debug_assert_eq!(
            self.writer.written, self.writer.len,
            "released a slot with an incomplete payload"
        );
        let lsn = self.start;
        self.finalize();
        lsn
    }

    fn finalize(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        // Abandoned (or short-released) slot — e.g. a serializer panicked
        // mid-fill. The release chain must still run (successors are queued
        // behind this reservation), but the half-written record must NOT
        // reach recovery or a replica under its original kind: a CRC-valid
        // Update/Clr frame with a garbage payload would wedge replay
        // forever. Neutralize it: rewrite the header in place as an
        // all-zero-payload Filler (which every log consumer skips) and
        // restart the frame CRC accordingly.
        if self.writer.written < self.writer.len {
            let header =
                encode_frame_header(RecordKind::Filler, 0, Lsn::ZERO, self.writer.len as usize);
            // SAFETY: the header and payload lie inside this reservation.
            unsafe { self.core.ring.write_at(self.start.raw(), &header) };
            self.writer.crc = crc32_update(CRC32_INIT, &header);
            self.writer.written = 0;
            while self.writer.remaining() > 0 {
                const ZEROS: [u8; 64] = [0u8; 64];
                let n = self.writer.remaining().min(ZEROS.len());
                self.writer.put_slice(&ZEROS[..n]);
            }
        }
        let crc = crc32_finish(self.writer.crc);
        // SAFETY: the checksum field lies inside this slot's reservation.
        unsafe {
            self.core.ring.write_at(
                self.start.raw() + CHECKSUM_OFFSET as u64,
                &crc.to_le_bytes(),
            );
        }
        self.core.stats.phase_fill(self.timer.take());
        self.core.stats.record_insert(self.total_len as u64);
        let t_rel = if self.core.telemetry.on() {
            runtime::monotonic_ns()
        } else {
            0
        };
        let end = self.end_lsn();
        match self.finish {
            SlotFinish::LockedDirect { lock } => {
                self.core.advance_released(end);
                lock.unlock();
            }
            SlotFinish::InOrder => self.core.release_in_order(self.start, end),
            SlotFinish::Queue { queue, handle } => queue.release(handle, self.core),
            SlotFinish::GroupLocked {
                slot,
                lock,
                base,
                group,
            } => {
                if slot.release_member(self.total_len as u64) {
                    self.core.advance_released(base.advance(group));
                    lock.unlock();
                    slot.free();
                }
            }
            SlotFinish::GroupInOrder { slot, base, group } => {
                if slot.release_member(self.total_len as u64) {
                    self.core.release_in_order(base, base.advance(group));
                    slot.free();
                }
            }
            SlotFinish::GroupQueue { slot, queue, extra } => {
                if slot.release_member(self.total_len as u64) {
                    queue.release(ReleaseHandle::unpack(extra), self.core);
                    slot.free();
                }
            }
        }
        if t_rel != 0 {
            let done = runtime::monotonic_ns();
            let tel = &self.core.telemetry;
            if self.t_fill != 0 {
                tel.record(tel.ids().log_insert_ns, done.saturating_sub(self.t_fill));
                tel.span(Stage::Fill, self.start, self.t_fill, t_rel);
            }
            tel.span(Stage::Release, self.start, t_rel, done);
        }
    }
}

impl Drop for LogSlot<'_> {
    fn drop(&mut self) {
        self.finalize();
    }
}

/// Progressive wait backoff shared by every busy-wait in the crate:
/// brief spinning (the common case on multicore — the paper's target), then
/// yielding, then micro-sleeps. The sleep stage matters on oversubscribed or
/// few-core hosts, where a predecessor mid-copy may be descheduled and pure
/// yield loops would burn the whole time slice churning the run queue.
#[derive(Debug, Default)]
pub struct WaitBackoff {
    spins: u32,
}

impl WaitBackoff {
    /// Fresh backoff state.
    #[inline]
    pub fn new() -> Self {
        WaitBackoff { spins: 0 }
    }

    /// Wait one step, escalating: spin (<32), yield (<256), then sleep 20µs.
    #[inline]
    pub fn wait(&mut self) {
        self.spins += 1;
        if self.spins < 32 {
            std::hint::spin_loop();
        } else if self.spins < 256 {
            runtime::yield_now();
        } else {
            runtime::sleep(std::time::Duration::from_micros(20));
        }
    }
}

/// A test-and-test-and-set lock with bounded spinning and yielding.
///
/// The log insert critical section is short (§5: "LSN generation is short and
/// predictable"), so a spin lock is appropriate. Unlike `parking_lot::Mutex`,
/// this lock may be *released by a different thread* than the one that
/// acquired it — exactly what the consolidation variant needs, where the last
/// member of a group to finish its fill releases the lock the group leader
/// acquired (Algorithm 2, line 20).
#[derive(Debug, Default)]
pub struct InsertLock {
    locked: AtomicBool,
}

impl InsertLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        InsertLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Non-blocking attempt (Algorithm 2 line 2 starts with one of these).
    #[inline]
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Acquire, with progressive backoff (spin → yield → micro-sleep).
    #[inline]
    pub fn lock(&self) {
        let mut backoff = WaitBackoff::new();
        loop {
            if self.try_lock() {
                return;
            }
            backoff.wait();
        }
    }

    /// Release. May be called from any thread, provided the lock is held and
    /// the caller has been handed responsibility for it.
    #[inline]
    pub fn unlock(&self) {
        debug_assert!(self.locked.load(Ordering::Relaxed), "unlock of free lock");
        self.locked.store(false, Ordering::Release);
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

/// The LSN allocator: `next` is protected by the variant's [`InsertLock`].
///
/// Wrapped in `UnsafeCell` because the lock discipline (not the type system)
/// guarantees exclusive access; see the safety comments at each use.
#[derive(Debug)]
pub struct LsnAlloc {
    next: UnsafeCell<u64>,
}

// SAFETY: `next` is only dereferenced while the owning variant's InsertLock
// is held, which serializes access.
unsafe impl Sync for LsnAlloc {}

impl LsnAlloc {
    /// Start allocating at `start`.
    pub fn new(start: Lsn) -> Self {
        LsnAlloc {
            next: UnsafeCell::new(start.raw()),
        }
    }

    /// Reserve `len` bytes; returns the start LSN of the reservation.
    ///
    /// # Safety
    /// Caller must hold the associated [`InsertLock`].
    #[inline]
    pub unsafe fn reserve(&self, len: u64) -> Lsn {
        // SAFETY: exclusive access per the function contract.
        let next = unsafe { &mut *self.next.get() };
        let start = *next;
        *next = start + len;
        Lsn(start)
    }

    /// Current frontier.
    ///
    /// # Safety
    /// Caller must hold the associated [`InsertLock`].
    #[inline]
    pub unsafe fn frontier(&self) -> Lsn {
        // SAFETY: exclusive access per the function contract.
        Lsn(unsafe { *self.next.get() })
    }
}

/// State shared by every buffer variant: the ring, the release/durability
/// watermarks, back-pressure plumbing and statistics.
pub struct BufferCore {
    ring: Ring,
    /// Contiguous prefix of the log stream whose fills are complete; the
    /// flush daemon may copy `[durable, released)` to the device.
    released: AtomicLsn,
    /// Prefix that has reached the device; ring bytes below this may be
    /// overwritten (reclaimed).
    durable: AtomicLsn,
    /// When true there is no flush daemon: releasing also reclaims
    /// (microbenchmark mode, Null device).
    auto_reclaim: AtomicBool,
    /// Inserters blocked on ring space.
    space_waiters: AtomicUsize,
    space_mutex: Mutex<()>,
    space_cv: RtCondvar,
    /// Threads blocked in [`BufferCore::wait_durable`]; the durable-advance
    /// path only takes the watch mutex when this is non-zero, keeping the
    /// auto-reclaim hot path notification-free.
    watch_waiters: AtomicUsize,
    watch_mutex: Mutex<()>,
    watch_cv: RtCondvar,
    /// Counters and phase timers.
    pub stats: BufferStats,
    /// Per-log telemetry registry, shared (via [`BufferCore::telemetry`])
    /// with the flush daemon, commit gate, storage and replication layers.
    telemetry: Arc<Telemetry>,
}

impl std::fmt::Debug for BufferCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferCore")
            .field("capacity", &self.ring.capacity())
            .field("released", &self.released.load_relaxed())
            .field("durable", &self.durable.load_relaxed())
            .finish()
    }
}

impl BufferCore {
    /// Build a core with a ring of `config.buffer_size` bytes.
    pub fn new(config: &LogConfig) -> Arc<BufferCore> {
        Self::with_start(config, Lsn::ZERO)
    }

    /// Build a core whose LSN space begins at `start` — used after recovery,
    /// so new records append to the device at the right offsets.
    pub fn with_start(config: &LogConfig, start: Lsn) -> Arc<BufferCore> {
        config.validate().map_err(crate::LogError::Config).unwrap();
        Arc::new(BufferCore {
            ring: Ring::new(config.buffer_size),
            released: AtomicLsn::new(start),
            durable: AtomicLsn::new(start),
            auto_reclaim: AtomicBool::new(false),
            space_waiters: AtomicUsize::new(0),
            space_mutex: Mutex::new(()),
            space_cv: RtCondvar::new(),
            watch_waiters: AtomicUsize::new(0),
            watch_mutex: Mutex::new(()),
            watch_cv: RtCondvar::new(),
            stats: BufferStats::new(),
            telemetry: Arc::new(Telemetry::new(&config.telemetry)),
        })
    }

    /// The per-log telemetry registry. One registry serves every layer that
    /// touches this log (flush daemon, commit gate, storage, replication),
    /// so a single snapshot describes the whole pipeline.
    #[inline]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Stash "reserve started now" for the calling thread iff telemetry is
    /// enabled. Buffer variants call this on reserve entry, before the LSN
    /// is known; [`BufferCore::begin_fill`] consumes the mark once it is.
    #[inline]
    pub(crate) fn note_reserve_start(&self) {
        if self.telemetry.on() {
            crate::telemetry::mark_reserve_start();
        }
    }

    /// Ring capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.ring.capacity()
    }

    /// The ring itself (flush daemon reads released bytes out of it).
    #[inline]
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Enable auto-reclaim: releasing immediately reclaims ring space (no
    /// flush daemon; used with discarding devices).
    pub fn set_auto_reclaim(&self, on: bool) {
        self.auto_reclaim.store(on, Ordering::Relaxed);
    }

    /// Whether auto-reclaim is on.
    pub fn auto_reclaim(&self) -> bool {
        self.auto_reclaim.load(Ordering::Relaxed)
    }

    /// Released watermark (acquire).
    #[inline]
    pub fn released_lsn(&self) -> Lsn {
        self.released.load()
    }

    /// Durable watermark (acquire).
    #[inline]
    pub fn durable_lsn(&self) -> Lsn {
        self.durable.load()
    }

    /// Block until the reservation ending at `end` fits in the ring, i.e.
    /// `end - durable <= capacity`. Called with the insert lock held; the
    /// flush daemon advances `durable` independently so this cannot deadlock.
    #[inline]
    pub fn wait_for_space(&self, end: Lsn) {
        if end.raw().saturating_sub(self.durable.load_relaxed().raw()) <= self.capacity() {
            return;
        }
        self.wait_for_space_slow(end);
    }

    #[cold]
    fn wait_for_space_slow(&self, end: Lsn) {
        let mut spins = 0u32;
        loop {
            if end.raw() - self.durable.load().raw() <= self.capacity() {
                return;
            }
            spins += 1;
            if spins < 100 {
                runtime::yield_now();
            } else {
                self.space_waiters.fetch_add(1, Ordering::SeqCst);
                let g = self.space_mutex.lock();
                if end.raw() - self.durable.load().raw() > self.capacity() {
                    let (g, _) = self.space_cv.wait_for(
                        &self.space_mutex,
                        g,
                        std::time::Duration::from_micros(200),
                    );
                    drop(g);
                } else {
                    drop(g);
                }
                self.space_waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Advance the released watermark to `upto`. Caller must guarantee that
    /// every byte below `upto` has been filled and that no other thread can
    /// be advancing `released` concurrently (serialized by lock or by the
    /// in-order release protocol).
    #[inline]
    pub fn advance_released(&self, upto: Lsn) {
        self.released.publish(upto);
        if self.auto_reclaim() {
            self.advance_durable(upto);
        }
    }

    /// Number of inserters currently blocked waiting for ring space; the
    /// flush daemon treats a non-zero value as a flush trigger so
    /// back-pressure always resolves.
    pub fn space_waiters(&self) -> usize {
        self.space_waiters.load(Ordering::SeqCst)
    }

    /// Advance the durable watermark (flush daemon, or auto-reclaim).
    #[inline]
    pub fn advance_durable(&self, upto: Lsn) {
        self.durable.fetch_max(upto);
        if self.space_waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.space_mutex.lock();
            self.space_cv.notify_all();
        }
        if self.watch_waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.watch_mutex.lock();
            self.watch_cv.notify_all();
        }
    }

    /// Block until the durable watermark reaches `lsn`; returns the current
    /// durable LSN. The notification-based replacement for spin/sleep polls
    /// on [`BufferCore::durable_lsn`] — the log shipper and tests wait here.
    pub fn wait_durable(&self, lsn: Lsn) -> Lsn {
        loop {
            let d = self.durable.load();
            if d >= lsn {
                return d;
            }
            self.watch_waiters.fetch_add(1, Ordering::SeqCst);
            let g = self.watch_mutex.lock();
            // Re-check under the lock: an advance between the load above and
            // the waiter registration must not be missed.
            if self.durable.load() < lsn {
                let g = self.watch_cv.wait(&self.watch_mutex, g);
                drop(g);
            } else {
                drop(g);
            }
            self.watch_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Like [`BufferCore::wait_durable`] but gives up after `timeout`;
    /// returns the durable LSN at wake-up (which may be below `lsn`).
    pub fn wait_durable_timeout(&self, lsn: Lsn, timeout: std::time::Duration) -> Lsn {
        let deadline = runtime::monotonic_ns().saturating_add(timeout.as_nanos() as u64);
        loop {
            let d = self.durable.load();
            if d >= lsn {
                return d;
            }
            let now = runtime::monotonic_ns();
            if now >= deadline {
                return d;
            }
            self.watch_waiters.fetch_add(1, Ordering::SeqCst);
            let g = self.watch_mutex.lock();
            if self.durable.load() < lsn {
                let (g, _) = self.watch_cv.wait_for(
                    &self.watch_mutex,
                    g,
                    std::time::Duration::from_nanos(deadline - now),
                );
                drop(g);
            } else {
                drop(g);
            }
            self.watch_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Spin until `released == start` (the in-order release protocol of
    /// Algorithm 3, line 9: "wait my turn"), then publish `end`.
    #[inline]
    pub fn release_in_order(&self, start: Lsn, end: Lsn) {
        let t = self.stats.phase_start();
        let mut backoff = WaitBackoff::new();
        while self.released.load() != start {
            backoff.wait();
        }
        self.stats.phase_release(t);
        self.advance_released(end);
    }

    /// Open a [`LogSlot`] over the reservation starting at `start`: encode
    /// the header straight into the ring (checksum zeroed, single pass),
    /// zero the alignment pad, and seed the streaming frame CRC. The caller
    /// (a buffer variant's `reserve`) must own the reservation
    /// `[start, start + on_log_size(payload_len))` and supplies the release
    /// action the slot will run when it is released.
    pub(crate) fn begin_fill<'a>(
        &'a self,
        start: Lsn,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
        finish: SlotFinish<'a>,
    ) -> LogSlot<'a> {
        // Size validation happened in check_payload_len before any lock or
        // LSN space was taken; panicking here — with the insert mutex held
        // and the reservation issued — would wedge the log.
        debug_assert!(payload_len <= MAX_PAYLOAD);
        let timer = self.stats.phase_start();
        // The LSN is known here for the first time: close the Reserve span
        // (entry timestamp parked thread-locally by `note_reserve_start`)
        // and pin the fill start for the Fill/Release spans in `finalize`.
        let t_fill = if self.telemetry.on() {
            let now = timer.unwrap_or_else(runtime::monotonic_ns);
            let t0 = crate::telemetry::take_reserve_mark();
            if t0 != 0 {
                self.telemetry.span(Stage::Reserve, start, t0, now);
            }
            now
        } else {
            0
        };
        let total = on_log_size(payload_len);
        let header = encode_frame_header(kind, txn, prev, payload_len);
        // SAFETY: the caller owns this reservation (LSN space is handed out
        // exactly once), so the range is exclusive; see module docs.
        unsafe {
            self.ring.write_at(start.raw(), &header);
            let pad = total - HEADER_SIZE - payload_len;
            if pad > 0 {
                // Zero the pad so the stream is deterministic (no stale
                // ring bytes from a previous lap leak to the device).
                self.ring.write_at(
                    start.raw() + (total - pad) as u64,
                    &[0u8; crate::record::RECORD_ALIGN][..pad],
                );
            }
        }
        LogSlot {
            core: self,
            writer: SlotWriter {
                ring: &self.ring,
                base: start.raw() + HEADER_SIZE as u64,
                len: payload_len as u32,
                written: 0,
                crc: crc32_update(CRC32_INIT, &header),
            },
            start,
            total_len: total as u32,
            timer,
            t_fill,
            finish,
            done: false,
        }
    }

    /// Copy an encoded record (header + payload) into the ring at `at`.
    ///
    /// Caller must own the reservation `[at, at + header.total_len)`.
    /// Retained for tests and for callers that materialize a
    /// [`RecordHeader`] themselves; the insert hot path goes through
    /// [`LogBuffer::reserve`] instead, which serializes the header once,
    /// in place, and never touches a `RecordHeader`.
    #[inline]
    pub fn fill_record(&self, at: Lsn, header: &RecordHeader, payload: &[u8]) {
        let t = self.stats.phase_start();
        let encoded = header.encode();
        let total = header.total_len as usize;
        let pad = total - HEADER_SIZE - payload.len();
        // SAFETY: the caller owns this reservation (LSN space is handed out
        // exactly once), so the range is exclusive; see module docs.
        unsafe {
            self.ring.write_at(at.raw(), &encoded);
            self.ring.write_at(at.raw() + HEADER_SIZE as u64, payload);
            if pad > 0 {
                self.ring.write_at(
                    at.raw() + (total - pad) as u64,
                    &[0u8; crate::record::RECORD_ALIGN][..pad],
                );
            }
        }
        self.stats.phase_fill(t);
        self.stats.record_insert(header.total_len as u64);
    }

    /// Read `dst.len()` published bytes starting at `from` into a caller
    /// buffer (the scratch-copy drain the vectored path replaces; kept for
    /// tests and diagnostics — each call counts toward the scratch-copy
    /// stats so regressions back onto this path are visible).
    ///
    /// Caller must ensure `[from, from + dst.len())` is below `released` and
    /// at most `capacity` behind the current frontier (holds for the flush
    /// daemon, which is the only reclaimer).
    pub fn read_released(&self, from: Lsn, dst: &mut [u8]) {
        debug_assert!(from.advance(dst.len() as u64) <= self.released.load());
        self.stats.record_scratch_copy(dst.len() as u64);
        // SAFETY: range is published (below `released`) and not yet
        // reclaimed (the caller is the reclaimer).
        unsafe { self.ring.read_at(from.raw(), dst) }
    }

    /// Borrow `len` published bytes starting at `from` directly out of the
    /// ring as at most two slices — the zero-copy flush drain.
    ///
    /// # Safety
    /// `[from, from + len)` must be published (below `released`) and must
    /// stay unreclaimed for the whole lifetime of the returned slices; only
    /// the single reclaimer (the flush daemon, which alone advances the
    /// durable watermark) can guarantee that.
    pub unsafe fn released_slices(&self, from: Lsn, len: u64) -> (&[u8], &[u8]) {
        debug_assert!(from.advance(len) <= self.released.load());
        // SAFETY: forwarded contract, plus `released - durable <= capacity`
        // (writers cannot reserve past `durable + capacity`), so the range
        // is within one lap of the frontier.
        unsafe { self.ring.read_slices(from.raw(), len as usize) }
    }
}

/// A tiny xorshift PRNG for probe/backoff randomization (thread-local, no
/// allocation, no `rand` dependency on the hot path).
#[inline]
pub(crate) fn fast_rand() -> u32 {
    use std::cell::Cell;
    // Under simulation, draw from the actor's seeded stream so probe and
    // backoff choices replay identically for a given seed.
    if let Some(r) = runtime::sim_thread_rand() {
        return (r >> 32) as u32;
    }
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        if x == 0 {
            // Seed from the address of a stack local + thread id hash.
            let addr = &x as *const _ as u64;
            x = addr ^ 0x853C_49E6_748F_EA9B ^ std::process::id() as u64;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        (x >> 32) as u32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_core() -> Arc<BufferCore> {
        let cfg = LogConfig::default().with_buffer_size(1 << 16);
        BufferCore::new(&cfg)
    }

    #[test]
    fn insert_lock_basic() {
        let l = InsertLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        assert!(l.is_locked());
        l.unlock();
        assert!(!l.is_locked());
        l.lock();
        l.unlock();
    }

    #[test]
    fn insert_lock_cross_thread_unlock() {
        let l = Arc::new(InsertLock::new());
        l.lock();
        let l2 = Arc::clone(&l);
        std::thread::spawn(move || l2.unlock()).join().unwrap();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn lsn_alloc_reserves_contiguously() {
        let lock = InsertLock::new();
        let alloc = LsnAlloc::new(Lsn(100));
        lock.lock();
        // SAFETY: lock held.
        let a = unsafe { alloc.reserve(40) };
        let b = unsafe { alloc.reserve(8) };
        let f = unsafe { alloc.frontier() };
        lock.unlock();
        assert_eq!(a, Lsn(100));
        assert_eq!(b, Lsn(140));
        assert_eq!(f, Lsn(148));
    }

    #[test]
    fn core_watermarks_advance() {
        let core = small_core();
        assert_eq!(core.released_lsn(), Lsn::ZERO);
        core.advance_released(Lsn(64));
        assert_eq!(core.released_lsn(), Lsn(64));
        assert_eq!(core.durable_lsn(), Lsn::ZERO);
        core.advance_durable(Lsn(64));
        assert_eq!(core.durable_lsn(), Lsn(64));
    }

    #[test]
    fn auto_reclaim_moves_durable_with_released() {
        let core = small_core();
        core.set_auto_reclaim(true);
        assert!(core.auto_reclaim());
        core.advance_released(Lsn(128));
        assert_eq!(core.durable_lsn(), Lsn(128));
    }

    #[test]
    fn release_in_order_sequences_threads() {
        let core = small_core();
        core.set_auto_reclaim(true);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Three "threads" releasing out of order: 2 then 1 then 0.
        std::thread::scope(|s| {
            for (start, end, delay_ms) in [(0u64, 64u64, 20u64), (64, 128, 10), (128, 192, 0)] {
                let core = Arc::clone(&core);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    crate::runtime::sleep(std::time::Duration::from_millis(delay_ms));
                    core.release_in_order(Lsn(start), Lsn(end));
                    order.lock().push(start);
                });
            }
        });
        assert_eq!(core.released_lsn(), Lsn(192));
        assert_eq!(&*order.lock(), &[0, 64, 128]);
    }

    #[test]
    fn fill_and_read_roundtrip() {
        let core = small_core();
        let payload = b"payload bytes";
        let h = RecordHeader::new(RecordKind::Filler, 9, Lsn::ZERO, payload);
        core.fill_record(Lsn(0), &h, payload);
        core.advance_released(Lsn(h.total_len as u64));
        let mut out = vec![0u8; h.total_len as usize];
        core.read_released(Lsn(0), &mut out);
        let dec = RecordHeader::decode(out[..HEADER_SIZE].try_into().unwrap()).unwrap();
        assert_eq!(dec, h);
        assert!(dec.verify(&out[HEADER_SIZE..HEADER_SIZE + payload.len()]));
        assert_eq!(core.stats.snapshot().inserts, 1);
    }

    #[test]
    fn wait_for_space_blocks_until_reclaim() {
        let core = small_core(); // 64 KiB
        let cap = core.capacity();
        // Pretend the ring is full: reservation would end 1 byte past.
        let end = Lsn(cap + 1);
        let core2 = Arc::clone(&core);
        let t = std::thread::spawn(move || {
            core2.wait_for_space(end);
        });
        crate::runtime::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished());
        core.advance_durable(Lsn(1));
        t.join().unwrap();
    }

    #[test]
    fn wait_durable_wakes_on_advance() {
        let core = small_core();
        let core2 = Arc::clone(&core);
        let t = std::thread::spawn(move || core2.wait_durable(Lsn(100)));
        crate::runtime::sleep(std::time::Duration::from_millis(10));
        assert!(!t.is_finished());
        core.advance_durable(Lsn(64)); // not enough: waiter re-arms
        core.advance_durable(Lsn(128));
        assert_eq!(t.join().unwrap(), Lsn(128));
        // Already satisfied: returns immediately.
        assert_eq!(core.wait_durable(Lsn(5)), Lsn(128));
    }

    #[test]
    fn wait_durable_timeout_expires() {
        let core = small_core();
        let t = crate::runtime::monotonic_ns();
        let d = core.wait_durable_timeout(Lsn(1000), std::time::Duration::from_millis(20));
        assert!(crate::runtime::monotonic_ns() - t >= 20_000_000);
        assert_eq!(d, Lsn::ZERO);
    }

    #[test]
    fn fast_rand_varies() {
        let a = fast_rand();
        let b = fast_rand();
        let c = fast_rand();
        assert!(!(a == b && b == c), "xorshift should not be constant");
    }

    #[test]
    fn buffer_kind_labels() {
        assert_eq!(BufferKind::Baseline.label(), "B");
        assert_eq!(BufferKind::Delegated.to_string(), "CDME");
        assert_eq!(BufferKind::ALL.len(), 5);
    }
}
