//! The five log-buffer insertion algorithms of the paper (§5, §A.1, §A.3).
//!
//! Every variant shares the same [`BufferCore`] (ring + watermarks + stats)
//! and differs only in *how* the three insert phases are synchronized:
//!
//! | Variant | Acquire | Fill | Release |
//! |---|---|---|---|
//! | [`BaselineBuffer`] | global mutex | under mutex | under mutex |
//! | [`ConsolidationBuffer`] (C) | mutex, one leader per group | parallel within group, mutex held | last of group, releases mutex |
//! | [`DecoupledBuffer`] (D) | mutex (LSN gen only) | parallel | in LSN order |
//! | [`HybridBuffer`] (CD) | mutex, one leader per group | parallel | groups in LSN order |
//! | [`DelegatedBuffer`] (CDME) | as CD | parallel | delegated via MCS queue |
//!
//! The insert critical path never allocates and never blocks on I/O;
//! back-pressure (ring full) is the only wait, and it resolves as the flush
//! daemon reclaims space.

mod baseline;
mod consolidation;
mod decoupled;
mod delegated;
mod hybrid;

pub use baseline::BaselineBuffer;
pub use consolidation::ConsolidationBuffer;
pub use decoupled::DecoupledBuffer;
pub use delegated::DelegatedBuffer;
pub use hybrid::HybridBuffer;

use crate::config::LogConfig;
use crate::lsn::{AtomicLsn, Lsn};
use crate::record::{RecordHeader, RecordKind, HEADER_SIZE};
use crate::ring::Ring;
use crate::stats::BufferStats;
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which insertion algorithm a [`crate::manager::LogManager`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferKind {
    /// Algorithm 1: one mutex across acquire/fill/release.
    Baseline,
    /// Algorithm 2: consolidation-array backoff (C).
    Consolidation,
    /// Algorithm 3: decoupled buffer fill (D).
    Decoupled,
    /// §5.3: consolidation + decoupling (CD).
    Hybrid,
    /// §A.3: CD + delegated buffer release over an MCS queue (CDME).
    Delegated,
}

impl BufferKind {
    /// All variants, in the order the paper's figures present them.
    pub const ALL: [BufferKind; 5] = [
        BufferKind::Baseline,
        BufferKind::Consolidation,
        BufferKind::Decoupled,
        BufferKind::Hybrid,
        BufferKind::Delegated,
    ];

    /// Short label used in experiment output ("B", "C", "D", "CD", "CDME").
    pub fn label(&self) -> &'static str {
        match self {
            BufferKind::Baseline => "B",
            BufferKind::Consolidation => "C",
            BufferKind::Decoupled => "D",
            BufferKind::Hybrid => "CD",
            BufferKind::Delegated => "CDME",
        }
    }

    /// Construct a buffer of this kind over `core`.
    pub fn build(&self, core: Arc<BufferCore>, config: &LogConfig) -> Arc<dyn LogBuffer> {
        match self {
            BufferKind::Baseline => Arc::new(BaselineBuffer::new(core)),
            BufferKind::Consolidation => Arc::new(ConsolidationBuffer::new(core, config)),
            BufferKind::Decoupled => Arc::new(DecoupledBuffer::new(core)),
            BufferKind::Hybrid => Arc::new(HybridBuffer::new(core, config)),
            BufferKind::Delegated => Arc::new(DelegatedBuffer::new(core, config)),
        }
    }
}

impl std::fmt::Display for BufferKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A log buffer: the contract every variant implements.
pub trait LogBuffer: Send + Sync {
    /// Insert one record and return its start LSN.
    ///
    /// Blocks only for ring back-pressure (and, by design, contention); never
    /// for device I/O. On return the record's bytes are in the ring and the
    /// record is (or will momentarily be, once predecessors release)
    /// *released* — eligible for flushing.
    fn insert(&self, kind: RecordKind, txn: u64, prev: Lsn, payload: &[u8]) -> Lsn;

    /// Shared core (watermarks, stats, ring geometry).
    fn core(&self) -> &BufferCore;

    /// Variant label for reporting.
    fn kind(&self) -> BufferKind;
}

/// Progressive wait backoff shared by every busy-wait in the crate:
/// brief spinning (the common case on multicore — the paper's target), then
/// yielding, then micro-sleeps. The sleep stage matters on oversubscribed or
/// few-core hosts, where a predecessor mid-copy may be descheduled and pure
/// yield loops would burn the whole time slice churning the run queue.
#[derive(Debug, Default)]
pub struct WaitBackoff {
    spins: u32,
}

impl WaitBackoff {
    /// Fresh backoff state.
    #[inline]
    pub fn new() -> Self {
        WaitBackoff { spins: 0 }
    }

    /// Wait one step, escalating: spin (<32), yield (<256), then sleep 20µs.
    #[inline]
    pub fn wait(&mut self) {
        self.spins += 1;
        if self.spins < 32 {
            std::hint::spin_loop();
        } else if self.spins < 256 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(20));
        }
    }
}

/// A test-and-test-and-set lock with bounded spinning and yielding.
///
/// The log insert critical section is short (§5: "LSN generation is short and
/// predictable"), so a spin lock is appropriate. Unlike `parking_lot::Mutex`,
/// this lock may be *released by a different thread* than the one that
/// acquired it — exactly what the consolidation variant needs, where the last
/// member of a group to finish its fill releases the lock the group leader
/// acquired (Algorithm 2, line 20).
#[derive(Debug, Default)]
pub struct InsertLock {
    locked: AtomicBool,
}

impl InsertLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        InsertLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Non-blocking attempt (Algorithm 2 line 2 starts with one of these).
    #[inline]
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Acquire, with progressive backoff (spin → yield → micro-sleep).
    #[inline]
    pub fn lock(&self) {
        let mut backoff = WaitBackoff::new();
        loop {
            if self.try_lock() {
                return;
            }
            backoff.wait();
        }
    }

    /// Release. May be called from any thread, provided the lock is held and
    /// the caller has been handed responsibility for it.
    #[inline]
    pub fn unlock(&self) {
        debug_assert!(self.locked.load(Ordering::Relaxed), "unlock of free lock");
        self.locked.store(false, Ordering::Release);
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

/// The LSN allocator: `next` is protected by the variant's [`InsertLock`].
///
/// Wrapped in `UnsafeCell` because the lock discipline (not the type system)
/// guarantees exclusive access; see the safety comments at each use.
#[derive(Debug)]
pub struct LsnAlloc {
    next: UnsafeCell<u64>,
}

// SAFETY: `next` is only dereferenced while the owning variant's InsertLock
// is held, which serializes access.
unsafe impl Sync for LsnAlloc {}

impl LsnAlloc {
    /// Start allocating at `start`.
    pub fn new(start: Lsn) -> Self {
        LsnAlloc {
            next: UnsafeCell::new(start.raw()),
        }
    }

    /// Reserve `len` bytes; returns the start LSN of the reservation.
    ///
    /// # Safety
    /// Caller must hold the associated [`InsertLock`].
    #[inline]
    pub unsafe fn reserve(&self, len: u64) -> Lsn {
        // SAFETY: exclusive access per the function contract.
        let next = unsafe { &mut *self.next.get() };
        let start = *next;
        *next = start + len;
        Lsn(start)
    }

    /// Current frontier.
    ///
    /// # Safety
    /// Caller must hold the associated [`InsertLock`].
    #[inline]
    pub unsafe fn frontier(&self) -> Lsn {
        // SAFETY: exclusive access per the function contract.
        Lsn(unsafe { *self.next.get() })
    }
}

/// State shared by every buffer variant: the ring, the release/durability
/// watermarks, back-pressure plumbing and statistics.
pub struct BufferCore {
    ring: Ring,
    /// Contiguous prefix of the log stream whose fills are complete; the
    /// flush daemon may copy `[durable, released)` to the device.
    released: AtomicLsn,
    /// Prefix that has reached the device; ring bytes below this may be
    /// overwritten (reclaimed).
    durable: AtomicLsn,
    /// When true there is no flush daemon: releasing also reclaims
    /// (microbenchmark mode, Null device).
    auto_reclaim: AtomicBool,
    /// Inserters blocked on ring space.
    space_waiters: AtomicUsize,
    space_mutex: Mutex<()>,
    space_cv: Condvar,
    /// Threads blocked in [`BufferCore::wait_durable`]; the durable-advance
    /// path only takes the watch mutex when this is non-zero, keeping the
    /// auto-reclaim hot path notification-free.
    watch_waiters: AtomicUsize,
    watch_mutex: Mutex<()>,
    watch_cv: Condvar,
    /// Counters and phase timers.
    pub stats: BufferStats,
}

impl std::fmt::Debug for BufferCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferCore")
            .field("capacity", &self.ring.capacity())
            .field("released", &self.released.load_relaxed())
            .field("durable", &self.durable.load_relaxed())
            .finish()
    }
}

impl BufferCore {
    /// Build a core with a ring of `config.buffer_size` bytes.
    pub fn new(config: &LogConfig) -> Arc<BufferCore> {
        Self::with_start(config, Lsn::ZERO)
    }

    /// Build a core whose LSN space begins at `start` — used after recovery,
    /// so new records append to the device at the right offsets.
    pub fn with_start(config: &LogConfig, start: Lsn) -> Arc<BufferCore> {
        config.validate().map_err(crate::LogError::Config).unwrap();
        Arc::new(BufferCore {
            ring: Ring::new(config.buffer_size),
            released: AtomicLsn::new(start),
            durable: AtomicLsn::new(start),
            auto_reclaim: AtomicBool::new(false),
            space_waiters: AtomicUsize::new(0),
            space_mutex: Mutex::new(()),
            space_cv: Condvar::new(),
            watch_waiters: AtomicUsize::new(0),
            watch_mutex: Mutex::new(()),
            watch_cv: Condvar::new(),
            stats: BufferStats::new(),
        })
    }

    /// Ring capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.ring.capacity()
    }

    /// The ring itself (flush daemon reads released bytes out of it).
    #[inline]
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Enable auto-reclaim: releasing immediately reclaims ring space (no
    /// flush daemon; used with discarding devices).
    pub fn set_auto_reclaim(&self, on: bool) {
        self.auto_reclaim.store(on, Ordering::Relaxed);
    }

    /// Whether auto-reclaim is on.
    pub fn auto_reclaim(&self) -> bool {
        self.auto_reclaim.load(Ordering::Relaxed)
    }

    /// Released watermark (acquire).
    #[inline]
    pub fn released_lsn(&self) -> Lsn {
        self.released.load()
    }

    /// Durable watermark (acquire).
    #[inline]
    pub fn durable_lsn(&self) -> Lsn {
        self.durable.load()
    }

    /// Block until the reservation ending at `end` fits in the ring, i.e.
    /// `end - durable <= capacity`. Called with the insert lock held; the
    /// flush daemon advances `durable` independently so this cannot deadlock.
    #[inline]
    pub fn wait_for_space(&self, end: Lsn) {
        if end.raw().saturating_sub(self.durable.load_relaxed().raw()) <= self.capacity() {
            return;
        }
        self.wait_for_space_slow(end);
    }

    #[cold]
    fn wait_for_space_slow(&self, end: Lsn) {
        let mut spins = 0u32;
        loop {
            if end.raw() - self.durable.load().raw() <= self.capacity() {
                return;
            }
            spins += 1;
            if spins < 100 {
                std::thread::yield_now();
            } else {
                self.space_waiters.fetch_add(1, Ordering::SeqCst);
                let mut g = self.space_mutex.lock();
                if end.raw() - self.durable.load().raw() > self.capacity() {
                    self.space_cv
                        .wait_for(&mut g, std::time::Duration::from_micros(200));
                }
                drop(g);
                self.space_waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Advance the released watermark to `upto`. Caller must guarantee that
    /// every byte below `upto` has been filled and that no other thread can
    /// be advancing `released` concurrently (serialized by lock or by the
    /// in-order release protocol).
    #[inline]
    pub fn advance_released(&self, upto: Lsn) {
        self.released.publish(upto);
        if self.auto_reclaim() {
            self.advance_durable(upto);
        }
    }

    /// Number of inserters currently blocked waiting for ring space; the
    /// flush daemon treats a non-zero value as a flush trigger so
    /// back-pressure always resolves.
    pub fn space_waiters(&self) -> usize {
        self.space_waiters.load(Ordering::SeqCst)
    }

    /// Advance the durable watermark (flush daemon, or auto-reclaim).
    #[inline]
    pub fn advance_durable(&self, upto: Lsn) {
        self.durable.fetch_max(upto);
        if self.space_waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.space_mutex.lock();
            self.space_cv.notify_all();
        }
        if self.watch_waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.watch_mutex.lock();
            self.watch_cv.notify_all();
        }
    }

    /// Block until the durable watermark reaches `lsn`; returns the current
    /// durable LSN. The notification-based replacement for spin/sleep polls
    /// on [`BufferCore::durable_lsn`] — the log shipper and tests wait here.
    pub fn wait_durable(&self, lsn: Lsn) -> Lsn {
        loop {
            let d = self.durable.load();
            if d >= lsn {
                return d;
            }
            self.watch_waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = self.watch_mutex.lock();
            // Re-check under the lock: an advance between the load above and
            // the waiter registration must not be missed.
            if self.durable.load() < lsn {
                self.watch_cv.wait(&mut g);
            }
            drop(g);
            self.watch_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Like [`BufferCore::wait_durable`] but gives up after `timeout`;
    /// returns the durable LSN at wake-up (which may be below `lsn`).
    pub fn wait_durable_timeout(&self, lsn: Lsn, timeout: std::time::Duration) -> Lsn {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let d = self.durable.load();
            if d >= lsn {
                return d;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return d;
            }
            self.watch_waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = self.watch_mutex.lock();
            if self.durable.load() < lsn {
                self.watch_cv.wait_for(&mut g, deadline - now);
            }
            drop(g);
            self.watch_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Spin until `released == start` (the in-order release protocol of
    /// Algorithm 3, line 9: "wait my turn"), then publish `end`.
    #[inline]
    pub fn release_in_order(&self, start: Lsn, end: Lsn) {
        let t = self.stats.phase_start();
        let mut backoff = WaitBackoff::new();
        while self.released.load() != start {
            backoff.wait();
        }
        self.stats.phase_release(t);
        self.advance_released(end);
    }

    /// Copy an encoded record (header + payload) into the ring at `at`.
    ///
    /// Caller must own the reservation `[at, at + header.total_len)`.
    #[inline]
    pub fn fill_record(&self, at: Lsn, header: &RecordHeader, payload: &[u8]) {
        let t = self.stats.phase_start();
        let encoded = header.encode();
        // SAFETY: the caller owns this reservation (LSN space is handed out
        // exactly once), so the range is exclusive; see module docs.
        unsafe {
            self.ring.write_at(at.raw(), &encoded);
            self.ring.write_at(at.raw() + HEADER_SIZE as u64, payload);
        }
        self.stats.phase_fill(t);
        self.stats.record_insert(header.total_len as u64);
    }

    /// Read `dst.len()` published bytes starting at `from` (flush daemon).
    ///
    /// Caller must ensure `[from, from + dst.len())` is below `released` and
    /// at most `capacity` behind the current frontier (holds for the flush
    /// daemon, which is the only reclaimer).
    pub fn read_released(&self, from: Lsn, dst: &mut [u8]) {
        debug_assert!(from.advance(dst.len() as u64) <= self.released.load());
        // SAFETY: range is published (below `released`) and not yet
        // reclaimed (the caller is the reclaimer).
        unsafe { self.ring.read_at(from.raw(), dst) }
    }
}

/// A tiny xorshift PRNG for probe/backoff randomization (thread-local, no
/// allocation, no `rand` dependency on the hot path).
#[inline]
pub(crate) fn fast_rand() -> u32 {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        if x == 0 {
            // Seed from the address of a stack local + thread id hash.
            let addr = &x as *const _ as u64;
            x = addr ^ 0x853C_49E6_748F_EA9B ^ std::process::id() as u64;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        (x >> 32) as u32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_core() -> Arc<BufferCore> {
        let cfg = LogConfig::default().with_buffer_size(1 << 16);
        BufferCore::new(&cfg)
    }

    #[test]
    fn insert_lock_basic() {
        let l = InsertLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        assert!(l.is_locked());
        l.unlock();
        assert!(!l.is_locked());
        l.lock();
        l.unlock();
    }

    #[test]
    fn insert_lock_cross_thread_unlock() {
        let l = Arc::new(InsertLock::new());
        l.lock();
        let l2 = Arc::clone(&l);
        std::thread::spawn(move || l2.unlock()).join().unwrap();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn lsn_alloc_reserves_contiguously() {
        let lock = InsertLock::new();
        let alloc = LsnAlloc::new(Lsn(100));
        lock.lock();
        // SAFETY: lock held.
        let a = unsafe { alloc.reserve(40) };
        let b = unsafe { alloc.reserve(8) };
        let f = unsafe { alloc.frontier() };
        lock.unlock();
        assert_eq!(a, Lsn(100));
        assert_eq!(b, Lsn(140));
        assert_eq!(f, Lsn(148));
    }

    #[test]
    fn core_watermarks_advance() {
        let core = small_core();
        assert_eq!(core.released_lsn(), Lsn::ZERO);
        core.advance_released(Lsn(64));
        assert_eq!(core.released_lsn(), Lsn(64));
        assert_eq!(core.durable_lsn(), Lsn::ZERO);
        core.advance_durable(Lsn(64));
        assert_eq!(core.durable_lsn(), Lsn(64));
    }

    #[test]
    fn auto_reclaim_moves_durable_with_released() {
        let core = small_core();
        core.set_auto_reclaim(true);
        assert!(core.auto_reclaim());
        core.advance_released(Lsn(128));
        assert_eq!(core.durable_lsn(), Lsn(128));
    }

    #[test]
    fn release_in_order_sequences_threads() {
        let core = small_core();
        core.set_auto_reclaim(true);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Three "threads" releasing out of order: 2 then 1 then 0.
        std::thread::scope(|s| {
            for (start, end, delay_ms) in [(0u64, 64u64, 20u64), (64, 128, 10), (128, 192, 0)] {
                let core = Arc::clone(&core);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                    core.release_in_order(Lsn(start), Lsn(end));
                    order.lock().push(start);
                });
            }
        });
        assert_eq!(core.released_lsn(), Lsn(192));
        assert_eq!(&*order.lock(), &[0, 64, 128]);
    }

    #[test]
    fn fill_and_read_roundtrip() {
        let core = small_core();
        let payload = b"payload bytes";
        let h = RecordHeader::new(RecordKind::Filler, 9, Lsn::ZERO, payload);
        core.fill_record(Lsn(0), &h, payload);
        core.advance_released(Lsn(h.total_len as u64));
        let mut out = vec![0u8; h.total_len as usize];
        core.read_released(Lsn(0), &mut out);
        let dec = RecordHeader::decode(out[..HEADER_SIZE].try_into().unwrap()).unwrap();
        assert_eq!(dec, h);
        assert!(dec.verify(&out[HEADER_SIZE..HEADER_SIZE + payload.len()]));
        assert_eq!(core.stats.snapshot().inserts, 1);
    }

    #[test]
    fn wait_for_space_blocks_until_reclaim() {
        let core = small_core(); // 64 KiB
        let cap = core.capacity();
        // Pretend the ring is full: reservation would end 1 byte past.
        let end = Lsn(cap + 1);
        let core2 = Arc::clone(&core);
        let t = std::thread::spawn(move || {
            core2.wait_for_space(end);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished());
        core.advance_durable(Lsn(1));
        t.join().unwrap();
    }

    #[test]
    fn wait_durable_wakes_on_advance() {
        let core = small_core();
        let core2 = Arc::clone(&core);
        let t = std::thread::spawn(move || core2.wait_durable(Lsn(100)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!t.is_finished());
        core.advance_durable(Lsn(64)); // not enough: waiter re-arms
        core.advance_durable(Lsn(128));
        assert_eq!(t.join().unwrap(), Lsn(128));
        // Already satisfied: returns immediately.
        assert_eq!(core.wait_durable(Lsn(5)), Lsn(128));
    }

    #[test]
    fn wait_durable_timeout_expires() {
        let core = small_core();
        let t = std::time::Instant::now();
        let d = core.wait_durable_timeout(Lsn(1000), std::time::Duration::from_millis(20));
        assert!(t.elapsed() >= std::time::Duration::from_millis(20));
        assert_eq!(d, Lsn::ZERO);
    }

    #[test]
    fn fast_rand_varies() {
        let a = fast_rand();
        let b = fast_rand();
        let c = fast_rand();
        assert!(!(a == b && b == c), "xorshift should not be constant");
    }

    #[test]
    fn buffer_kind_labels() {
        assert_eq!(BufferKind::Baseline.label(), "B");
        assert_eq!(BufferKind::Delegated.to_string(), "CDME");
        assert_eq!(BufferKind::ALL.len(), 5);
    }
}
