//! Algorithm 1: the baseline monolithic log insert.
//!
//! One mutex protects LSN generation, the buffer fill *and* the release.
//! Simple — "log inserts are relatively inexpensive, and in the monolithic
//! case buffer release is simplified to a mutex release" — but it serializes
//! buffer fills even though reserved regions never overlap, so both thread
//! count and record size feed directly into the critical-section length.
//! Figure 8 shows it saturating around 140 MB/s regardless of parallelism.

use super::{BufferCore, BufferKind, InsertLock, LogBuffer, LogSlot, LsnAlloc, SlotFinish};
use crate::lsn::Lsn;
use crate::record::{on_log_size, RecordKind};
use std::sync::Arc;

/// The monolithic single-mutex log buffer (paper Algorithm 1).
pub struct BaselineBuffer {
    core: Arc<BufferCore>,
    lock: InsertLock,
    alloc: LsnAlloc,
}

impl BaselineBuffer {
    /// Wrap `core` with baseline insert semantics.
    pub fn new(core: Arc<BufferCore>) -> Self {
        let start = core.released_lsn();
        BaselineBuffer {
            core,
            lock: InsertLock::new(),
            alloc: LsnAlloc::new(start),
        }
    }
}

impl LogBuffer for BaselineBuffer {
    fn reserve(&self, kind: RecordKind, txn: u64, prev: Lsn, payload_len: usize) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        let len = on_log_size(payload_len) as u64;

        // --- acquire: lock + LSN generation + space back-pressure ---
        let t_acq = self.core.stats.phase_start();
        self.lock.lock();
        self.core.stats.phase_acquire(t_acq);
        self.core.stats.record_direct();
        // SAFETY: insert lock held.
        let start = unsafe { self.alloc.reserve(len) };
        self.core.wait_for_space(start.advance(len));

        // The caller fills while *holding* the mutex (the whole point of the
        // baseline's weakness); releasing the slot advances the watermark
        // and drops the mutex.
        self.core.begin_fill(
            start,
            kind,
            txn,
            prev,
            payload_len,
            SlotFinish::LockedDirect { lock: &self.lock },
        )
    }

    fn core(&self) -> &BufferCore {
        &self.core
    }

    fn kind(&self) -> BufferKind {
        BufferKind::Baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogConfig;
    use crate::record::on_log_size;

    fn make() -> BaselineBuffer {
        let core = BufferCore::new(&LogConfig::default().with_buffer_size(1 << 16));
        core.set_auto_reclaim(true);
        BaselineBuffer::new(core)
    }

    #[test]
    fn sequential_inserts_are_contiguous() {
        let b = make();
        let a = b.insert(RecordKind::Filler, 1, Lsn::ZERO, &[1; 8]);
        let c = b.insert(RecordKind::Filler, 1, Lsn::ZERO, &[2; 100]);
        assert_eq!(a, Lsn::ZERO);
        assert_eq!(c, Lsn(on_log_size(8) as u64));
        assert_eq!(
            b.core().released_lsn(),
            Lsn((on_log_size(8) + on_log_size(100)) as u64)
        );
        assert_eq!(b.kind(), BufferKind::Baseline);
    }

    #[test]
    fn concurrent_inserts_unique_lsns() {
        let b = Arc::new(make());
        let mut handles = vec![];
        for t in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut lsns = vec![];
                for _ in 0..500 {
                    lsns.push(b.insert(RecordKind::Filler, t, Lsn::ZERO, &[t as u8; 56]));
                }
                lsns
            }));
        }
        let mut all: Vec<Lsn> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8 * 500);
        let expect = 8 * 500 * on_log_size(56) as u64;
        assert_eq!(b.core().released_lsn(), Lsn(expect));
        assert_eq!(b.core().stats.snapshot().inserts, 8 * 500);
    }

    #[test]
    fn ring_wraparound_many_laps() {
        let b = make(); // 64 KiB ring
        let payload = vec![7u8; 1000];
        for _ in 0..1000 {
            b.insert(RecordKind::Filler, 0, Lsn::ZERO, &payload);
        }
        // 1000 * 1032 bytes ≈ 16 laps around the ring
        assert_eq!(
            b.core().released_lsn(),
            Lsn(1000 * on_log_size(1000) as u64)
        );
    }
}
