//! Algorithm 2: log insertion with consolidated buffer acquire (C).
//!
//! Threads begin with a non-blocking lock attempt; on success they behave
//! exactly like the baseline. Threads that hit contention back off into the
//! consolidation array and combine their requests: only the group leader
//! (join offset 0) competes for the mutex, acquires buffer space for the
//! whole group, and publishes the base LSN; everyone fills in parallel; the
//! **last member to finish releases both the group's buffer region and the
//! mutex** (which is why [`super::InsertLock`] permits cross-thread unlock).
//!
//! Consolidation bounds contention at the log to the number of array slots
//! rather than the number of threads — but fills between groups remain
//! serialized (the mutex is held for the group's entire copy phase), which
//! Figure 6(C) shows as residual wait time and Figure 8 as a lower asymptote
//! than the hybrid.

use super::{BufferCore, BufferKind, InsertLock, LogBuffer, LogSlot, LsnAlloc, SlotFinish};
use crate::carray::CArray;
use crate::config::LogConfig;
use crate::lsn::Lsn;
use crate::record::{on_log_size, RecordKind};
use std::sync::Arc;

/// The consolidation-array log buffer (paper Algorithm 2, variant "C").
pub struct ConsolidationBuffer {
    core: Arc<BufferCore>,
    lock: InsertLock,
    alloc: LsnAlloc,
    carray: CArray,
}

impl ConsolidationBuffer {
    /// Wrap `core`, building a consolidation array per `config`
    /// (`carray_slots` active slots over a `carray_pool` pool).
    pub fn new(core: Arc<BufferCore>, config: &LogConfig) -> Self {
        let start = core.released_lsn();
        let max_group = core.capacity() / 8;
        ConsolidationBuffer {
            core,
            lock: InsertLock::new(),
            alloc: LsnAlloc::new(start),
            carray: CArray::new(config.carray_slots, config.carray_pool, max_group),
        }
    }

    /// The array (exposed for the Figure-12 sensitivity experiment).
    pub fn carray(&self) -> &CArray {
        &self.carray
    }

    /// Baseline-style reservation with the lock already held: the caller
    /// fills under the mutex; releasing the slot publishes and unlocks.
    fn reserve_locked(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        let len = on_log_size(payload_len) as u64;
        // SAFETY: insert lock held by this thread.
        let start = unsafe { self.alloc.reserve(len) };
        self.core.wait_for_space(start.advance(len));
        self.core.begin_fill(
            start,
            kind,
            txn,
            prev,
            payload_len,
            SlotFinish::LockedDirect { lock: &self.lock },
        )
    }
}

impl LogBuffer for ConsolidationBuffer {
    fn reserve(&self, kind: RecordKind, txn: u64, prev: Lsn, payload_len: usize) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        let len = on_log_size(payload_len) as u64;

        // Fast path (Algorithm 2, lines 2–6): no contention, no backoff.
        if self.lock.try_lock() {
            self.core.stats.record_direct();
            return self.reserve_locked(kind, txn, prev, payload_len);
        }
        // Oversized records cannot consolidate; take the blocking direct path.
        if len > self.carray.max_group() {
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_direct();
            return self.reserve_locked(kind, txn, prev, payload_len);
        }

        self.reserve_contended(kind, txn, prev, payload_len)
    }

    fn core(&self) -> &BufferCore {
        &self.core
    }

    fn kind(&self) -> BufferKind {
        BufferKind::Consolidation
    }
}

impl ConsolidationBuffer {
    /// Insert via the consolidation array unconditionally, skipping the
    /// uncontended fast path. Used by tests and by the sensitivity
    /// microbenchmarks (Figure 12) to exercise group formation even on hosts
    /// with few cores, where the `try_lock` fast path would otherwise always
    /// win.
    pub fn insert_backoff(&self, kind: RecordKind, txn: u64, prev: Lsn, payload: &[u8]) -> Lsn {
        self.core.stats.record_wrapper();
        let mut slot = self.reserve_backoff(kind, txn, prev, payload.len());
        slot.write(payload);
        slot.release()
    }

    /// Reservation counterpart of [`ConsolidationBuffer::insert_backoff`].
    pub fn reserve_backoff(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        if on_log_size(payload_len) as u64 > self.carray.max_group() {
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_direct();
            return self.reserve_locked(kind, txn, prev, payload_len);
        }
        self.reserve_contended(kind, txn, prev, payload_len)
    }

    /// The contended path of Algorithm 2 (lines 8–21). Group members fill
    /// their disjoint sub-ranges in place; the last member out releases the
    /// group's buffer region *and* the mutex (via the slot's finish action).
    fn reserve_contended(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        let len = on_log_size(payload_len) as u64;
        let join = self.carray.join(len);
        if join.offset == 0 {
            // Group leader: acquire the mutex on behalf of the group.
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_group_acquire();
            let group = self.carray.close_and_replace(join.slot);
            // SAFETY: insert lock held.
            let base = unsafe { self.alloc.reserve(group) };
            self.core.wait_for_space(base.advance(group));
            join.slot.notify(base, group, 0);
            self.core.begin_fill(
                base,
                kind,
                txn,
                prev,
                payload_len,
                SlotFinish::GroupLocked {
                    slot: join.slot,
                    lock: &self.lock,
                    base,
                    group,
                },
            )
        } else {
            // Follower: wait for the leader's allocation, then fill our
            // pre-computed sub-range.
            self.core.stats.record_consolidation();
            let (base, group, _) = join.slot.wait();
            self.core.begin_fill(
                base.advance(join.offset),
                kind,
                txn,
                prev,
                payload_len,
                SlotFinish::GroupLocked {
                    slot: join.slot,
                    lock: &self.lock,
                    base,
                    group,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::on_log_size;

    fn make() -> Arc<ConsolidationBuffer> {
        let cfg = LogConfig::default().with_buffer_size(1 << 18);
        let core = BufferCore::new(&cfg);
        core.set_auto_reclaim(true);
        Arc::new(ConsolidationBuffer::new(core, &cfg))
    }

    #[test]
    fn uncontended_takes_fast_path() {
        let b = make();
        for i in 0..100u64 {
            b.insert(RecordKind::Filler, i, Lsn::ZERO, &[0; 88]);
        }
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, 100);
        assert_eq!(s.direct_acquires, 100);
        assert_eq!(s.consolidations, 0);
        assert_eq!(b.core().released_lsn(), Lsn(100 * on_log_size(88) as u64));
    }

    #[test]
    fn contended_inserts_consolidate_and_stay_contiguous() {
        let b = make();
        let threads = 16usize;
        let per = 500usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..per {
                        let size = 8 + (i % 7) * 32;
                        b.insert(
                            RecordKind::Filler,
                            t as u64,
                            Lsn::ZERO,
                            &vec![t as u8; size],
                        );
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, (threads * per) as u64);
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
    }

    #[test]
    fn backoff_path_forms_groups_and_stays_contiguous() {
        // `insert_backoff` skips the fast path, deterministically exercising
        // group formation regardless of host core count.
        let b = make();
        let threads = 8usize;
        let per = 400usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..per {
                        let size = 8 + (i % 7) * 32;
                        b.insert_backoff(
                            RecordKind::Filler,
                            t as u64,
                            Lsn::ZERO,
                            &vec![t as u8; size],
                        );
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, (threads * per) as u64);
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
        // Every insert went through the array: leaders + followers == total.
        assert_eq!(s.group_acquires + s.consolidations, (threads * per) as u64);
        assert!(s.group_acquires > 0);
    }

    #[test]
    fn oversized_record_takes_direct_path() {
        let b = make(); // 256 KiB ring → max_group = 32 KiB
        assert!(b.carray().max_group() == (1 << 18) / 8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..20 {
                        b.insert(RecordKind::Filler, 1, Lsn::ZERO, &vec![1u8; 40_000]);
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, 80);
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
    }

    #[test]
    fn lsns_unique_and_dense_under_contention() {
        let b = make();
        let lsns = parking_lot::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let b = Arc::clone(&b);
                let lsns = &lsns;
                s.spawn(move || {
                    let mut local = Vec::new();
                    for _ in 0..300 {
                        local.push((
                            b.insert(RecordKind::Filler, t, Lsn::ZERO, &[t as u8; 56]),
                            on_log_size(56) as u64,
                        ));
                    }
                    lsns.lock().extend(local);
                });
            }
        });
        let mut v = lsns.into_inner();
        v.sort();
        // Records must tile the log stream with no gaps or overlaps.
        let mut expect = Lsn::ZERO;
        for (lsn, len) in v {
            assert_eq!(lsn, expect, "gap or overlap in log stream");
            expect = lsn.advance(len);
        }
        assert_eq!(b.core().released_lsn(), expect);
    }
}
