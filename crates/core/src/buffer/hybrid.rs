//! §5.3: the hybrid log buffer (CD) — consolidation + decoupled fill.
//!
//! Consolidation bounds the number of threads competing for the mutex;
//! decoupling moves every copy off the critical path. The leader acquires
//! buffer space for the whole group and **releases the mutex immediately**
//! (before anyone copies); group members fill in parallel; groups release in
//! LSN order via the watermark protocol, with the last member of each group
//! publishing the group's region. Figure 6(CD): "bounded contention for
//! threads in the buffer acquire stage and maximum pipelining of all
//! operations". This is the variant the paper recommends and the one that
//! reaches >1.8 GB/s on one socket.

use super::{BufferCore, BufferKind, InsertLock, LogBuffer, LogSlot, LsnAlloc, SlotFinish};
use crate::carray::CArray;
use crate::config::LogConfig;
use crate::lsn::Lsn;
use crate::record::{on_log_size, RecordKind};
use std::sync::Arc;

/// The hybrid (CD) log buffer of §5.3.
pub struct HybridBuffer {
    core: Arc<BufferCore>,
    lock: InsertLock,
    alloc: LsnAlloc,
    carray: CArray,
}

impl HybridBuffer {
    /// Wrap `core`, with the consolidation array sized per `config`.
    pub fn new(core: Arc<BufferCore>, config: &LogConfig) -> Self {
        let start = core.released_lsn();
        let max_group = core.capacity() / 8;
        HybridBuffer {
            core,
            lock: InsertLock::new(),
            alloc: LsnAlloc::new(start),
            carray: CArray::new(config.carray_slots, config.carray_pool, max_group),
        }
    }

    /// The consolidation array (Figure-12 sensitivity experiment).
    pub fn carray(&self) -> &CArray {
        &self.carray
    }

    /// Acquire-only critical section: reserve `len` bytes and drop the lock.
    fn reserve_and_unlock(&self, len: u64) -> Lsn {
        // SAFETY: insert lock held by this thread.
        let start = unsafe { self.alloc.reserve(len) };
        self.core.wait_for_space(start.advance(len));
        self.lock.unlock();
        start
    }

    /// Decoupled-style reservation (lock already held): unlock before the
    /// caller fills; the slot releases in LSN order.
    fn reserve_direct(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        let start = self.reserve_and_unlock(on_log_size(payload_len) as u64);
        self.core
            .begin_fill(start, kind, txn, prev, payload_len, SlotFinish::InOrder)
    }
}

impl LogBuffer for HybridBuffer {
    fn reserve(&self, kind: RecordKind, txn: u64, prev: Lsn, payload_len: usize) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        let len = on_log_size(payload_len) as u64;

        // Fast path: uncontended — decoupled-style insert.
        if self.lock.try_lock() {
            self.core.stats.record_direct();
            return self.reserve_direct(kind, txn, prev, payload_len);
        }
        // Oversized records take the blocking decoupled path.
        if len > self.carray.max_group() {
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_direct();
            return self.reserve_direct(kind, txn, prev, payload_len);
        }

        self.reserve_contended(kind, txn, prev, payload_len)
    }

    fn core(&self) -> &BufferCore {
        &self.core
    }

    fn kind(&self) -> BufferKind {
        BufferKind::Hybrid
    }
}

impl HybridBuffer {
    /// Insert via the consolidation array unconditionally (skip the fast
    /// path). Lets the Figure-12 sensitivity experiment exercise group
    /// formation deterministically on hosts with few cores.
    pub fn insert_backoff(&self, kind: RecordKind, txn: u64, prev: Lsn, payload: &[u8]) -> Lsn {
        self.core.stats.record_wrapper();
        let mut slot = self.reserve_backoff(kind, txn, prev, payload.len());
        slot.write(payload);
        slot.release()
    }

    /// Reservation counterpart of [`HybridBuffer::insert_backoff`].
    pub fn reserve_backoff(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        if on_log_size(payload_len) as u64 > self.carray.max_group() {
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_direct();
            return self.reserve_direct(kind, txn, prev, payload_len);
        }
        self.reserve_contended(kind, txn, prev, payload_len)
    }

    /// Contended path: consolidate, leader reserves and unlocks before
    /// anyone fills, groups release in LSN order (last member publishes).
    fn reserve_contended(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        let len = on_log_size(payload_len) as u64;
        let join = self.carray.join(len);
        if join.offset == 0 {
            // Leader: acquire space for the group, then unlock *before*
            // filling — this is what distinguishes CD from C.
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_group_acquire();
            let group = self.carray.close_and_replace(join.slot);
            let base = self.reserve_and_unlock(group);
            join.slot.notify(base, group, 0);
            self.core.begin_fill(
                base,
                kind,
                txn,
                prev,
                payload_len,
                SlotFinish::GroupInOrder {
                    slot: join.slot,
                    base,
                    group,
                },
            )
        } else {
            self.core.stats.record_consolidation();
            let (base, group, _) = join.slot.wait();
            self.core.begin_fill(
                base.advance(join.offset),
                kind,
                txn,
                prev,
                payload_len,
                SlotFinish::GroupInOrder {
                    slot: join.slot,
                    base,
                    group,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::on_log_size;

    fn make() -> Arc<HybridBuffer> {
        let cfg = LogConfig::default().with_buffer_size(1 << 18);
        let core = BufferCore::new(&cfg);
        core.set_auto_reclaim(true);
        Arc::new(HybridBuffer::new(core, &cfg))
    }

    #[test]
    fn stream_is_dense_under_heavy_contention() {
        let b = make();
        let threads = 16usize;
        let per = 600usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..per {
                        let size = 8 + (i % 9) * 24;
                        b.insert(
                            RecordKind::Filler,
                            t as u64,
                            Lsn::ZERO,
                            &vec![t as u8; size],
                        );
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, (threads * per) as u64);
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
    }

    #[test]
    fn mixed_sizes_with_outliers() {
        // Bimodal distribution à la Figure 11: mostly 48 B, occasional 16 KiB.
        let b = make();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..400usize {
                        if i % 60 == 0 {
                            b.insert(RecordKind::Filler, t as u64, Lsn::ZERO, &vec![9; 16384]);
                        } else {
                            b.insert(RecordKind::Filler, t as u64, Lsn::ZERO, &[1; 16]);
                        }
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, 8 * 400);
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
    }

    #[test]
    fn single_thread_layout_identical_to_baseline() {
        let b = make();
        let a = b.insert(RecordKind::Update, 3, Lsn::ZERO, &[0; 8]);
        let c = b.insert(RecordKind::Commit, 3, a, &[]);
        assert_eq!(a, Lsn::ZERO);
        assert_eq!(c, Lsn(on_log_size(8) as u64));
        assert_eq!(b.kind(), BufferKind::Hybrid);
        assert_eq!(b.carray().n_active(), 4);
    }
}
