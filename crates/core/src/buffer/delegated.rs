//! §A.3: the CDME log buffer — CD plus delegated buffer release.
//!
//! Identical to [`super::HybridBuffer`] on the acquire and fill paths, but
//! the in-order release watermark is replaced by the physical
//! [`ReleaseQueue`](crate::mcs::ReleaseQueue): a thread whose predecessor is
//! still copying abandons its queue node instead of waiting, making the
//! release time of small records independent of large outliers. Figure 11
//! shows CDME immune to bimodal record-size skew where CD levels off at
//! ~8 kiB outliers, at the price of ~10% throughput in the common case.

use super::{BufferCore, BufferKind, InsertLock, LogBuffer, LogSlot, LsnAlloc, SlotFinish};
use crate::carray::CArray;
use crate::config::LogConfig;
use crate::lsn::Lsn;
use crate::mcs::{ReleaseHandle, ReleaseQueue};
use crate::record::{on_log_size, RecordKind};
use std::sync::Arc;

/// The CDME log buffer (§A.3, Algorithm 4).
pub struct DelegatedBuffer {
    core: Arc<BufferCore>,
    lock: InsertLock,
    alloc: LsnAlloc,
    carray: CArray,
    queue: ReleaseQueue,
}

impl DelegatedBuffer {
    /// Wrap `core`; queue pool and treadmill probability come from `config`.
    pub fn new(core: Arc<BufferCore>, config: &LogConfig) -> Self {
        let start = core.released_lsn();
        let max_group = core.capacity() / 8;
        DelegatedBuffer {
            core,
            lock: InsertLock::new(),
            alloc: LsnAlloc::new(start),
            carray: CArray::new(config.carray_slots, config.carray_pool, max_group),
            queue: ReleaseQueue::new(config.release_queue_pool, config.treadmill_inv),
        }
    }

    /// The consolidation array (sensitivity experiments).
    pub fn carray(&self) -> &CArray {
        &self.carray
    }

    /// Critical section: reserve, join the release queue, unlock
    /// (Algorithm 4, `buffer_acquire`).
    fn reserve_join_unlock(&self, len: u64) -> (Lsn, ReleaseHandle) {
        // SAFETY: insert lock held by this thread.
        let start = unsafe { self.alloc.reserve(len) };
        self.core.wait_for_space(start.advance(len));
        let h = self.queue.join(start, start.advance(len));
        self.lock.unlock();
        (start, h)
    }

    /// Direct reservation (lock already held): join the queue, unlock, hand
    /// the caller a slot whose release goes through the queue.
    fn reserve_direct(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        let (start, h) = self.reserve_join_unlock(on_log_size(payload_len) as u64);
        self.core.begin_fill(
            start,
            kind,
            txn,
            prev,
            payload_len,
            SlotFinish::Queue {
                queue: &self.queue,
                handle: h,
            },
        )
    }
}

impl LogBuffer for DelegatedBuffer {
    fn reserve(&self, kind: RecordKind, txn: u64, prev: Lsn, payload_len: usize) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        let len = on_log_size(payload_len) as u64;

        // Fast path: uncontended.
        if self.lock.try_lock() {
            self.core.stats.record_direct();
            return self.reserve_direct(kind, txn, prev, payload_len);
        }
        // Oversized records: blocking direct path.
        if len > self.carray.max_group() {
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_direct();
            return self.reserve_direct(kind, txn, prev, payload_len);
        }

        self.reserve_contended(kind, txn, prev, payload_len)
    }

    fn core(&self) -> &BufferCore {
        &self.core
    }

    fn kind(&self) -> BufferKind {
        BufferKind::Delegated
    }
}

impl DelegatedBuffer {
    /// Insert via the consolidation array unconditionally (skip the fast
    /// path); deterministic group formation for tests and sensitivity
    /// experiments on hosts with few cores.
    pub fn insert_backoff(&self, kind: RecordKind, txn: u64, prev: Lsn, payload: &[u8]) -> Lsn {
        self.core.stats.record_wrapper();
        let mut slot = self.reserve_backoff(kind, txn, prev, payload.len());
        slot.write(payload);
        slot.release()
    }

    /// Reservation counterpart of [`DelegatedBuffer::insert_backoff`].
    pub fn reserve_backoff(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        if on_log_size(payload_len) as u64 > self.carray.max_group() {
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_direct();
            return self.reserve_direct(kind, txn, prev, payload_len);
        }
        self.reserve_contended(kind, txn, prev, payload_len)
    }

    /// Contended path: consolidate; the group occupies ONE queue node,
    /// released (or delegated) by whichever member finishes last.
    fn reserve_contended(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        let len = on_log_size(payload_len) as u64;
        let join = self.carray.join(len);
        if join.offset == 0 {
            let t = self.core.stats.phase_start();
            self.lock.lock();
            self.core.stats.phase_acquire(t);
            self.core.stats.record_group_acquire();
            let group = self.carray.close_and_replace(join.slot);
            let (base, h) = self.reserve_join_unlock(group);
            join.slot.notify(base, group, h.pack());
            self.core.begin_fill(
                base,
                kind,
                txn,
                prev,
                payload_len,
                SlotFinish::GroupQueue {
                    slot: join.slot,
                    queue: &self.queue,
                    extra: h.pack(),
                },
            )
        } else {
            self.core.stats.record_consolidation();
            let (base, _group, extra) = join.slot.wait();
            self.core.begin_fill(
                base.advance(join.offset),
                kind,
                txn,
                prev,
                payload_len,
                SlotFinish::GroupQueue {
                    slot: join.slot,
                    queue: &self.queue,
                    extra,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::on_log_size;

    fn make() -> Arc<DelegatedBuffer> {
        let cfg = LogConfig::default().with_buffer_size(1 << 18);
        let core = BufferCore::new(&cfg);
        core.set_auto_reclaim(true);
        Arc::new(DelegatedBuffer::new(core, &cfg))
    }

    #[test]
    fn sequential_inserts() {
        let b = make();
        let a = b.insert(RecordKind::Filler, 1, Lsn::ZERO, &[1; 8]);
        let c = b.insert(RecordKind::Filler, 1, Lsn::ZERO, &[2; 100]);
        assert_eq!(a, Lsn::ZERO);
        assert_eq!(c, Lsn(on_log_size(8) as u64));
        assert_eq!(
            b.core().released_lsn(),
            Lsn((on_log_size(8) + on_log_size(100)) as u64)
        );
        assert_eq!(b.kind(), BufferKind::Delegated);
    }

    #[test]
    fn dense_stream_under_contention() {
        let b = make();
        let threads = 16usize;
        let per = 500usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..per {
                        let size = 8 + (i % 11) * 16;
                        b.insert(
                            RecordKind::Filler,
                            t as u64,
                            Lsn::ZERO,
                            &vec![t as u8; size],
                        );
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, (threads * per) as u64);
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
    }

    #[test]
    fn bimodal_skew_with_huge_outliers() {
        // The Figure-11 stress: 48 B records with 1-in-60 outliers of 64 kiB
        // — the workload where CD's in-order release stalls but CDME doesn't.
        let b = make();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..300usize {
                        if i % 60 == 0 {
                            b.insert(RecordKind::Filler, t as u64, Lsn::ZERO, &vec![9; 1 << 15]);
                        } else {
                            b.insert(RecordKind::Filler, t as u64, Lsn::ZERO, &[1; 16]);
                        }
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(s.inserts, 8 * 300);
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
    }

    #[test]
    fn delegation_happens_under_contention() {
        let b = make();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for i in 0..1000usize {
                        // Mix of sizes ensures some threads finish in the
                        // shadow of slower ones.
                        let size = if i % 13 == 0 { 4096 } else { 16 };
                        b.insert(RecordKind::Filler, t as u64, Lsn::ZERO, &vec![7; size]);
                    }
                });
            }
        });
        let s = b.core().stats.snapshot();
        assert_eq!(b.core().released_lsn(), Lsn(s.bytes));
    }
}
