//! Algorithm 3: decoupled buffer fill (D).
//!
//! The mutex is held only for LSN generation; the thread releases it before
//! copying, so buffer fills pipeline freely. The price is a non-trivial
//! release: records must be *published* in LSN order (recovery stops at the
//! first gap, §5.2), so each thread waits until the release watermark reaches
//! its own start before bumping it — "the release stage uses the implicit
//! queuing of the release_lsn to avoid expensive atomic operations" (§A.1).

use super::{BufferCore, BufferKind, InsertLock, LogBuffer, LogSlot, LsnAlloc, SlotFinish};
use crate::lsn::Lsn;
use crate::record::{on_log_size, RecordKind};
use std::sync::Arc;

/// The decoupled-fill log buffer (paper Algorithm 3).
pub struct DecoupledBuffer {
    core: Arc<BufferCore>,
    lock: InsertLock,
    alloc: LsnAlloc,
}

impl DecoupledBuffer {
    /// Wrap `core` with decoupled-fill semantics.
    pub fn new(core: Arc<BufferCore>) -> Self {
        let start = core.released_lsn();
        DecoupledBuffer {
            core,
            lock: InsertLock::new(),
            alloc: LsnAlloc::new(start),
        }
    }
}

impl LogBuffer for DecoupledBuffer {
    fn reserve(&self, kind: RecordKind, txn: u64, prev: Lsn, payload_len: usize) -> LogSlot<'_> {
        super::check_payload_len(payload_len);
        self.core.note_reserve_start();
        let len = on_log_size(payload_len) as u64;

        // --- acquire: mutex covers only LSN generation + back-pressure ---
        let t_acq = self.core.stats.phase_start();
        self.lock.lock();
        self.core.stats.phase_acquire(t_acq);
        self.core.stats.record_direct();
        // SAFETY: insert lock held.
        let start = unsafe { self.alloc.reserve(len) };
        self.core.wait_for_space(start.advance(len));
        self.lock.unlock(); // Algorithm 3, line 4: release immediately

        // The caller fills fully in parallel with other inserts; releasing
        // the slot publishes in LSN order.
        self.core
            .begin_fill(start, kind, txn, prev, payload_len, SlotFinish::InOrder)
    }

    fn core(&self) -> &BufferCore {
        &self.core
    }

    fn kind(&self) -> BufferKind {
        BufferKind::Decoupled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogConfig;
    use crate::record::on_log_size;

    fn make() -> Arc<DecoupledBuffer> {
        let core = BufferCore::new(&LogConfig::default().with_buffer_size(1 << 18));
        core.set_auto_reclaim(true);
        Arc::new(DecoupledBuffer::new(core))
    }

    #[test]
    fn single_thread_matches_baseline_layout() {
        let b = make();
        let a = b.insert(RecordKind::Filler, 1, Lsn::ZERO, &[0; 88]);
        let c = b.insert(RecordKind::Commit, 1, a, &[]);
        assert_eq!(a, Lsn::ZERO);
        assert_eq!(c, Lsn(on_log_size(88) as u64));
        assert_eq!(b.kind(), BufferKind::Decoupled);
    }

    #[test]
    fn parallel_fills_release_in_order() {
        let b = make();
        let threads = 8;
        let per = 400;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    // Mixed sizes stress the in-order release path.
                    for i in 0..per {
                        let size = 24 + ((t * 31 + i * 7) % 480);
                        let payload = vec![t as u8; size];
                        b.insert(RecordKind::Filler, t as u64, Lsn::ZERO, &payload);
                    }
                });
            }
        });
        let snap = b.core().stats.snapshot();
        assert_eq!(snap.inserts, (threads * per) as u64);
        // released watermark equals total bytes inserted (no gaps, no holes)
        assert_eq!(b.core().released_lsn(), Lsn(snap.bytes));
    }

    #[test]
    fn large_record_does_not_block_small_followers_fills() {
        // Can't observe overlap directly without timing hooks; instead verify
        // a big record interleaved with small ones keeps the stream intact.
        let b = make();
        std::thread::scope(|s| {
            let b1 = Arc::clone(&b);
            s.spawn(move || {
                let big = vec![9u8; 60_000];
                for _ in 0..20 {
                    b1.insert(RecordKind::Filler, 1, Lsn::ZERO, &big);
                }
            });
            let b2 = Arc::clone(&b);
            s.spawn(move || {
                for _ in 0..2000 {
                    b2.insert(RecordKind::Filler, 2, Lsn::ZERO, &[1u8; 8]);
                }
            });
        });
        let snap = b.core().stats.snapshot();
        assert_eq!(snap.inserts, 2020);
        assert_eq!(b.core().released_lsn(), Lsn(snap.bytes));
    }
}
