//! Sequential log scans for recovery.
//!
//! Recovery "must stop at the first gap it encounters" (§5.2): the scan ends
//! at the first byte run that does not decode as a valid record — a zeroed
//! region, torn header, or checksum mismatch. Everything before that point is
//! the durable log prefix.

use crate::device::LogDevice;
use crate::error::{LogError, Result};
use crate::lsn::Lsn;
use crate::record::{Record, RecordHeader, HEADER_SIZE};
use std::sync::Arc;

/// A sequential reader over a log device.
pub struct LogReader {
    device: Arc<dyn LogDevice>,
    at: Lsn,
    limit: u64,
    /// When true, a structurally valid header whose payload fails its
    /// checksum raises [`LogError::Corrupt`] instead of ending the scan.
    strict: bool,
}

impl std::fmt::Debug for LogReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogReader")
            .field("at", &self.at)
            .field("limit", &self.limit)
            .finish()
    }
}

impl LogReader {
    /// Scan `device` from its low-water mark — LSN 0 for a device that never
    /// truncates, the first retained record boundary after log truncation.
    pub fn new(device: Arc<dyn LogDevice>) -> LogReader {
        let limit = device.len();
        let at = device.low_water();
        LogReader {
            device,
            at,
            limit,
            strict: false,
        }
    }

    /// Scan from a specific LSN (e.g. a checkpoint's redo point).
    pub fn from_lsn(device: Arc<dyn LogDevice>, start: Lsn) -> LogReader {
        let limit = device.len();
        LogReader {
            device,
            at: start,
            limit,
            strict: false,
        }
    }

    /// Enable strict mode: corruption mid-log is an error, not end-of-log.
    pub fn strict(mut self) -> LogReader {
        self.strict = true;
        self
    }

    /// Current scan position.
    pub fn position(&self) -> Lsn {
        self.at
    }

    /// Read the next record, or `None` at the end of the valid prefix.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        if self.at.raw() + HEADER_SIZE as u64 > self.limit {
            return Ok(None);
        }
        let mut hbuf = [0u8; HEADER_SIZE];
        let n = self.device.read_at(self.at.raw(), &mut hbuf)?;
        if n < HEADER_SIZE {
            return Ok(None);
        }
        let header = match RecordHeader::decode(&hbuf) {
            Some(h) => h,
            None => return Ok(None), // first gap: end of durable prefix
        };
        let end = self.at.raw() + header.total_len as u64;
        if end > self.limit {
            // Record extends past the durable tail: torn write.
            return Ok(None);
        }
        let mut payload = vec![0u8; header.payload_len as usize];
        if header.payload_len > 0 {
            let n = self
                .device
                .read_at(self.at.raw() + HEADER_SIZE as u64, &mut payload)?;
            if n < payload.len() {
                return Ok(None);
            }
        }
        if !header.verify(&payload) {
            if self.strict {
                return Err(LogError::Corrupt {
                    at: self.at,
                    reason: "payload checksum mismatch".into(),
                });
            }
            return Ok(None);
        }
        let rec = Record {
            lsn: self.at,
            header,
            payload,
        };
        self.at = Lsn(end);
        Ok(Some(rec))
    }

    /// Collect every record in the valid prefix.
    pub fn read_all(mut self) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl Iterator for LogReader {
    type Item = Result<Record>;
    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::record::{on_log_size, RecordKind};
    use std::time::Duration;

    fn device_with_records(payloads: &[&[u8]]) -> Arc<SimDevice> {
        let d = Arc::new(SimDevice::new(Duration::ZERO));
        let mut prev = Lsn::ZERO;
        for (i, p) in payloads.iter().enumerate() {
            let h = RecordHeader::new(RecordKind::Update, i as u64, prev, p);
            let mut bytes = h.encode().to_vec();
            bytes.extend_from_slice(p);
            bytes.resize(h.total_len as usize, 0);
            prev = Lsn(d.len());
            d.append(&bytes).unwrap();
        }
        d
    }

    #[test]
    fn reads_all_records_in_order() {
        let d = device_with_records(&[b"first", b"second record", b""]);
        let recs = LogReader::new(d).read_all().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].payload, b"first");
        assert_eq!(recs[1].payload, b"second record");
        assert_eq!(recs[2].payload, b"");
        assert_eq!(recs[0].lsn, Lsn::ZERO);
        assert_eq!(recs[1].lsn, Lsn(on_log_size(5) as u64));
        // Undo chain threading.
        assert_eq!(recs[1].header.prev_lsn, Lsn::ZERO);
        assert_eq!(recs[2].header.prev_lsn, recs[1].lsn);
    }

    #[test]
    fn stops_at_torn_tail() {
        let d = device_with_records(&[b"complete"]);
        // Append half a record.
        let h = RecordHeader::new(RecordKind::Update, 9, Lsn::ZERO, b"torn away payload");
        let bytes = h.encode();
        d.append(&bytes[..16]).unwrap();
        let recs = LogReader::new(d).read_all().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"complete");
    }

    #[test]
    fn stops_at_checksum_mismatch_tolerant() {
        let d = device_with_records(&[b"good", b"going to be corrupted"]);
        // Flip a payload byte of the second record.
        let first_len = on_log_size(4) as u64;
        let mut contents = d.contents();
        contents[(first_len as usize) + HEADER_SIZE + 3] ^= 0xFF;
        let d2 = Arc::new(SimDevice::new(Duration::ZERO));
        d2.append(&contents).unwrap();
        let recs = LogReader::new(d2.clone()).read_all().unwrap();
        assert_eq!(recs.len(), 1);
        // Strict mode errors instead.
        let err = LogReader::new(d2).strict().read_all();
        assert!(matches!(err, Err(LogError::Corrupt { .. })));
    }

    #[test]
    fn empty_device_yields_nothing() {
        let d = Arc::new(SimDevice::new(Duration::ZERO));
        assert!(LogReader::new(d).read_all().unwrap().is_empty());
    }

    #[test]
    fn from_lsn_skips_prefix() {
        let d = device_with_records(&[b"first", b"second"]);
        let start = Lsn(on_log_size(5) as u64);
        let mut r = LogReader::from_lsn(d, start);
        assert_eq!(r.position(), start);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.payload, b"second");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn iterator_interface() {
        let d = device_with_records(&[b"a", b"b", b"c"]);
        let n = LogReader::new(d).filter(|r| r.is_ok()).count();
        assert_eq!(n, 3);
    }
}
