//! An unbounded MPSC channel built on [`RtCondvar`], so blocking receives
//! are runtime-aware: real threads park in the OS, sim actors park in the
//! scheduler under virtual time. Replaces `std::sync::mpsc` everywhere a
//! receiver may block inside a simulated cluster.

use super::{monotonic_ns, RtCondvar};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

struct Inner<T> {
    q: VecDeque<T>,
    senders: usize,
    rx_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cv: RtCondvar,
}

/// Sending half of [`rt_channel`]. Cloneable; the channel disconnects when
/// every sender is dropped.
pub struct RtSender<T> {
    sh: Arc<Shared<T>>,
}

/// Receiving half of [`rt_channel`].
pub struct RtReceiver<T> {
    sh: Arc<Shared<T>>,
}

/// An unbounded runtime-aware MPSC channel.
pub fn rt_channel<T>() -> (RtSender<T>, RtReceiver<T>) {
    let sh = Arc::new(Shared {
        inner: Mutex::new(Inner {
            q: VecDeque::new(),
            senders: 1,
            rx_alive: true,
        }),
        cv: RtCondvar::new(),
    });
    (
        RtSender {
            sh: Arc::clone(&sh),
        },
        RtReceiver { sh },
    )
}

impl<T> RtSender<T> {
    /// Enqueue `v`. Returns `false` (dropping `v`) if the receiver is gone.
    pub fn send(&self, v: T) -> bool {
        {
            let mut g = self.sh.inner.lock();
            if !g.rx_alive {
                return false;
            }
            g.q.push_back(v);
        }
        self.sh.cv.notify_all();
        true
    }
}

impl<T> Clone for RtSender<T> {
    fn clone(&self) -> Self {
        self.sh.inner.lock().senders += 1;
        RtSender {
            sh: Arc::clone(&self.sh),
        }
    }
}

impl<T> Drop for RtSender<T> {
    fn drop(&mut self) {
        let last = {
            let mut g = self.sh.inner.lock();
            g.senders -= 1;
            g.senders == 0
        };
        if last {
            self.sh.cv.notify_all();
        }
    }
}

impl<T> Drop for RtReceiver<T> {
    fn drop(&mut self) {
        self.sh.inner.lock().rx_alive = false;
    }
}

impl<T> RtReceiver<T> {
    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.sh.inner.lock().q.pop_front()
    }

    /// Block until a message arrives; `None` once the channel is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Option<T> {
        let mut g = self.sh.inner.lock();
        loop {
            if let Some(v) = g.q.pop_front() {
                return Some(v);
            }
            if g.senders == 0 {
                return None;
            }
            g = self.sh.cv.wait(&self.sh.inner, g);
        }
    }

    /// Block up to `timeout` for a message; `None` on timeout *or*
    /// disconnect (check [`RtReceiver::is_disconnected`] to tell apart).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline =
            monotonic_ns().saturating_add(u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX));
        let mut g = self.sh.inner.lock();
        loop {
            if let Some(v) = g.q.pop_front() {
                return Some(v);
            }
            let now = monotonic_ns();
            if g.senders == 0 {
                // Disconnected and empty. Still wait out the remaining
                // timeout before reporting `None`: callers poll in
                // `while !stop { recv_timeout(poll) }` loops, and an
                // instant return would turn them into hot spins — under
                // the sim runtime a spin never yields the run token, so
                // the whole cluster would livelock.
                if now < deadline {
                    let (g2, _) = self.sh.cv.wait_for(
                        &self.sh.inner,
                        g,
                        Duration::from_nanos(deadline - now),
                    );
                    g = g2;
                    if let Some(v) = g.q.pop_front() {
                        return Some(v);
                    }
                }
                return None;
            }
            if now >= deadline {
                return None;
            }
            let (g2, _) =
                self.sh
                    .cv
                    .wait_for(&self.sh.inner, g, Duration::from_nanos(deadline - now));
            g = g2;
        }
    }

    /// Take every queued message at once without blocking. Connection
    /// teardown uses this to flush a closing socket's request queue in one
    /// deterministic step — the alternative (`try_recv` until `None`) races
    /// with in-flight `send`s, so a message enqueued between the last pop
    /// and the receiver's drop would be silently stranded mid-shutdown.
    pub fn drain(&self) -> Vec<T> {
        let mut g = self.sh.inner.lock();
        g.q.drain(..).collect()
    }

    /// Whether every sender has been dropped (pending messages may remain).
    pub fn is_disconnected(&self) -> bool {
        self.sh.inner.lock().senders == 0
    }
}

impl<T> std::fmt::Debug for RtSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RtSender(..)")
    }
}

impl<T> std::fmt::Debug for RtReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RtReceiver(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = rt_channel::<u32>();
        assert!(tx.send(1));
        assert!(tx.send(2));
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.try_recv(), None);
        drop(tx);
        assert_eq!(rx.recv(), None, "disconnect drains to None");
        assert!(rx.is_disconnected());
    }

    #[test]
    fn drain_takes_everything_queued() {
        let (tx, rx) = rt_channel::<u32>();
        for i in 0..4 {
            assert!(tx.send(i));
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3]);
        assert_eq!(rx.try_recv(), None);
        assert!(tx.send(9), "channel still usable after drain");
        assert_eq!(rx.drain(), vec![9]);
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = rt_channel::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), None);
        assert!(!rx.is_disconnected());
        drop(tx);
    }

    #[test]
    fn dropped_receiver_rejects_sends() {
        let (tx, rx) = rt_channel::<u32>();
        drop(rx);
        assert!(!tx.send(9));
    }

    #[test]
    fn works_under_sim() {
        let rt = Runtime::sim(11);
        let g = rt.enter();
        let (tx, rx) = rt_channel::<u64>();
        let h = rt.spawn("producer", move || {
            for i in 0..5u64 {
                crate::runtime::sleep(Duration::from_micros(50));
                assert!(tx.send(i));
            }
        });
        let mut got = Vec::new();
        while got.len() < 5 {
            if let Some(v) = rx.recv_timeout(Duration::from_millis(1)) {
                got.push(v);
            }
        }
        h.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        drop(g);
    }
}
