//! Virtualizable runtime: time, sleeping, thread spawning, blocking waits
//! and randomness behind one seam.
//!
//! Every place the logging stack used to call the OS directly — spawning
//! daemons, sleeping, reading the monotonic clock, blocking on condition
//! variables — now routes through this module. Two implementations share
//! the seam:
//!
//! * **Real** (the default): thin wrappers over `std::time` / `std::thread`
//!   and the `parking_lot` condvar. Zero behavior change for production
//!   paths; `Runtime::default()` is real.
//! * **Sim**: a seeded, cooperative, single-token scheduler over real OS
//!   threads with a *virtual* clock that jumps to the next scheduled
//!   wakeup. One seed ⇒ one reproducible whole-cluster history
//!   ([`Runtime::history`] hashes every scheduling decision).
//!
//! The sim is selected *per thread*: a thread registered as a sim actor
//! (via [`Runtime::spawn`] on a sim runtime, or [`Runtime::enter`]) takes
//! the virtual path in every free function and [`RtCondvar`] wait;
//! unregistered threads take the real path. This keeps constructors free
//! of runtime plumbing — only `spawn` and sim entry need the handle.
//!
//! ## Determinism contract (sim mode)
//!
//! All actors are real OS threads, but exactly one holds the *run token*
//! at any instant; the rest are parked. An actor only gives up the token
//! at a runtime yield point (`sleep`, `yield_now`, an [`RtCondvar`] wait,
//! a channel wait, `join`). The scheduler picks the next runnable actor
//! with the seeded RNG, so the entire interleaving is a pure function of
//! the seed — provided user code between yield points is itself
//! deterministic (no iteration over `HashMap`s that feed decisions, no
//! address-keyed logic, no OS clock reads outside this module).

mod channel;
mod sim;

pub use channel::{rt_channel, RtReceiver, RtSender};

use sim::SimState;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Thread-local sim registration
// ---------------------------------------------------------------------------

struct SimTls {
    st: Arc<SimState>,
    id: u64,
    /// Per-actor xorshift state (seeded from the sim seed + actor id) that
    /// backs `fast_rand` so randomized probing is reproducible.
    rng: u64,
}

thread_local! {
    static SIM_TLS: RefCell<Option<SimTls>> = const { RefCell::new(None) };
}

fn tls_sim() -> Option<(Arc<SimState>, u64)> {
    SIM_TLS.with(|t| t.borrow().as_ref().map(|s| (Arc::clone(&s.st), s.id)))
}

fn tls_enter(st: Arc<SimState>, id: u64, rng_seed: u64) {
    SIM_TLS.with(|t| {
        let mut slot = t.borrow_mut();
        assert!(slot.is_none(), "thread is already a sim actor");
        *slot = Some(SimTls {
            st,
            id,
            rng: rng_seed | 1,
        });
    });
}

fn tls_exit() {
    SIM_TLS.with(|t| *t.borrow_mut() = None);
}

/// Deterministic per-actor random word for sim threads; `None` on real
/// threads (callers fall back to their own seeding).
pub(crate) fn sim_thread_rand() -> Option<u64> {
    SIM_TLS.with(|t| {
        t.borrow_mut().as_mut().map(|s| {
            s.rng ^= s.rng << 13;
            s.rng ^= s.rng >> 7;
            s.rng ^= s.rng << 17;
            s.rng
        })
    })
}

// ---------------------------------------------------------------------------
// Free functions: the clock / sleep seam
// ---------------------------------------------------------------------------

fn real_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Monotonic nanoseconds since an arbitrary process epoch. Sim actors read
/// the virtual clock; everyone else reads the OS monotonic clock.
#[inline]
pub fn monotonic_ns() -> u64 {
    if let Some((st, _)) = tls_sim() {
        return st.now_ns();
    }
    real_epoch().elapsed().as_nanos() as u64
}

/// Sleep for `d`. Sim actors advance virtual time (yielding the run token);
/// real threads call the OS.
pub fn sleep(d: Duration) {
    if let Some((st, me)) = tls_sim() {
        // A zero sleep is a no-op, not a yield — code paths that "sleep"
        // for a configured-zero latency (device models) must not become
        // scheduling points, or they would park while holding locks they
        // never expected to hold across a wait.
        if !d.is_zero() {
            st.sleep_virtual(me, dur_ns(d));
        }
        return;
    }
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// Yield the CPU. In sim mode this is a *tiny virtual sleep* rather than a
/// pure yield: a spinning actor must let the virtual clock reach other
/// actors' wakeups, or it would livelock the simulation.
pub fn yield_now() {
    if let Some((st, me)) = tls_sim() {
        st.yield_virtual(me);
        return;
    }
    std::thread::yield_now();
}

/// Sleep for `d` with sub-millisecond accuracy (coarse OS sleep for the
/// bulk, then a spin). Device latency models need this; plain OS sleeps
/// routinely overshoot by a scheduler quantum. Virtual (exact) in sim.
pub fn precise_sleep(d: Duration) {
    if let Some((st, me)) = tls_sim() {
        if !d.is_zero() {
            st.sleep_virtual(me, dur_ns(d));
        }
        return;
    }
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    if d > Duration::from_millis(2) {
        std::thread::sleep(d - Duration::from_millis(1));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

// ---------------------------------------------------------------------------
// RtCondvar: runtime-aware condition variable
// ---------------------------------------------------------------------------

static NEXT_CV_ID: AtomicU64 = AtomicU64::new(1);

/// A condition variable that blocks through the runtime.
///
/// Real threads wait on the embedded `parking_lot` condvar. Sim actors
/// park in the scheduler instead (registering interest *before* the guard
/// drops, so wakeups cannot be lost), and re-acquire the mutex by
/// `try_lock` + virtual yield — never an OS block, which would wedge the
/// single-token scheduler.
///
/// Unlike `parking_lot::Condvar`, waits take the guard *by value* and need
/// the owning [`parking_lot::Mutex`] so the sim path can re-lock it.
pub struct RtCondvar {
    real: parking_lot::Condvar,
    sim_id: OnceLock<u64>,
}

impl RtCondvar {
    /// New condvar, usable from both runtimes.
    pub const fn new() -> Self {
        RtCondvar {
            real: parking_lot::Condvar::new(),
            sim_id: OnceLock::new(),
        }
    }

    fn id(&self) -> u64 {
        *self
            .sim_id
            .get_or_init(|| NEXT_CV_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Block until notified. Returns the re-acquired guard.
    pub fn wait<'a, T>(
        &self,
        mutex: &'a parking_lot::Mutex<T>,
        mut guard: parking_lot::MutexGuard<'a, T>,
    ) -> parking_lot::MutexGuard<'a, T> {
        if let Some((st, me)) = tls_sim() {
            let cv = self.id();
            drop(guard);
            st.cv_wait(me, cv, None);
            return sim_relock(&st, me, mutex);
        }
        self.real.wait(&mut guard);
        guard
    }

    /// Block until notified or `timeout` elapses. Returns the re-acquired
    /// guard and whether the wait timed out.
    pub fn wait_for<'a, T>(
        &self,
        mutex: &'a parking_lot::Mutex<T>,
        mut guard: parking_lot::MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (parking_lot::MutexGuard<'a, T>, bool) {
        if let Some((st, me)) = tls_sim() {
            let cv = self.id();
            let deadline = st.now_ns().saturating_add(dur_ns(timeout));
            drop(guard);
            let timed_out = st.cv_wait(me, cv, Some(deadline));
            let guard = sim_relock(&st, me, mutex);
            return (guard, timed_out);
        }
        let r = self.real.wait_for(&mut guard, timeout);
        (guard, r.timed_out())
    }

    /// Wake one waiter (deterministically the lowest-id sim actor, if any).
    pub fn notify_one(&self) {
        if let Some((st, _)) = tls_sim() {
            if let Some(&id) = self.sim_id.get() {
                st.cv_notify(id, false);
            }
        }
        self.real.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        if let Some((st, _)) = tls_sim() {
            if let Some(&id) = self.sim_id.get() {
                st.cv_notify(id, true);
            }
        }
        self.real.notify_all();
    }
}

fn sim_relock<'a, T>(
    st: &Arc<SimState>,
    me: u64,
    mutex: &'a parking_lot::Mutex<T>,
) -> parking_lot::MutexGuard<'a, T> {
    // The notifier may still hold the mutex across its own next yield
    // point; an OS-blocking lock here (while we hold the run token) would
    // deadlock the whole sim. Spin through virtual yields instead.
    loop {
        if let Some(g) = mutex.try_lock() {
            return g;
        }
        st.yield_virtual(me);
    }
}

impl Default for RtCondvar {
    fn default() -> Self {
        RtCondvar::new()
    }
}

impl fmt::Debug for RtCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RtCondvar")
    }
}

// ---------------------------------------------------------------------------
// JoinHandle
// ---------------------------------------------------------------------------

/// Handle to a runtime-spawned thread. In sim mode, `join` first parks the
/// calling actor in the scheduler until the target actor finishes, then
/// joins the OS thread (propagating panics either way).
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    sim: Option<(Arc<SimState>, u64)>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((st, target)) = &self.sim {
            if let Some((cur, me)) = tls_sim() {
                if Arc::ptr_eq(&cur, st) {
                    cur.join_wait(me, *target);
                }
            }
        }
        self.inner.join()
    }
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JoinHandle(..)")
    }
}

// ---------------------------------------------------------------------------
// Runtime handle
// ---------------------------------------------------------------------------

/// Handle selecting which runtime a component's threads run under.
///
/// `Default` is the real runtime. Cloning is cheap; clones of a sim
/// runtime share one scheduler (one cluster = one seed = one history).
#[derive(Clone, Default)]
pub struct Runtime {
    inner: RuntimeInner,
}

#[derive(Clone, Default)]
enum RuntimeInner {
    #[default]
    Real,
    Sim(Arc<SimState>),
}

impl Runtime {
    /// The real runtime: OS clock, OS sleeps, `std::thread` spawns.
    pub fn real() -> Runtime {
        Runtime::default()
    }

    /// A fresh simulated runtime driven by `seed`.
    pub fn sim(seed: u64) -> Runtime {
        Runtime {
            inner: RuntimeInner::Sim(Arc::new(SimState::new(seed))),
        }
    }

    /// Whether this is a simulated runtime.
    pub fn is_sim(&self) -> bool {
        matches!(self.inner, RuntimeInner::Sim(_))
    }

    /// Spawn a named thread under this runtime. Under sim, the new thread
    /// becomes a scheduler actor: it runs only when granted the run token,
    /// and the spawner must itself be a sim actor.
    pub fn spawn<T, F>(&self, name: &str, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match &self.inner {
            RuntimeInner::Real => {
                let inner = std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(f)
                    .expect("spawn thread");
                JoinHandle { inner, sim: None }
            }
            RuntimeInner::Sim(st) => {
                let id = st.alloc_actor(name);
                let rng_seed = st.actor_seed(id);
                let st2 = Arc::clone(st);
                let inner = std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(move || {
                        tls_enter(Arc::clone(&st2), id, rng_seed);
                        st2.wait_for_token(id);
                        let _done = ActorDoneGuard { st: st2, id };
                        f()
                    })
                    .expect("spawn sim actor");
                JoinHandle {
                    inner,
                    sim: Some((Arc::clone(st), id)),
                }
            }
        }
    }

    /// Register the *current* thread as a sim actor (the "main" actor that
    /// drives construction and the workload). No-op guard on the real
    /// runtime. All sim actors spawned inside must be joined before the
    /// guard drops.
    pub fn enter(&self) -> SimGuard {
        match &self.inner {
            RuntimeInner::Real => SimGuard { st: None, id: 0 },
            RuntimeInner::Sim(st) => {
                let id = st.register_main("main");
                tls_enter(Arc::clone(st), id, st.actor_seed(id));
                SimGuard {
                    st: Some(Arc::clone(st)),
                    id,
                }
            }
        }
    }

    /// Fold a semantic marker into the sim history (no-op on real). Use for
    /// externally meaningful events — commits acked, faults injected — so
    /// histories diverge as soon as behavior does, not only scheduling.
    pub fn note(&self, msg: &str) {
        if let RuntimeInner::Sim(st) = &self.inner {
            st.note(msg.as_bytes());
        }
    }

    /// `(hash, events)` of the sim history so far: an order-sensitive FNV-1a
    /// over every scheduling decision and [`Runtime::note`]. `(0, 0)` on
    /// the real runtime. Two runs of the same seed and workload must return
    /// identical values — that is the determinism contract.
    pub fn history(&self) -> (u64, u64) {
        match &self.inner {
            RuntimeInner::Real => (0, 0),
            RuntimeInner::Sim(st) => st.history(),
        }
    }

    /// The seed (sim only).
    pub fn seed(&self) -> Option<u64> {
        match &self.inner {
            RuntimeInner::Real => None,
            RuntimeInner::Sim(st) => Some(st.seed()),
        }
    }
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            RuntimeInner::Real => f.write_str("Runtime::Real"),
            RuntimeInner::Sim(st) => write!(f, "Runtime::Sim(seed={})", st.seed()),
        }
    }
}

struct ActorDoneGuard {
    st: Arc<SimState>,
    id: u64,
}

impl Drop for ActorDoneGuard {
    fn drop(&mut self) {
        tls_exit();
        self.st.finish(self.id);
    }
}

/// Guard returned by [`Runtime::enter`]; dropping it deregisters the main
/// actor. Panics (when not already panicking) if other sim actors are
/// still live — the sim must be quiesced before leaving it.
pub struct SimGuard {
    st: Option<Arc<SimState>>,
    id: u64,
}

impl Drop for SimGuard {
    fn drop(&mut self) {
        if let Some(st) = self.st.take() {
            tls_exit();
            st.exit_main(self.id);
        }
    }
}

impl fmt::Debug for SimGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SimGuard")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn real_clock_is_monotonic() {
        let a = monotonic_ns();
        sleep(Duration::from_millis(1));
        let b = monotonic_ns();
        assert!(b > a);
    }

    #[test]
    fn sim_clock_is_virtual() {
        let rt = Runtime::sim(7);
        let g = rt.enter();
        let a = monotonic_ns();
        sleep(Duration::from_secs(3600)); // an hour passes instantly
        let b = monotonic_ns();
        assert_eq!(b - a, 3_600_000_000_000);
        drop(g);
    }

    #[test]
    fn sim_spawn_join_and_interleave() {
        let rt = Runtime::sim(42);
        let g = rt.enter();
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&counter);
            handles.push(rt.spawn("worker", move || {
                for _ in 0..10 {
                    c.fetch_add(1, Ordering::Relaxed);
                    yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        drop(g);
    }

    #[test]
    fn sim_condvar_wakes_and_times_out() {
        let rt = Runtime::sim(3);
        let g = rt.enter();
        let pair = Arc::new((parking_lot::Mutex::new(false), RtCondvar::new()));
        let p2 = Arc::clone(&pair);
        let h = rt.spawn("setter", move || {
            sleep(Duration::from_millis(5));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            done = cv.wait(m, done);
        }
        drop(done);
        h.join().unwrap();
        // Timed wait with nobody to notify: virtual time advances, no hang.
        let before = monotonic_ns();
        let (guard, timed_out) = cv.wait_for(m, m.lock(), Duration::from_millis(50));
        drop(guard);
        assert!(timed_out);
        assert!(monotonic_ns() - before >= 50_000_000);
        drop(g);
    }

    #[test]
    fn same_seed_same_history() {
        fn run(seed: u64) -> (u64, u64) {
            let rt = Runtime::sim(seed);
            let g = rt.enter();
            let mut handles = Vec::new();
            for i in 0..3 {
                let rt2 = rt.clone();
                handles.push(rt.spawn("w", move || {
                    for k in 0..5 {
                        sleep(Duration::from_micros(10 + i * 3));
                        rt2.note(&format!("w{i}:{k}"));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let hist = rt.history();
            drop(g);
            hist
        }
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed must replay byte-identically");
        let c = run(100);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn sim_rand_is_deterministic_per_seed() {
        fn draw(seed: u64) -> Vec<u64> {
            let rt = Runtime::sim(seed);
            let g = rt.enter();
            let out: Vec<u64> = (0..8).map(|_| sim_thread_rand().unwrap()).collect();
            drop(g);
            out
        }
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
        assert!(
            sim_thread_rand().is_none(),
            "real threads take their own path"
        );
    }
}
