//! The simulated scheduler: a single run token over real OS threads, a
//! virtual clock, a seeded RNG, and a rolling history hash.
//!
//! Every actor is an OS thread, but at most one is ever unparked: the one
//! holding the run token (`Sched::running`). All transitions go through
//! the one `sched` mutex, so cross-actor memory is totally ordered — data
//! races cannot introduce nondeterminism. When nothing is runnable the
//! clock jumps to the earliest pending deadline (a sleep wakeup or a timed
//! condvar wait); if there is none, the sim is deadlocked and panics with
//! an actor dump.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A sim "yield" is a tiny virtual sleep, not a pure reschedule: spinning
/// actors must let the clock reach sleepers' deadlines or they would
/// livelock the simulation.
const YIELD_NS: u64 = 200;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Runnable,
    Running,
    Sleeping { wake_at: u64 },
    CvWait { cv: u64, deadline: Option<u64> },
    JoinWait { target: u64 },
    Done,
}

#[derive(Debug)]
struct Actor {
    name: String,
    run: RunState,
    /// Why the last `CvWait` ended: `true` = deadline hit, not a notify.
    timed_out: bool,
}

struct Sched {
    now_ns: u64,
    rng: u64,
    next_actor: u64,
    actors: BTreeMap<u64, Actor>,
    running: Option<u64>,
    hash: u64,
    events: u64,
}

pub(crate) struct SimState {
    sched: Mutex<Sched>,
    cv: Condvar,
    seed: u64,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Sched {
    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng >> 12;
        self.rng ^= self.rng << 25;
        self.rng ^= self.rng >> 27;
        self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    fn actor_mut(&mut self, id: u64) -> &mut Actor {
        self.actors.get_mut(&id).expect("unknown sim actor")
    }

    /// Pick the next actor to run; advance the virtual clock if nothing is
    /// runnable. Panics on deadlock (non-Done actors, no deadline).
    fn schedule(&mut self) {
        debug_assert!(self.running.is_none());
        loop {
            let runnable: Vec<u64> = self
                .actors
                .iter()
                .filter(|(_, a)| a.run == RunState::Runnable)
                .map(|(&id, _)| id)
                .collect();
            if !runnable.is_empty() {
                let pick = runnable[(self.next_rand() % runnable.len() as u64) as usize];
                self.actor_mut(pick).run = RunState::Running;
                self.running = Some(pick);
                self.events += 1;
                let (id_b, now_b) = (pick.to_le_bytes(), self.now_ns.to_le_bytes());
                self.fold(&id_b);
                self.fold(&now_b);
                return;
            }
            // Nothing runnable: jump the clock to the earliest deadline.
            let next = self
                .actors
                .values()
                .filter_map(|a| match a.run {
                    RunState::Sleeping { wake_at } => Some(wake_at),
                    RunState::CvWait {
                        deadline: Some(d), ..
                    } => Some(d),
                    _ => None,
                })
                .min();
            match next {
                Some(t) => {
                    self.now_ns = self.now_ns.max(t);
                    let now = self.now_ns;
                    for a in self.actors.values_mut() {
                        match a.run {
                            RunState::Sleeping { wake_at } if wake_at <= now => {
                                a.run = RunState::Runnable;
                                a.timed_out = false;
                            }
                            RunState::CvWait {
                                deadline: Some(d), ..
                            } if d <= now => {
                                a.run = RunState::Runnable;
                                a.timed_out = true;
                            }
                            _ => {}
                        }
                    }
                }
                None => {
                    if self.actors.values().all(|a| a.run == RunState::Done) {
                        return; // quiesced: the last actor just finished
                    }
                    let dump: Vec<String> = self
                        .actors
                        .iter()
                        .filter(|(_, a)| a.run != RunState::Done)
                        .map(|(id, a)| format!("  actor {} ({}): {:?}", id, a.name, a.run))
                        .collect();
                    panic!(
                        "sim deadlock at t={}ns — no runnable actor and no pending deadline:\n{}",
                        self.now_ns,
                        dump.join("\n")
                    );
                }
            }
        }
    }
}

impl SimState {
    pub(crate) fn new(seed: u64) -> SimState {
        SimState {
            sched: Mutex::new(Sched {
                now_ns: 0,
                rng: splitmix64(seed) | 1,
                next_actor: 0,
                actors: BTreeMap::new(),
                running: None,
                hash: FNV_OFFSET,
                events: 0,
            }),
            cv: Condvar::new(),
            seed,
        }
    }

    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    pub(crate) fn actor_seed(&self, id: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(id.wrapping_add(0x5151)))
    }

    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.lock().now_ns
    }

    pub(crate) fn history(&self) -> (u64, u64) {
        let s = self.lock();
        (s.hash, s.events)
    }

    pub(crate) fn note(&self, bytes: &[u8]) {
        let mut s = self.lock();
        s.events += 1;
        s.fold(bytes);
    }

    /// Register the calling thread as the driving actor; it starts holding
    /// the run token.
    pub(crate) fn register_main(&self, name: &str) -> u64 {
        let mut s = self.lock();
        assert!(
            s.running.is_none(),
            "Runtime::enter while another sim actor is running"
        );
        let id = s.next_actor;
        s.next_actor += 1;
        s.actors.insert(
            id,
            Actor {
                name: name.to_string(),
                run: RunState::Running,
                timed_out: false,
            },
        );
        s.running = Some(id);
        id
    }

    /// Allocate a new runnable actor (spawner keeps the token).
    pub(crate) fn alloc_actor(&self, name: &str) -> u64 {
        let mut s = self.lock();
        assert!(
            s.running.is_some(),
            "Runtime::spawn on a sim runtime from outside the sim (no running actor)"
        );
        let id = s.next_actor;
        s.next_actor += 1;
        s.actors.insert(
            id,
            Actor {
                name: name.to_string(),
                run: RunState::Runnable,
                timed_out: false,
            },
        );
        id
    }

    /// Park a freshly spawned actor until the scheduler grants it the token.
    pub(crate) fn wait_for_token(&self, me: u64) {
        let mut s = self.lock();
        while s.actors.get(&me).map(|a| a.run) != Some(RunState::Running) {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Core yield: move `me` into `new_state`, hand the token to the next
    /// actor, park until rescheduled. Returns the timed-out flag of the
    /// wakeup (meaningful after a timed `CvWait`).
    fn yield_with(&self, me: u64, new_state: RunState) -> bool {
        let mut s = self.lock();
        assert_eq!(
            s.running,
            Some(me),
            "sim yield from a descheduled actor — a non-sim thread touched sim state?"
        );
        {
            let a = s.actor_mut(me);
            a.run = new_state;
            a.timed_out = false;
        }
        s.running = None;
        s.schedule();
        self.cv.notify_all();
        while s.actors.get(&me).map(|a| a.run) != Some(RunState::Running) {
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        s.actors[&me].timed_out
    }

    pub(crate) fn sleep_virtual(&self, me: u64, ns: u64) {
        let wake_at = self.lock().now_ns.saturating_add(ns);
        self.yield_with(me, RunState::Sleeping { wake_at });
    }

    pub(crate) fn yield_virtual(&self, me: u64) {
        self.sleep_virtual(me, YIELD_NS);
    }

    /// Park on condvar `cv`; returns `true` if the wait ended by deadline.
    /// The caller must drop the user-level guard *before* this call — safe
    /// because it still holds the run token, so no notifier can run in
    /// between.
    pub(crate) fn cv_wait(&self, me: u64, cv: u64, deadline: Option<u64>) -> bool {
        self.yield_with(me, RunState::CvWait { cv, deadline })
    }

    /// Mark waiters on `cv` runnable (the lowest actor id for `notify_one`;
    /// BTreeMap order keeps the pick deterministic). Does not yield.
    pub(crate) fn cv_notify(&self, cv_id: u64, all: bool) {
        let mut s = self.lock();
        for a in s.actors.values_mut() {
            if let RunState::CvWait { cv, .. } = a.run {
                if cv == cv_id {
                    a.run = RunState::Runnable;
                    a.timed_out = false;
                    if !all {
                        break;
                    }
                }
            }
        }
    }

    /// Park until `target` finishes (no-op if it already has).
    pub(crate) fn join_wait(&self, me: u64, target: u64) {
        {
            let s = self.lock();
            if s.actors.get(&target).map(|a| a.run) != Some(RunState::Done) {
                // Fall through to the yield below; the token keeps the
                // check-then-park window closed.
            } else {
                return;
            }
        }
        self.yield_with(me, RunState::JoinWait { target });
    }

    /// Actor `me` finished (normally or by panic): mark Done, wake joiners,
    /// release the token if held, schedule the next actor.
    pub(crate) fn finish(&self, me: u64) {
        let mut s = self.lock();
        let held = s.running == Some(me);
        if let Some(a) = s.actors.get_mut(&me) {
            a.run = RunState::Done;
        }
        for a in s.actors.values_mut() {
            if a.run == (RunState::JoinWait { target: me }) {
                a.run = RunState::Runnable;
            }
        }
        if held {
            s.running = None;
            s.schedule();
        }
        drop(s);
        self.cv.notify_all();
    }

    /// The main actor leaves the sim. Detached actors that exit on their
    /// own once their channels disconnect (link delivery threads) get a
    /// bounded window of virtual time to drain; anything still live after
    /// that is a harness bug and panics (unless we are already unwinding,
    /// in which case remaining actors stay parked so the process does not
    /// spin).
    pub(crate) fn exit_main(&self, me: u64) {
        const DRAIN_STEP_NS: u64 = 100_000; // 100µs of virtual time per round
        const DRAIN_ROUNDS: u32 = 1_000;
        if !std::thread::panicking() {
            for _ in 0..DRAIN_ROUNDS {
                let live = {
                    let s = self.lock();
                    s.actors
                        .iter()
                        .any(|(id, a)| *id != me && a.run != RunState::Done)
                };
                if !live {
                    break;
                }
                self.sleep_virtual(me, DRAIN_STEP_NS);
            }
        }
        let mut s = self.lock();
        if let Some(a) = s.actors.get_mut(&me) {
            a.run = RunState::Done;
        }
        if s.running == Some(me) {
            s.running = None;
        }
        let live: Vec<String> = s
            .actors
            .iter()
            .filter(|(_, a)| a.run != RunState::Done)
            .map(|(id, a)| format!("actor {} ({}): {:?}", id, a.name, a.run))
            .collect();
        drop(s);
        if !live.is_empty() {
            if std::thread::panicking() {
                return; // leave them parked; do not double-panic
            }
            panic!(
                "sim exited with live actors (join/stop them before dropping the guard): {}",
                live.join(", ")
            );
        }
    }
}

impl std::fmt::Debug for SimState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimState(seed={})", self.seed)
    }
}
