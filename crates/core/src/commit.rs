//! The commit pipeline: flush pipelining's detach/reattach point (§4.1).
//!
//! Under flush pipelining, an agent thread that finishes a transaction does
//! **not** block on the log flush. It enqueues the transaction's commit LSN
//! (plus a completion action) here and moves on to other work. When the flush
//! daemon advances the durable watermark it *reattaches*: every pending
//! commit at or below the watermark completes — its action runs (waking a
//! client handle, invoking a callback, or simply counting). Only the daemon
//! ever blocks on I/O; agent threads never context-switch for a commit.

use crate::lsn::{AtomicLsn, Lsn};
use crate::runtime::RtCondvar;
use crate::telemetry::{Stage, Telemetry};
use parking_lot::{Mutex, RwLock};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Completion state shared between a [`CommitHandle`] and the pipeline.
#[derive(Debug, Default)]
pub struct CommitState {
    done: Mutex<bool>,
    failed: std::sync::atomic::AtomicBool,
    cv: RtCondvar,
}

impl CommitState {
    /// Mark complete and wake waiters. Normally invoked by the pipeline;
    /// exposed for callers that compose their own completion callbacks.
    pub fn complete(&self) {
        let mut g = self.done.lock();
        *g = true;
        self.cv.notify_all();
    }

    /// Mark failed (log poisoned before the commit became durable) and wake
    /// waiters: the commit's handle reports failure instead of hanging.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
        self.complete();
    }
}

/// A waitable handle for one pending commit.
#[derive(Debug, Clone)]
pub struct CommitHandle(Arc<CommitState>);

impl CommitHandle {
    /// New handle + its pipeline-side state.
    pub fn new() -> (CommitHandle, Arc<CommitState>) {
        let st = Arc::new(CommitState::default());
        (CommitHandle(Arc::clone(&st)), st)
    }

    /// Block until the commit resolves. Returns `true` when it became
    /// durable, `false` when the log was poisoned first and the commit was
    /// released with an error (it never became durable).
    #[must_use = "a false return means the commit failed (log poisoned)"]
    pub fn wait(&self) -> bool {
        let mut g = self.0.done.lock();
        while !*g {
            g = self.0.cv.wait(&self.0.done, g);
        }
        !self.0.failed.load(Ordering::SeqCst)
    }

    /// Non-blocking resolution check (durable *or* failed).
    pub fn is_done(&self) -> bool {
        *self.0.done.lock()
    }

    /// Whether the commit was released by a poisoned log.
    pub fn is_failed(&self) -> bool {
        self.0.failed.load(Ordering::SeqCst)
    }
}

/// A commit's position in the log's total order: the end LSN of its commit
/// record, handed back to the client as a *session token*.
///
/// Tokens are the currency of read-your-writes: a client that threads the
/// token from its last commit into a replica read (see `aether-repl`'s
/// `ReadRouter::read_at_least`) is guaranteed a snapshot whose applied
/// watermark covers that commit. Tokens are totally ordered (log order), so
/// a session tracking several commits only needs to keep the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CommitToken(Lsn);

impl CommitToken {
    /// The zero token: observed by no commit, satisfied by any snapshot.
    pub const ZERO: CommitToken = CommitToken(Lsn::ZERO);

    /// Token covering everything below `lsn` (the commit record's end LSN).
    pub fn at(lsn: Lsn) -> CommitToken {
        CommitToken(lsn)
    }

    /// The LSN a snapshot's applied watermark must reach to satisfy this
    /// token.
    pub fn lsn(self) -> Lsn {
        self.0
    }
}

/// What to do when a pending commit resolves.
pub enum CommitAction {
    /// Wake a [`CommitHandle`].
    Notify(Arc<CommitState>),
    /// Run an arbitrary callback (used by the benchmark drivers to count
    /// completed transactions and by agent threads to reattach). The
    /// argument is `true` when the commit became durable, `false` when the
    /// log was poisoned first — callbacks observe the failure instead of
    /// silently never running.
    Callback(Box<dyn FnOnce(bool) + Send>),
    /// Just count it (the pipeline always counts completions).
    Count,
}

impl std::fmt::Debug for CommitAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitAction::Notify(_) => f.write_str("Notify"),
            CommitAction::Callback(_) => f.write_str("Callback"),
            CommitAction::Count => f.write_str("Count"),
        }
    }
}

struct Pending {
    lsn: Lsn,
    action: CommitAction,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.lsn == other.lsn
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by LSN.
        other.lsn.cmp(&self.lsn)
    }
}

/// Queue of commits awaiting durability, completed in LSN order by the flush
/// daemon.
#[derive(Default)]
pub struct CommitPipeline {
    heap: Mutex<BinaryHeap<Pending>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl std::fmt::Debug for CommitPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitPipeline")
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .finish()
    }
}

impl CommitPipeline {
    /// Empty pipeline.
    pub fn new() -> CommitPipeline {
        CommitPipeline::default()
    }

    /// Attach the log's telemetry registry so completions emit
    /// [`Stage::CommitComplete`] trace events. First call wins; later calls
    /// are ignored (one pipeline serves one log).
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// Enqueue a commit whose record ends at `lsn`; its action runs once the
    /// durable watermark reaches `lsn`.
    pub fn submit(&self, lsn: Lsn, action: CommitAction) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().push(Pending { lsn, action });
    }

    /// Number of commits submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Number of commits completed (durable + action run).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Number of commits failed by [`CommitPipeline::fail_pending`] (the
    /// log was poisoned while they awaited durability).
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Commits currently awaiting durability.
    pub fn pending(&self) -> usize {
        self.heap.lock().len()
    }

    /// Smallest pending commit LSN, if any (drives the group-commit "X
    /// transactions" trigger).
    pub fn min_pending(&self) -> Option<Lsn> {
        self.heap.lock().peek().map(|p| p.lsn)
    }

    /// Complete every pending commit with `lsn <= durable`. Actions run
    /// outside the internal lock. Returns how many completed.
    pub fn complete_upto(&self, durable: Lsn) -> usize {
        let mut ready = Vec::new();
        {
            let mut heap = self.heap.lock();
            while let Some(p) = heap.peek() {
                if p.lsn <= durable {
                    ready.push(heap.pop().unwrap());
                } else {
                    break;
                }
            }
        }
        let n = ready.len();
        let t_done = self
            .telemetry
            .get()
            .filter(|t| t.on())
            .map(|t| (t, crate::runtime::monotonic_ns()));
        for p in ready {
            if let Some((tel, now)) = &t_done {
                tel.event(Stage::CommitComplete, p.lsn, *now);
            }
            // Count first: an action may wake a waiter that immediately
            // reads `completed()`.
            self.completed.fetch_add(1, Ordering::Relaxed);
            match p.action {
                CommitAction::Notify(st) => st.complete(),
                CommitAction::Callback(f) => f(true),
                CommitAction::Count => {}
            }
        }
        n
    }

    /// Fail every pending commit: the flush daemon poisoned the log, so no
    /// further LSN will ever become durable. Handles wake with failure,
    /// callbacks run with `false` — committers get an `Err`, not a hang.
    /// Returns how many were failed.
    pub fn fail_pending(&self) -> usize {
        let drained: Vec<Pending> = {
            let mut heap = self.heap.lock();
            std::mem::take(&mut *heap).into_vec()
        };
        let n = drained.len();
        for p in drained {
            self.failed.fetch_add(1, Ordering::Relaxed);
            Self::fail_action(p.action);
        }
        n
    }

    /// Resolve one action as failed without enqueuing it (used when a
    /// commit is submitted against an already-poisoned log).
    pub fn fail_action(action: CommitAction) {
        match action {
            CommitAction::Notify(st) => st.fail(),
            CommitAction::Callback(f) => f(false),
            CommitAction::Count => {}
        }
    }
}

/// When a commit may be acknowledged, relative to log shipping (the
/// replication analogue of the paper's commit-protocol axis).
///
/// The local `fdatasync` is always required — these policies only *add*
/// replica acknowledgements to the durability condition. Group commit
/// amortizes the extra round-trip exactly as it amortizes the sync: the
/// shipper forwards one byte run per flush group, the replica acks the run,
/// and every commit in the group completes on that single ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Local durability only; replicas apply the shipped log asynchronously.
    /// A primary failure may lose commits the replicas have not received yet.
    Async,
    /// Local durability plus at least this many replica acks (classic
    /// semi-synchronous replication is `SemiSync(1)`).
    SemiSync(usize),
    /// Local durability plus `acks` of `replicas` acknowledgements — a
    /// majority quorum is `Quorum { acks: 2, replicas: 3 }`.
    Quorum {
        /// Acks required before commit completion.
        acks: usize,
        /// Expected replica count (documentation/validation; the gate counts
        /// registered replicas itself).
        replicas: usize,
    },
}

impl DurabilityPolicy {
    /// Replica acks required before a commit may complete.
    pub fn required_acks(&self) -> usize {
        match *self {
            DurabilityPolicy::Async => 0,
            DurabilityPolicy::SemiSync(k) => k,
            DurabilityPolicy::Quorum { acks, .. } => acks,
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match *self {
            DurabilityPolicy::Async => "async".into(),
            DurabilityPolicy::SemiSync(k) => format!("semisync{k}"),
            DurabilityPolicy::Quorum { acks, replicas } => format!("quorum{acks}of{replicas}"),
        }
    }
}

/// One replica's acknowledgement watermark: the highest LSN the replica has
/// durably received. Advanced by the shipper when acks arrive; read by the
/// [`CommitGate`] when deciding which commits may complete.
#[derive(Debug, Default)]
pub struct ReplicaAck {
    acked: AtomicLsn,
}

impl ReplicaAck {
    /// Record an ack up to `lsn` (acks are cumulative; regressions ignored).
    pub fn advance(&self, lsn: Lsn) {
        self.acked.fetch_max(lsn);
    }

    /// Highest acknowledged LSN.
    pub fn acked(&self) -> Lsn {
        self.acked.load()
    }
}

/// Gates commit completion on replica acknowledgements.
///
/// The flush daemon asks the gate for the *effective* commit watermark —
/// `min(local durable, k-th highest replica ack)` — before completing
/// pipelined commits, and blocking committers wait here after their local
/// flush. With the default [`DurabilityPolicy::Async`] the gate is
/// transparent: effective == durable and no waiting ever happens.
#[derive(Debug, Default)]
pub struct CommitGate {
    policy: RwLock<Option<DurabilityPolicy>>,
    replicas: RwLock<Vec<Arc<ReplicaAck>>>,
    /// Set when replication is known dead (primary failure simulation):
    /// waiters stop blocking, but their commits report *unreplicated*.
    poisoned: std::sync::atomic::AtomicBool,
    wait_mutex: Mutex<()>,
    wait_cv: RtCondvar,
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl CommitGate {
    /// New gate with no policy (equivalent to [`DurabilityPolicy::Async`]).
    pub fn new() -> CommitGate {
        CommitGate::default()
    }

    /// Attach the log's telemetry registry so policy waits feed the
    /// `commit.wait_ns` histogram. First call wins.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// Install the durability policy.
    pub fn set_policy(&self, policy: DurabilityPolicy) {
        *self.policy.write() = Some(policy);
        self.notify();
    }

    /// The installed policy, if any.
    pub fn policy(&self) -> Option<DurabilityPolicy> {
        *self.policy.read()
    }

    /// Register a replica; the returned handle is advanced as its acks
    /// arrive.
    pub fn register_replica(&self) -> Arc<ReplicaAck> {
        let ack = Arc::new(ReplicaAck::default());
        self.replicas.write().push(Arc::clone(&ack));
        ack
    }

    /// Number of registered replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.read().len()
    }

    /// Remove a replica's ack handle (identity comparison). A quarantined
    /// or replaced replica must be unregistered, or its stalled watermark
    /// clamps log truncation and holds the replication floor down forever.
    /// Waiters are re-notified — removing a laggard can only *raise* the
    /// floor. Returns whether the handle was registered.
    pub fn unregister_replica(&self, ack: &Arc<ReplicaAck>) -> bool {
        let mut replicas = self.replicas.write();
        let before = replicas.len();
        replicas.retain(|r| !Arc::ptr_eq(r, ack));
        let removed = replicas.len() != before;
        drop(replicas);
        if removed {
            self.notify();
        }
        removed
    }

    /// The *slowest* replica's acknowledged LSN — the log-truncation clamp.
    /// Bytes above this may still be needed by a shipper replaying the
    /// stream to a lagging replica, so `LogManager::truncate_to` never
    /// retires past it. [`Lsn::MAX`] when no replicas are registered or the
    /// gate is poisoned (replication declared dead — laggards re-seed from
    /// a snapshot instead of the log).
    pub fn slowest_ack(&self) -> Lsn {
        if self.is_poisoned() {
            return Lsn::MAX;
        }
        self.replicas
            .read()
            .iter()
            .map(|r| r.acked())
            .min()
            .unwrap_or(Lsn::MAX)
    }

    /// Register a replica whose acknowledgement watermark starts at `lsn`
    /// rather than zero — a replica bootstrapped from a base snapshot
    /// implicitly holds everything below the snapshot LSN, so it must not
    /// drag [`CommitGate::slowest_ack`] (and with it log truncation) to 0.
    pub fn register_replica_at(&self, lsn: Lsn) -> Arc<ReplicaAck> {
        let ack = self.register_replica();
        ack.advance(lsn);
        ack
    }

    /// The replication floor: the highest LSN acknowledged by at least the
    /// required number of replicas ([`Lsn::MAX`] when no acks are required,
    /// [`Lsn::ZERO`] when fewer replicas than required are registered).
    pub fn replicated_floor(&self) -> Lsn {
        let required = match *self.policy.read() {
            Some(p) => p.required_acks(),
            None => 0,
        };
        if required == 0 {
            return Lsn::MAX;
        }
        let replicas = self.replicas.read();
        if replicas.len() < required {
            return Lsn::ZERO;
        }
        let mut acks: Vec<Lsn> = replicas.iter().map(|r| r.acked()).collect();
        acks.sort_unstable_by(|a, b| b.cmp(a)); // descending
        acks[required - 1]
    }

    /// The effective commit watermark given the local durable LSN. A
    /// poisoned gate no longer holds anything back (replication is dead;
    /// blocking forever helps nobody) — callers learn whether a given LSN
    /// actually replicated from [`CommitGate::wait_effective`]'s return.
    pub fn effective(&self, durable: Lsn) -> Lsn {
        if self.is_poisoned() {
            return durable;
        }
        durable.min(self.replicated_floor())
    }

    /// Declare replication dead: release all waiters. Their commits remain
    /// locally durable but report as unreplicated unless the floor already
    /// covered them. Used when the primary "fails" mid-commit — the real
    /// analogue is the client connection dying with an indeterminate
    /// outcome.
    pub fn poison(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.notify();
    }

    /// Whether [`CommitGate::poison`] was called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Wake threads blocked in [`CommitGate::wait_effective`]. Called after
    /// any ack advance or flush.
    pub fn notify(&self) {
        let _g = self.wait_mutex.lock();
        self.wait_cv.notify_all();
    }

    /// Block until the effective watermark (given the caller-supplied live
    /// durable LSN) reaches `lsn`. Returns whether the replication
    /// requirement was genuinely met for `lsn` — false only when a
    /// poisoned gate released the wait before enough acks arrived.
    pub fn wait_effective(&self, lsn: Lsn, durable: impl Fn() -> Lsn) -> bool {
        let t0 = self.telemetry.get().and_then(|t| t.ts());
        // Bounded condvar waits: a notify racing ahead of waiter registration
        // costs one 200µs re-check instead of a hang.
        let mut g = self.wait_mutex.lock();
        while self.effective(durable()) < lsn {
            (g, _) = self
                .wait_cv
                .wait_for(&self.wait_mutex, g, Duration::from_micros(200));
        }
        drop(g);
        if let (Some(t0), Some(tel)) = (t0, self.telemetry.get()) {
            let dt = crate::runtime::monotonic_ns().saturating_sub(t0);
            tel.record(tel.ids().commit_wait_ns, dt);
        }
        self.replicated_floor() >= lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn completes_in_lsn_order_upto_watermark() {
        let p = CommitPipeline::new();
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![]));
        for lsn in [300u64, 100, 200, 400] {
            let log = Arc::clone(&log);
            p.submit(
                Lsn(lsn),
                CommitAction::Callback(Box::new(move |_| log.lock().push(lsn))),
            );
        }
        assert_eq!(p.pending(), 4);
        assert_eq!(p.min_pending(), Some(Lsn(100)));
        assert_eq!(p.complete_upto(Lsn(250)), 2);
        assert_eq!(&*log.lock(), &[100, 200]);
        assert_eq!(p.complete_upto(Lsn(250)), 0);
        assert_eq!(p.complete_upto(Lsn(1000)), 2);
        assert_eq!(&*log.lock(), &[100, 200, 300, 400]);
        assert_eq!(p.submitted(), 4);
        assert_eq!(p.completed(), 4);
        assert_eq!(p.pending(), 0);
        assert_eq!(p.min_pending(), None);
    }

    #[test]
    fn handle_wait_wakes() {
        let p = Arc::new(CommitPipeline::new());
        let (h, st) = CommitHandle::new();
        p.submit(Lsn(10), CommitAction::Notify(st));
        assert!(!h.is_done());
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            crate::runtime::sleep(std::time::Duration::from_millis(10));
            p2.complete_upto(Lsn(10));
        });
        assert!(h.wait(), "completed, not failed");
        assert!(h.is_done());
        assert!(!h.is_failed());
        t.join().unwrap();
    }

    #[test]
    fn count_action_counts() {
        let p = CommitPipeline::new();
        p.submit(Lsn(5), CommitAction::Count);
        assert_eq!(p.complete_upto(Lsn(5)), 1);
        assert_eq!(p.completed(), 1);
    }

    #[test]
    fn gate_async_policy_is_transparent() {
        let g = CommitGate::new();
        assert_eq!(g.effective(Lsn(500)), Lsn(500));
        g.set_policy(DurabilityPolicy::Async);
        assert_eq!(g.effective(Lsn(500)), Lsn(500));
        assert_eq!(DurabilityPolicy::Async.required_acks(), 0);
        // No waiting with a satisfied watermark.
        g.wait_effective(Lsn(100), || Lsn(100));
    }

    #[test]
    fn gate_semisync_waits_for_one_ack() {
        let g = CommitGate::new();
        g.set_policy(DurabilityPolicy::SemiSync(1));
        // No replicas registered yet: nothing can commit.
        assert_eq!(g.effective(Lsn(500)), Lsn::ZERO);
        let r = g.register_replica();
        assert_eq!(g.effective(Lsn(500)), Lsn::ZERO);
        r.advance(Lsn(300));
        assert_eq!(g.effective(Lsn(500)), Lsn(300));
        r.advance(Lsn(800));
        assert_eq!(
            g.effective(Lsn(500)),
            Lsn(500),
            "local durability still gates"
        );
        // Regressions are ignored.
        r.advance(Lsn(100));
        assert_eq!(r.acked(), Lsn(800));
    }

    #[test]
    fn gate_quorum_takes_kth_highest_ack() {
        let g = CommitGate::new();
        g.set_policy(DurabilityPolicy::Quorum {
            acks: 2,
            replicas: 3,
        });
        assert_eq!(
            DurabilityPolicy::Quorum {
                acks: 2,
                replicas: 3
            }
            .label(),
            "quorum2of3"
        );
        let r1 = g.register_replica();
        let r2 = g.register_replica();
        let r3 = g.register_replica();
        assert_eq!(g.replica_count(), 3);
        r1.advance(Lsn(900));
        assert_eq!(g.replicated_floor(), Lsn::ZERO, "one ack is not a quorum");
        r2.advance(Lsn(400));
        assert_eq!(g.replicated_floor(), Lsn(400));
        r3.advance(Lsn(600));
        assert_eq!(
            g.replicated_floor(),
            Lsn(600),
            "2nd highest of {{900,400,600}}"
        );
    }

    #[test]
    fn gate_slowest_ack_clamps_truncation() {
        let g = CommitGate::new();
        // No replicas: nothing to protect.
        assert_eq!(g.slowest_ack(), Lsn::MAX);
        let r1 = g.register_replica();
        let r2 = g.register_replica_at(Lsn(700));
        assert_eq!(g.slowest_ack(), Lsn::ZERO, "r1 has acked nothing");
        r1.advance(Lsn(300));
        assert_eq!(g.slowest_ack(), Lsn(300));
        r2.advance(Lsn(900));
        assert_eq!(g.slowest_ack(), Lsn(300), "min over replicas");
        r1.advance(Lsn(950));
        assert_eq!(g.slowest_ack(), Lsn(900));
        // A dead cluster no longer pins the log.
        g.poison();
        assert_eq!(g.slowest_ack(), Lsn::MAX);
    }

    #[test]
    fn gate_wait_effective_wakes_on_ack() {
        let g = Arc::new(CommitGate::new());
        g.set_policy(DurabilityPolicy::SemiSync(1));
        let r = g.register_replica();
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || g2.wait_effective(Lsn(100), || Lsn(100)));
        crate::runtime::sleep(Duration::from_millis(5));
        assert!(!t.is_finished());
        r.advance(Lsn(100));
        g.notify();
        assert!(t.join().unwrap(), "requirement met: acked to 100");
    }

    #[test]
    fn gate_poison_releases_waiters_as_unreplicated() {
        let g = Arc::new(CommitGate::new());
        g.set_policy(DurabilityPolicy::SemiSync(1));
        let r = g.register_replica();
        r.advance(Lsn(50));
        let g2 = Arc::clone(&g);
        let t = std::thread::spawn(move || g2.wait_effective(Lsn(100), || Lsn(100)));
        crate::runtime::sleep(Duration::from_millis(5));
        assert!(!t.is_finished());
        g.poison();
        assert!(
            !t.join().unwrap(),
            "released by poison without the ack: unreplicated"
        );
        // But an LSN the floor already covered still reports replicated,
        // and a poisoned gate no longer holds anything back.
        assert!(g.wait_effective(Lsn(40), || Lsn(100)));
        assert_eq!(g.effective(Lsn(100)), Lsn(100));
        assert!(g.is_poisoned());
    }

    #[test]
    fn concurrent_submit_and_complete() {
        let p = Arc::new(CommitPipeline::new());
        let ran = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let p = Arc::clone(&p);
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let ran = Arc::clone(&ran);
                        p.submit(
                            Lsn(t * 1000 + i),
                            CommitAction::Callback(Box::new(move |_| {
                                ran.fetch_add(1, Ordering::Relaxed);
                            })),
                        );
                    }
                });
            }
            let p = Arc::clone(&p);
            s.spawn(move || {
                for w in 0..50u64 {
                    p.complete_upto(Lsn(w * 100));
                    std::thread::yield_now();
                }
                p.complete_upto(Lsn::MAX);
            });
        });
        // A final sweep in case the completer finished before late submitters.
        p.complete_upto(Lsn::MAX);
        assert_eq!(ran.load(Ordering::Relaxed), 4000);
        assert_eq!(p.completed(), 4000);
    }
}
