//! The commit pipeline: flush pipelining's detach/reattach point (§4.1).
//!
//! Under flush pipelining, an agent thread that finishes a transaction does
//! **not** block on the log flush. It enqueues the transaction's commit LSN
//! (plus a completion action) here and moves on to other work. When the flush
//! daemon advances the durable watermark it *reattaches*: every pending
//! commit at or below the watermark completes — its action runs (waking a
//! client handle, invoking a callback, or simply counting). Only the daemon
//! ever blocks on I/O; agent threads never context-switch for a commit.

use crate::lsn::Lsn;
use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Completion state shared between a [`CommitHandle`] and the pipeline.
#[derive(Debug, Default)]
pub struct CommitState {
    done: Mutex<bool>,
    cv: Condvar,
}

impl CommitState {
    /// Mark complete and wake waiters. Normally invoked by the pipeline;
    /// exposed for callers that compose their own completion callbacks.
    pub fn complete(&self) {
        let mut g = self.done.lock();
        *g = true;
        self.cv.notify_all();
    }
}

/// A waitable handle for one pending commit.
#[derive(Debug, Clone)]
pub struct CommitHandle(Arc<CommitState>);

impl CommitHandle {
    /// New handle + its pipeline-side state.
    pub fn new() -> (CommitHandle, Arc<CommitState>) {
        let st = Arc::new(CommitState::default());
        (CommitHandle(Arc::clone(&st)), st)
    }

    /// Block until the commit is durable.
    pub fn wait(&self) {
        let mut g = self.0.done.lock();
        while !*g {
            self.0.cv.wait(&mut g);
        }
    }

    /// Non-blocking durability check.
    pub fn is_done(&self) -> bool {
        *self.0.done.lock()
    }
}

/// What to do when a pending commit becomes durable.
pub enum CommitAction {
    /// Wake a [`CommitHandle`].
    Notify(Arc<CommitState>),
    /// Run an arbitrary callback (used by the benchmark drivers to count
    /// completed transactions and by agent threads to reattach).
    Callback(Box<dyn FnOnce() + Send>),
    /// Just count it (the pipeline always counts completions).
    Count,
}

impl std::fmt::Debug for CommitAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitAction::Notify(_) => f.write_str("Notify"),
            CommitAction::Callback(_) => f.write_str("Callback"),
            CommitAction::Count => f.write_str("Count"),
        }
    }
}

struct Pending {
    lsn: Lsn,
    action: CommitAction,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.lsn == other.lsn
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by LSN.
        other.lsn.cmp(&self.lsn)
    }
}

/// Queue of commits awaiting durability, completed in LSN order by the flush
/// daemon.
#[derive(Default)]
pub struct CommitPipeline {
    heap: Mutex<BinaryHeap<Pending>>,
    submitted: AtomicU64,
    completed: AtomicU64,
}

impl std::fmt::Debug for CommitPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitPipeline")
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .finish()
    }
}

impl CommitPipeline {
    /// Empty pipeline.
    pub fn new() -> CommitPipeline {
        CommitPipeline::default()
    }

    /// Enqueue a commit whose record ends at `lsn`; its action runs once the
    /// durable watermark reaches `lsn`.
    pub fn submit(&self, lsn: Lsn, action: CommitAction) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.heap.lock().push(Pending { lsn, action });
    }

    /// Number of commits submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Number of commits completed (durable + action run).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Commits currently awaiting durability.
    pub fn pending(&self) -> usize {
        self.heap.lock().len()
    }

    /// Smallest pending commit LSN, if any (drives the group-commit "X
    /// transactions" trigger).
    pub fn min_pending(&self) -> Option<Lsn> {
        self.heap.lock().peek().map(|p| p.lsn)
    }

    /// Complete every pending commit with `lsn <= durable`. Actions run
    /// outside the internal lock. Returns how many completed.
    pub fn complete_upto(&self, durable: Lsn) -> usize {
        let mut ready = Vec::new();
        {
            let mut heap = self.heap.lock();
            while let Some(p) = heap.peek() {
                if p.lsn <= durable {
                    ready.push(heap.pop().unwrap());
                } else {
                    break;
                }
            }
        }
        let n = ready.len();
        for p in ready {
            // Count first: an action may wake a waiter that immediately
            // reads `completed()`.
            self.completed.fetch_add(1, Ordering::Relaxed);
            match p.action {
                CommitAction::Notify(st) => st.complete(),
                CommitAction::Callback(f) => f(),
                CommitAction::Count => {}
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn completes_in_lsn_order_upto_watermark() {
        let p = CommitPipeline::new();
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![]));
        for lsn in [300u64, 100, 200, 400] {
            let log = Arc::clone(&log);
            p.submit(
                Lsn(lsn),
                CommitAction::Callback(Box::new(move || log.lock().push(lsn))),
            );
        }
        assert_eq!(p.pending(), 4);
        assert_eq!(p.min_pending(), Some(Lsn(100)));
        assert_eq!(p.complete_upto(Lsn(250)), 2);
        assert_eq!(&*log.lock(), &[100, 200]);
        assert_eq!(p.complete_upto(Lsn(250)), 0);
        assert_eq!(p.complete_upto(Lsn(1000)), 2);
        assert_eq!(&*log.lock(), &[100, 200, 300, 400]);
        assert_eq!(p.submitted(), 4);
        assert_eq!(p.completed(), 4);
        assert_eq!(p.pending(), 0);
        assert_eq!(p.min_pending(), None);
    }

    #[test]
    fn handle_wait_wakes() {
        let p = Arc::new(CommitPipeline::new());
        let (h, st) = CommitHandle::new();
        p.submit(Lsn(10), CommitAction::Notify(st));
        assert!(!h.is_done());
        let p2 = Arc::clone(&p);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            p2.complete_upto(Lsn(10));
        });
        h.wait();
        assert!(h.is_done());
        t.join().unwrap();
    }

    #[test]
    fn count_action_counts() {
        let p = CommitPipeline::new();
        p.submit(Lsn(5), CommitAction::Count);
        assert_eq!(p.complete_upto(Lsn(5)), 1);
        assert_eq!(p.completed(), 1);
    }

    #[test]
    fn concurrent_submit_and_complete() {
        let p = Arc::new(CommitPipeline::new());
        let ran = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let p = Arc::clone(&p);
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let ran = Arc::clone(&ran);
                        p.submit(
                            Lsn(t * 1000 + i),
                            CommitAction::Callback(Box::new(move || {
                                ran.fetch_add(1, Ordering::Relaxed);
                            })),
                        );
                    }
                });
            }
            let p = Arc::clone(&p);
            s.spawn(move || {
                for w in 0..50u64 {
                    p.complete_upto(Lsn(w * 100));
                    std::thread::yield_now();
                }
                p.complete_upto(Lsn::MAX);
            });
        });
        // A final sweep in case the completer finished before late submitters.
        p.complete_upto(Lsn::MAX);
        assert_eq!(ran.load(Ordering::Relaxed), 4000);
        assert_eq!(p.completed(), 4000);
    }
}
