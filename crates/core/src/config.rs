//! Log manager configuration.

use std::time::Duration;

/// Group-commit policy: "flush every X transactions, L bytes logged, or T
/// time elapsed, whichever comes first" (§4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCommitPolicy {
    /// Flush once this many commit requests are pending.
    pub max_pending_commits: usize,
    /// Flush once this many unflushed bytes have accumulated.
    pub max_pending_bytes: u64,
    /// Flush once the oldest pending request has waited this long.
    pub max_wait: Duration,
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        GroupCommitPolicy {
            max_pending_commits: 64,
            max_pending_bytes: 64 * 1024,
            max_wait: Duration::from_millis(1),
        }
    }
}

/// Bounded-retry policy for the flush daemon's device I/O.
///
/// A transient error (see `AetherError::is_transient`) is retried up to
/// `max_attempts` times with exponential backoff; a permanent error, or a
/// transient one that exhausts the budget, poisons the log — pending
/// committers are released with `AetherError::Poisoned` instead of hanging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushRetryPolicy {
    /// Total attempts per device operation (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for FlushRetryPolicy {
    fn default() -> Self {
        FlushRetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
        }
    }
}

/// Configuration for a [`crate::manager::LogManager`] or a standalone buffer.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// In-memory ring size in bytes. Must be a power of two.
    pub buffer_size: usize,
    /// Number of active slots in the consolidation array. The paper finds
    /// 3–4 optimal on a 64-context machine (§A.4, Figure 12) and fixes 4.
    pub carray_slots: usize,
    /// Size of the preallocated slot pool the array recycles through
    /// (§A.1: "we avoid memory management overheads by allocating a large
    /// number of consolidation structures at startup").
    pub carray_pool: usize,
    /// Node pool size for the delegated-release queue (CDME).
    pub release_queue_pool: usize,
    /// A CDME thread refuses to delegate with probability `1/treadmill_inv`
    /// to break delegation treadmills (§A.3). 0 disables refusal.
    pub treadmill_inv: u32,
    /// Group-commit policy for the flush daemon.
    pub group_commit: GroupCommitPolicy,
    /// Bounded retry + backoff for flush-daemon device I/O.
    pub flush_retry: FlushRetryPolicy,
    /// Runtime the log's background threads and waits run under. Defaults
    /// to the real runtime; a simulated cluster injects
    /// [`crate::runtime::Runtime::sim`] here for deterministic replay.
    pub runtime: crate::runtime::Runtime,
    /// Telemetry (metrics registry + pipeline tracing) configuration.
    /// Disabled by default: instrumented hot paths then cost a single
    /// relaxed load.
    pub telemetry: crate::telemetry::TelemetryConfig,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            buffer_size: 64 << 20,
            carray_slots: 4,
            carray_pool: 64,
            release_queue_pool: 4096,
            treadmill_inv: 32,
            group_commit: GroupCommitPolicy::default(),
            flush_retry: FlushRetryPolicy::default(),
            runtime: crate::runtime::Runtime::default(),
            telemetry: crate::telemetry::TelemetryConfig::default(),
        }
    }
}

impl LogConfig {
    /// Validate invariants; returns a human-readable error for the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.buffer_size.is_power_of_two() || self.buffer_size < 4096 {
            return Err(format!(
                "buffer_size must be a power of two >= 4096 (got {})",
                self.buffer_size
            ));
        }
        if self.carray_slots == 0 {
            return Err("carray_slots must be >= 1".into());
        }
        if self.carray_pool < 2 * self.carray_slots {
            return Err(format!(
                "carray_pool ({}) must be at least 2x carray_slots ({})",
                self.carray_pool, self.carray_slots
            ));
        }
        if self.release_queue_pool < 64 {
            return Err("release_queue_pool must be >= 64".into());
        }
        if self.flush_retry.max_attempts == 0 {
            return Err("flush_retry.max_attempts must be >= 1".into());
        }
        self.telemetry.validate()?;
        Ok(())
    }

    /// Builder-style setter for the ring size.
    pub fn with_buffer_size(mut self, bytes: usize) -> Self {
        self.buffer_size = bytes;
        self
    }

    /// Builder-style setter for the runtime.
    pub fn with_runtime(mut self, runtime: crate::runtime::Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Builder-style setter for the consolidation-array slot count.
    pub fn with_carray_slots(mut self, slots: usize) -> Self {
        self.carray_slots = slots;
        self.carray_pool = self.carray_pool.max(2 * slots);
        self
    }

    /// Builder-style setter for the telemetry configuration.
    pub fn with_telemetry(mut self, telemetry: crate::telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(LogConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_buffer_size() {
        let c = LogConfig::default().with_buffer_size(1000);
        assert!(c.validate().is_err());
        let c = LogConfig::default().with_buffer_size(2048);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_slots() {
        let c = LogConfig {
            carray_slots: 0,
            ..LogConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_carray_slots_grows_pool() {
        let c = LogConfig::default().with_carray_slots(40);
        assert!(c.carray_pool >= 80);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_small_pool() {
        let c = LogConfig {
            carray_pool: 3,
            ..LogConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn runtime_defaults_to_real() {
        let c = LogConfig::default();
        assert!(!c.runtime.is_sim());
        let c = c.with_runtime(crate::runtime::Runtime::sim(1));
        assert!(c.runtime.is_sim());
    }
}
