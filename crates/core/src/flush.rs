//! The flush daemon: the only thread that ever waits on log I/O (§4.1).
//!
//! "A daemon thread triggers log flushes using policies similar to those used
//! in group commit (e.g. flush every X transactions, L bytes logged, or T
//! time elapsed, whichever comes first). After each I/O completion, the
//! daemon notifies the agent threads of newly-hardened transactions."
//!
//! The daemon drains `[durable, released)` straight out of the ring: the
//! window is at most one ring lap, so it is at most two contiguous ring
//! slices, which go to [`LogDevice::write_vectored`] with **no scratch
//! copy** — the payload memcpy at insert is the only time log bytes are
//! copied in memory. It then syncs, advances the durable watermark
//! (reclaiming ring space) and completes pending commits via the
//! [`CommitPipeline`].

use crate::buffer::BufferCore;
use crate::commit::{CommitGate, CommitPipeline};
use crate::config::{FlushRetryPolicy, GroupCommitPolicy};
use crate::device::LogDevice;
use crate::error::{AetherError, Result};
use crate::lsn::Lsn;
use crate::runtime::{self, RtCondvar, Runtime};
use crate::telemetry::Stage;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct FlushInner {
    /// Highest LSN any caller demanded be made durable *now* (blocking
    /// flush requests bypass the group-commit batching).
    requested: Lsn,
    /// Commits submitted since the last flush (the "X transactions" trigger).
    pending_commits: usize,
    /// When (runtime-monotonic ns) the oldest unserviced request arrived
    /// (the "T time" trigger).
    oldest: Option<u64>,
    shutdown: bool,
    /// Set when the daemon hit a permanent device failure (or exhausted its
    /// retry budget): the terminal poisoned-log state. Waiters fail fast
    /// with [`AetherError::Poisoned`] instead of hanging.
    poisoned: Option<String>,
}

/// Shared state between the daemon thread and its clients.
#[derive(Debug)]
pub struct FlushShared {
    inner: Mutex<FlushInner>,
    daemon_cv: RtCondvar,
    waiter_cv: RtCondvar,
    flushes: AtomicU64,
    flushed_bytes: AtomicU64,
}

impl FlushShared {
    /// Demand durability up to `lsn` and block until it holds. This is the
    /// *baseline* commit path: one blocking wait (and its pair of context
    /// switches) per call. Fully concurrent: any number of committers may
    /// wait simultaneously and are woken together by the daemon (group
    /// commit).
    ///
    /// Fails fast with [`AetherError::Poisoned`] when the daemon halted on
    /// a device failure, and with [`AetherError::Shutdown`] when the log
    /// shut down before `lsn` became durable — waiters get an `Err`, never
    /// a hang.
    pub fn flush_until(&self, core: &BufferCore, lsn: Lsn) -> Result<()> {
        if core.durable_lsn() >= lsn {
            return Ok(());
        }
        let mut g = self.inner.lock();
        if g.requested < lsn {
            g.requested = lsn;
        }
        if g.oldest.is_none() {
            g.oldest = Some(runtime::monotonic_ns());
        }
        self.daemon_cv.notify_one();
        loop {
            if core.durable_lsn() >= lsn {
                return Ok(());
            }
            if let Some(reason) = &g.poisoned {
                return Err(AetherError::Poisoned {
                    reason: reason.clone(),
                });
            }
            if g.shutdown {
                return Err(AetherError::Shutdown);
            }
            g = self.waiter_cv.wait(&self.inner, g);
        }
    }

    /// The poison reason, if the daemon has halted on a device failure.
    pub fn poisoned(&self) -> Option<String> {
        self.inner.lock().poisoned.clone()
    }

    /// Register a commit for group-commit accounting and nudge the daemon
    /// once a policy threshold is reached. Non-blocking (flush pipelining).
    pub fn note_commit(&self, policy: &GroupCommitPolicy) {
        let mut g = self.inner.lock();
        g.pending_commits += 1;
        if g.oldest.is_none() {
            g.oldest = Some(runtime::monotonic_ns());
        }
        if g.pending_commits >= policy.max_pending_commits {
            self.daemon_cv.notify_one();
        }
    }

    /// Ask the daemon to flush everything released so far without waiting.
    pub fn kick(&self, core: &BufferCore) {
        let mut g = self.inner.lock();
        let rel = core.released_lsn();
        if g.requested < rel {
            g.requested = rel;
        }
        self.daemon_cv.notify_one();
    }

    fn new() -> Arc<FlushShared> {
        Arc::new(FlushShared {
            inner: Mutex::new(FlushInner {
                requested: Lsn::ZERO,
                pending_commits: 0,
                oldest: None,
                shutdown: false,
                poisoned: None,
            }),
            daemon_cv: RtCondvar::new(),
            waiter_cv: RtCondvar::new(),
            flushes: AtomicU64::new(0),
            flushed_bytes: AtomicU64::new(0),
        })
    }

    /// Number of device sync operations performed (one per group flush) —
    /// this is what group commit minimizes.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Total bytes written to the device.
    pub fn flushed_bytes(&self) -> u64 {
        self.flushed_bytes.load(Ordering::Relaxed)
    }
}

/// The flush daemon handle: owns the background thread.
pub struct FlushDaemon {
    shared: Arc<FlushShared>,
    core: Arc<BufferCore>,
    thread: Option<runtime::JoinHandle<()>>,
}

impl std::fmt::Debug for FlushDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlushDaemon")
            .field("flushes", &self.shared.flush_count())
            .finish()
    }
}

impl FlushDaemon {
    /// Spawn the daemon over `core`/`device` under `rt`, completing commits
    /// through `pipeline` once they clear `gate` (local durability +
    /// replica acks). Device errors are retried per `retry`; exhaustion or
    /// a permanent error poisons the log.
    pub fn spawn(
        rt: &Runtime,
        core: Arc<BufferCore>,
        device: Arc<dyn LogDevice>,
        pipeline: Arc<CommitPipeline>,
        gate: Arc<CommitGate>,
        policy: GroupCommitPolicy,
        retry: FlushRetryPolicy,
    ) -> FlushDaemon {
        let shared = FlushShared::new();
        let sh = Arc::clone(&shared);
        let co = Arc::clone(&core);
        let thread = rt.spawn("aether-flushd", move || {
            daemon_loop(sh, co, device, pipeline, gate, policy, retry)
        });
        FlushDaemon {
            shared,
            core,
            thread: Some(thread),
        }
    }

    /// Shared state (metrics, notification).
    pub fn shared(&self) -> &Arc<FlushShared> {
        &self.shared
    }

    /// Blocking durability wait; see [`FlushShared::flush_until`].
    pub fn flush_until(&self, lsn: Lsn) -> Result<()> {
        self.shared.flush_until(&self.core, lsn)
    }

    /// Non-blocking commit registration; see [`FlushShared::note_commit`].
    pub fn note_commit(&self, policy_hint: &GroupCommitPolicy) {
        self.shared.note_commit(policy_hint);
    }

    /// Ask the daemon to flush everything released so far without waiting.
    pub fn kick(&self) {
        self.shared.kick(&self.core);
    }

    /// Stop the daemon after a final flush of all released bytes.
    pub fn shutdown(&mut self) {
        {
            let mut g = self.shared.inner.lock();
            if g.shutdown {
                return;
            }
            g.shutdown = true;
            self.shared.daemon_cv.notify_one();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // Wake anyone still blocked in flush_until.
        let _g = self.shared.inner.lock();
        self.shared.waiter_cv.notify_all();
    }
}

impl Drop for FlushDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run `op`, retrying transient failures with exponential backoff per
/// `retry`. Returns the last error when the budget is exhausted or the
/// failure is permanent.
fn with_retry<T>(retry: &FlushRetryPolicy, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut backoff = retry.initial_backoff;
    let mut attempt = 1u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < retry.max_attempts => {
                runtime::sleep(backoff);
                backoff = (backoff * 2).min(retry.max_backoff);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Enter the terminal poisoned-log state: record the reason, release every
/// blocked flusher with an error, fail all pending pipelined commits, and
/// poison the commit gate so replication waiters unblock too.
fn poison_log(
    shared: &FlushShared,
    pipeline: &CommitPipeline,
    gate: &CommitGate,
    error: &AetherError,
) {
    {
        let mut g = shared.inner.lock();
        if g.poisoned.is_none() {
            g.poisoned = Some(error.to_string());
        }
        shared.waiter_cv.notify_all();
    }
    pipeline.fail_pending();
    gate.poison();
}

#[allow(clippy::too_many_arguments)]
fn daemon_loop(
    shared: Arc<FlushShared>,
    core: Arc<BufferCore>,
    device: Arc<dyn LogDevice>,
    pipeline: Arc<CommitPipeline>,
    gate: Arc<CommitGate>,
    policy: GroupCommitPolicy,
    retry: FlushRetryPolicy,
) {
    let poll = policy
        .max_wait
        .min(Duration::from_micros(500))
        .max(Duration::from_micros(50));
    // Group-commit batching window: once triggered, linger briefly so
    // commits arriving "just behind" the trigger join this flush instead of
    // waiting a full device sync. Scaled to the device (zero for ramdisks —
    // no added latency; a quarter sync for magnetic-class devices). This is
    // the "aggregating multiple requests for log flush into a single I/O"
    // of group commit [Helland et al.], and without it a slow device
    // degrades to ~1 commit per sync.
    let batch_window = device.nominal_latency() / 4;
    let max_wait_ns = u64::try_from(policy.max_wait.as_nanos()).unwrap_or(u64::MAX);
    let tel = Arc::clone(core.telemetry());
    loop {
        // Decide whether (and how far) to flush.
        let t_trigger;
        {
            let mut g = shared.inner.lock();
            loop {
                let released = core.released_lsn();
                let durable = core.durable_lsn();
                let pending_bytes = released.raw() - durable.raw();
                let timed_out = g
                    .oldest
                    .map(|t| runtime::monotonic_ns().saturating_sub(t) >= max_wait_ns)
                    .unwrap_or(false);
                let trigger = g.requested > durable
                    || g.pending_commits >= policy.max_pending_commits
                    || pending_bytes >= policy.max_pending_bytes
                    || (pending_bytes > 0 && timed_out)
                    || (pending_bytes > 0 && core.space_waiters() > 0)
                    || (g.shutdown && pending_bytes > 0);
                if g.shutdown && pending_bytes == 0 {
                    return;
                }
                if trigger {
                    g.pending_commits = 0;
                    g.oldest = None;
                    t_trigger = tel.ts();
                    if t_trigger.is_some() {
                        let ids = tel.ids();
                        tel.gauge_set(ids.flush_queue_depth, pipeline.pending() as i64);
                        tel.gauge_set(ids.flush_pending_bytes, pending_bytes as i64);
                    }
                    break;
                }
                (g, _) = shared.daemon_cv.wait_for(&shared.inner, g, poll);
            }
        }

        // Batch: give trailing committers a moment to get their records in.
        if !batch_window.is_zero() {
            runtime::sleep(batch_window);
        }

        // Drain [durable, target) to the device and sync. The window is at
        // most one ring lap (writers cannot reserve past durable+capacity),
        // so it is at most two contiguous ring slices — handed to the device
        // as-is, zero copies.
        let target = core.released_lsn();
        let at = core.durable_lsn();
        if at < target {
            let t_drain = tel.ts();
            if !device.discards() {
                // SAFETY: [at, target) is published (≤ released) and this
                // daemon is the only reclaimer — durable does not advance
                // until after the write below completes.
                //
                // Retry note: a failed write may have left a prefix on the
                // device (torn append). Re-running the same vectored write
                // would duplicate that prefix, so each retry re-derives the
                // remaining window from the device's own length — the
                // stream offset equals the LSN, making the write idempotent.
                let write = with_retry(&retry, || {
                    let done = device.len().max(at.raw());
                    if done >= target.raw() {
                        return Ok(()); // a previous attempt landed everything
                    }
                    let from = Lsn(done);
                    let (head, tail) = unsafe { core.released_slices(from, target.since(from)) };
                    if tail.is_empty() {
                        device.write_vectored(&[head])
                    } else {
                        device.write_vectored(&[head, tail])
                    }
                });
                if let Err(e) = write {
                    // Permanent device failure (or retry budget exhausted):
                    // the terminal poisoned-log state. Pending committers
                    // and blocked flushers get an `Err`, not a hang.
                    poison_log(&shared, &pipeline, &gate, &e);
                    return;
                }
            }
            if let Err(e) = with_retry(&retry, || device.sync()) {
                poison_log(&shared, &pipeline, &gate, &e);
                return;
            }
            shared.flushes.fetch_add(1, Ordering::Relaxed);
            shared
                .flushed_bytes
                .fetch_add(target.since(core.durable_lsn()), Ordering::Relaxed);
            if let Some(t0) = t_drain {
                let now = runtime::monotonic_ns();
                let ids = tel.ids();
                tel.record(ids.flush_write_bytes, target.since(at));
                tel.record(ids.flush_drain_ns, now.saturating_sub(t0));
                if let Some(tt) = t_trigger {
                    tel.span(Stage::FlushEnqueue, target, tt, t0);
                }
                tel.span(Stage::DeviceWrite, target, t0, now);
                tel.event(Stage::Durable, target, now);
            }
            core.advance_durable(target);
        }

        // Reattach: complete pipelined commits that are both durable and
        // sufficiently replicated (the gate is transparent without a
        // policy), wake blocking flushers, and nudge gate waiters.
        let completed = pipeline.complete_upto(gate.effective(target));
        if completed > 0 {
            tel.record(tel.ids().commit_group_size, completed as u64);
        }
        {
            let _g = shared.inner.lock();
            shared.waiter_cv.notify_all();
        }
        gate.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BaselineBuffer, LogBuffer};
    use crate::commit::{CommitAction, CommitHandle};
    use crate::config::LogConfig;
    use crate::device::SimDevice;
    use crate::record::RecordKind;

    fn setup(
        latency_us: u64,
    ) -> (
        Arc<BufferCore>,
        Arc<SimDevice>,
        Arc<CommitPipeline>,
        FlushDaemon,
        BaselineBuffer,
    ) {
        let cfg = LogConfig::default().with_buffer_size(1 << 16);
        let core = BufferCore::new(&cfg);
        let device = Arc::new(SimDevice::new(Duration::from_micros(latency_us)));
        let pipeline = Arc::new(CommitPipeline::new());
        let daemon = FlushDaemon::spawn(
            &Runtime::default(),
            Arc::clone(&core),
            device.clone() as Arc<dyn LogDevice>,
            Arc::clone(&pipeline),
            Arc::new(CommitGate::new()),
            GroupCommitPolicy::default(),
            FlushRetryPolicy::default(),
        );
        let buf = BaselineBuffer::new(Arc::clone(&core));
        (core, device, pipeline, daemon, buf)
    }

    #[test]
    fn flush_until_makes_bytes_durable() {
        let (core, device, _p, daemon, buf) = setup(0);
        let lsn = buf.insert(RecordKind::Filler, 1, Lsn::ZERO, &[7; 100]);
        let end = core.released_lsn();
        daemon.flush_until(end).unwrap();
        assert!(core.durable_lsn() >= end);
        assert_eq!(device.len(), end.raw());
        assert!(lsn < end);
        assert!(daemon.shared().flush_count() >= 1);
        assert!(daemon.shared().flushed_bytes() >= 100);
    }

    #[test]
    fn pipelined_commits_complete_without_blocking() {
        let (core, _d, pipeline, daemon, buf) = setup(100);
        let mut handles = vec![];
        for i in 0..10u64 {
            buf.insert(RecordKind::Update, i, Lsn::ZERO, &[1; 80]);
            buf.insert(RecordKind::Commit, i, Lsn::ZERO, &[]);
            let end = core.released_lsn();
            let (h, st) = CommitHandle::new();
            pipeline.submit(end, CommitAction::Notify(st));
            daemon.note_commit(&GroupCommitPolicy::default());
            handles.push(h);
        }
        daemon.kick();
        for h in handles {
            assert!(h.wait());
        }
        assert_eq!(pipeline.completed(), 10);
        // Group commit: far fewer syncs than commits.
        assert!(daemon.shared().flush_count() <= 10);
    }

    #[test]
    fn time_policy_flushes_without_requests() {
        let cfg = LogConfig::default().with_buffer_size(1 << 16);
        let core = BufferCore::new(&cfg);
        let device = Arc::new(SimDevice::new(Duration::ZERO));
        let pipeline = Arc::new(CommitPipeline::new());
        let policy = GroupCommitPolicy {
            max_pending_commits: 1_000_000,
            max_pending_bytes: u64::MAX,
            max_wait: Duration::from_millis(5),
        };
        let daemon = FlushDaemon::spawn(
            &Runtime::default(),
            Arc::clone(&core),
            device.clone() as Arc<dyn LogDevice>,
            pipeline,
            Arc::new(CommitGate::new()),
            policy.clone(),
            FlushRetryPolicy::default(),
        );
        let buf = BaselineBuffer::new(Arc::clone(&core));
        buf.insert(RecordKind::Filler, 1, Lsn::ZERO, &[0; 64]);
        daemon.note_commit(&policy); // starts the T clock
                                     // Durable-watch notification instead of a sleep-poll loop.
        let target = core.released_lsn();
        let durable = core.wait_durable_timeout(target, Duration::from_millis(500));
        assert_eq!(durable, target, "T policy must fire");
    }

    #[test]
    fn shutdown_drains_released_bytes() {
        let (core, device, _p, mut daemon, buf) = setup(0);
        for _ in 0..50 {
            buf.insert(RecordKind::Filler, 0, Lsn::ZERO, &[3; 200]);
        }
        let end = core.released_lsn();
        daemon.shutdown();
        assert_eq!(core.durable_lsn(), end);
        assert_eq!(device.len(), end.raw());
        // Idempotent.
        daemon.shutdown();
    }

    #[test]
    fn vectored_drain_copies_nothing_and_survives_wrap() {
        // ~200 KB through a 64 KiB ring: every flush window shape occurs,
        // including wrapped ones that drain as two slices.
        let (core, device, _p, daemon, buf) = setup(0);
        let payload = vec![9u8; 1000];
        for _ in 0..200 {
            buf.insert(RecordKind::Filler, 0, Lsn::ZERO, &payload);
        }
        daemon.flush_until(core.released_lsn()).unwrap();
        assert_eq!(device.len(), core.released_lsn().raw());
        assert_eq!(
            core.stats.snapshot().scratch_bytes,
            0,
            "the vectored drain must not stage bytes through a scratch buffer"
        );
        // The device stream is record-decodable end to end.
        let contents = device.contents();
        let mut at = 0usize;
        let mut n = 0;
        while at < contents.len() {
            let h = crate::record::RecordHeader::decode(
                contents[at..at + crate::record::HEADER_SIZE]
                    .try_into()
                    .unwrap(),
            )
            .expect("well-formed header");
            let p = &contents[at + crate::record::HEADER_SIZE
                ..at + crate::record::HEADER_SIZE + h.payload_len as usize];
            assert!(h.verify(p), "frame CRC must hold at offset {at}");
            at += h.total_len as usize;
            n += 1;
        }
        assert_eq!(n, 200);
    }

    /// A device whose `sync` fails the first `fail_syncs` times with a
    /// transient error, and whose failure kind flips to permanent (EIO)
    /// when `permanent` is set.
    struct FlakyDevice {
        inner: SimDevice,
        fail_syncs: AtomicU64,
        permanent: bool,
    }

    impl FlakyDevice {
        fn new(fail_syncs: u64, permanent: bool) -> FlakyDevice {
            FlakyDevice {
                inner: SimDevice::new(Duration::ZERO),
                fail_syncs: AtomicU64::new(fail_syncs),
                permanent,
            }
        }
    }

    impl LogDevice for FlakyDevice {
        fn append(&self, data: &[u8]) -> Result<()> {
            self.inner.append(data)
        }
        fn write_vectored(&self, bufs: &[&[u8]]) -> Result<()> {
            self.inner.write_vectored(bufs)
        }
        fn sync(&self) -> Result<()> {
            let left = self.fail_syncs.load(Ordering::SeqCst);
            if left > 0 || self.permanent {
                self.fail_syncs
                    .store(left.saturating_sub(1), Ordering::SeqCst);
                let e = if self.permanent {
                    std::io::Error::from_raw_os_error(5) // EIO: permanent
                } else {
                    std::io::Error::new(std::io::ErrorKind::Interrupted, "flaky sync")
                };
                return Err(e.into());
            }
            self.inner.sync()
        }
        fn read_at(&self, offset: u64, dst: &mut [u8]) -> Result<usize> {
            self.inner.read_at(offset, dst)
        }
        fn len(&self) -> u64 {
            self.inner.len()
        }
    }

    fn flaky_setup(
        device: Arc<FlakyDevice>,
    ) -> (
        Arc<BufferCore>,
        Arc<CommitPipeline>,
        FlushDaemon,
        BaselineBuffer,
    ) {
        let cfg = LogConfig::default().with_buffer_size(1 << 16);
        let core = BufferCore::new(&cfg);
        let pipeline = Arc::new(CommitPipeline::new());
        let retry = FlushRetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
        };
        let daemon = FlushDaemon::spawn(
            &Runtime::default(),
            Arc::clone(&core),
            device as Arc<dyn LogDevice>,
            Arc::clone(&pipeline),
            Arc::new(CommitGate::new()),
            GroupCommitPolicy::default(),
            retry,
        );
        let buf = BaselineBuffer::new(Arc::clone(&core));
        (core, pipeline, daemon, buf)
    }

    #[test]
    fn transient_sync_errors_are_retried_and_committers_unblock_ok() {
        let device = Arc::new(FlakyDevice::new(3, false));
        let (core, pipeline, daemon, buf) = flaky_setup(Arc::clone(&device));
        buf.insert(RecordKind::Commit, 1, Lsn::ZERO, &[]);
        let end = core.released_lsn();
        let (h, st) = CommitHandle::new();
        pipeline.submit(end, CommitAction::Notify(st));
        daemon.kick();
        assert!(daemon.flush_until(end).is_ok(), "retries must absorb blips");
        assert!(h.wait(), "committer unblocks with Ok after retried flush");
        assert!(daemon.shared().poisoned().is_none());
        assert_eq!(pipeline.failed(), 0);
    }

    #[test]
    fn permanent_sync_error_poisons_and_fails_pending_committers() {
        let device = Arc::new(FlakyDevice::new(0, true));
        let (core, pipeline, daemon, buf) = flaky_setup(Arc::clone(&device));
        buf.insert(RecordKind::Commit, 1, Lsn::ZERO, &[]);
        let end = core.released_lsn();
        let (h, st) = CommitHandle::new();
        pipeline.submit(end, CommitAction::Notify(st));
        daemon.kick();
        let err = daemon.flush_until(end);
        assert!(
            matches!(err, Err(AetherError::Poisoned { .. })),
            "waiter must get Err, not a hang: {err:?}"
        );
        assert!(!h.wait(), "pending committer fails, never completes");
        assert!(daemon.shared().poisoned().is_some());
        assert_eq!(pipeline.failed(), 1);
        // Subsequent waits fail fast too.
        assert!(matches!(
            daemon.flush_until(end.advance(1)),
            Err(AetherError::Poisoned { .. })
        ));
    }

    #[test]
    fn exhausted_retry_budget_poisons() {
        // More transient failures than the 5-attempt budget.
        let device = Arc::new(FlakyDevice::new(50, false));
        let (core, _pipeline, daemon, buf) = flaky_setup(Arc::clone(&device));
        buf.insert(RecordKind::Filler, 1, Lsn::ZERO, &[0; 32]);
        let end = core.released_lsn();
        assert!(matches!(
            daemon.flush_until(end),
            Err(AetherError::Poisoned { .. })
        ));
    }

    #[test]
    fn back_pressure_resolves_via_daemon() {
        // Ring smaller than the data volume: inserts must block on space and
        // the daemon must reclaim.
        let (core, device, _p, _daemon, buf) = setup(0);
        let payload = vec![5u8; 4000];
        for _ in 0..100 {
            buf.insert(RecordKind::Filler, 0, Lsn::ZERO, &payload);
        }
        // 100 * ~4KB ≈ 400KB through a 64KB ring.
        assert!(core.released_lsn().raw() > (1 << 16));
        let _ = device;
    }
}
