//! The circular in-memory log buffer.
//!
//! The ring is a power-of-two byte array addressed directly by LSN
//! (`index = lsn & mask`). The key concurrency property — the reason the
//! decoupled designs of §5.2 are sound — is that **reserved regions never
//! overlap**: LSN generation hands each thread a disjoint `[start, end)`
//! byte range, so concurrent fills touch disjoint memory and need no
//! synchronization beyond the publication of the `released` watermark.
//!
//! The ring therefore exposes `unsafe` read/write primitives whose safety
//! contract is exactly that reservation discipline; every buffer variant in
//! [`crate::buffer`] upholds it by construction.

use std::cell::UnsafeCell;

/// A fixed-capacity circular byte buffer indexed by LSN.
pub struct Ring {
    buf: Box<[UnsafeCell<u8>]>,
    mask: u64,
}

// SAFETY: all access to the interior bytes goes through `write_at`/`read_at`,
// whose contracts require callers to guarantee exclusive (for writes) or
// stable (for reads) access to the byte ranges involved. The buffer variants
// enforce this via LSN-space reservation.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// Create a ring with `capacity` bytes. `capacity` must be a power of two
    /// (checked) so LSN masking is a single AND.
    pub fn new(capacity: usize) -> Ring {
        assert!(
            capacity.is_power_of_two() && capacity >= 64,
            "ring capacity must be a power of two >= 64, got {capacity}"
        );
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || UnsafeCell::new(0u8));
        Ring {
            buf: v.into_boxed_slice(),
            mask: (capacity - 1) as u64,
        }
    }

    /// Capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Mask for LSN → index translation.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Copy `src` into the ring at stream offset `at` (wrapping as needed).
    ///
    /// # Safety
    /// The byte range `[at, at + src.len())` of the log stream must be
    /// exclusively reserved by the caller: no concurrent `write_at` may
    /// target an overlapping range, and no concurrent `read_at` may read it
    /// until the caller publishes the range (release-store of a watermark
    /// covering it).
    ///
    /// # Panics
    /// Panics if `src.len()` exceeds the ring capacity.
    #[inline]
    pub unsafe fn write_at(&self, at: u64, src: &[u8]) {
        assert!(
            src.len() as u64 <= self.capacity(),
            "write larger than ring"
        );
        let idx = (at & self.mask) as usize;
        let cap = self.capacity() as usize;
        let first = src.len().min(cap - idx);
        // SAFETY: per the function contract the target range is exclusively
        // owned by this thread; UnsafeCell grants interior mutability.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.buf[idx].get(), first);
            if first < src.len() {
                // wrapped: remainder goes to the start of the ring
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(first),
                    self.buf[0].get(),
                    src.len() - first,
                );
            }
        }
    }

    /// Borrow the bytes `[at, at + len)` of the log stream directly out of
    /// the ring, as at most two contiguous slices (the second is empty when
    /// the range does not wrap). This is the zero-copy counterpart of
    /// [`Ring::read_at`]: the flush daemon hands these slices straight to
    /// [`crate::device::LogDevice::write_vectored`] instead of staging them
    /// through a scratch buffer.
    ///
    /// # Safety
    /// As for [`Ring::read_at`], the range must have been published and not
    /// yet reclaimed — and additionally it must remain unreclaimed for the
    /// whole lifetime of the returned slices, since they alias the ring's
    /// storage. In practice only the single reclaimer (the flush daemon) can
    /// uphold this: it does not advance the durable watermark until it is
    /// done with the slices.
    ///
    /// # Panics
    /// Panics if `len` exceeds the ring capacity.
    #[inline]
    pub unsafe fn read_slices(&self, at: u64, len: usize) -> (&[u8], &[u8]) {
        assert!(len as u64 <= self.capacity(), "read larger than ring");
        let idx = (at & self.mask) as usize;
        let cap = self.capacity() as usize;
        let first = len.min(cap - idx);
        // SAFETY: per the function contract the range is published, stable
        // and stays unreclaimed while the borrows live.
        unsafe {
            (
                std::slice::from_raw_parts(self.buf[idx].get(), first),
                std::slice::from_raw_parts(self.buf[0].get(), len - first),
            )
        }
    }

    /// Copy `dst.len()` bytes out of the ring starting at stream offset `at`.
    ///
    /// # Safety
    /// The byte range `[at, at + dst.len())` must have been published (an
    /// acquire-load of a watermark covering it must have been observed) and
    /// must not yet have been reclaimed for overwriting (i.e. it is within
    /// `capacity` bytes of the current reservation frontier).
    #[inline]
    pub unsafe fn read_at(&self, at: u64, dst: &mut [u8]) {
        assert!(dst.len() as u64 <= self.capacity(), "read larger than ring");
        let idx = (at & self.mask) as usize;
        let cap = self.capacity() as usize;
        let first = dst.len().min(cap - idx);
        // SAFETY: per the function contract the range is stable (published,
        // not reclaimed) for the duration of the copy.
        unsafe {
            std::ptr::copy_nonoverlapping(self.buf[idx].get(), dst.as_mut_ptr(), first);
            if first < dst.len() {
                std::ptr::copy_nonoverlapping(
                    self.buf[0].get(),
                    dst.as_mut_ptr().add(first),
                    dst.len() - first,
                );
            }
        }
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_no_wrap() {
        let r = Ring::new(256);
        let data = b"hello ring buffer";
        unsafe { r.write_at(10, data) };
        let mut out = vec![0u8; data.len()];
        unsafe { r.read_at(10, &mut out) };
        assert_eq!(&out, data);
    }

    #[test]
    fn roundtrip_wrapping() {
        let r = Ring::new(64);
        let data: Vec<u8> = (0..50).collect();
        // offset 40 in a 64-byte ring: 24 bytes fit, 26 wrap
        unsafe { r.write_at(1000 * 64 + 40, &data) };
        let mut out = vec![0u8; 50];
        unsafe { r.read_at(1000 * 64 + 40, &mut out) };
        assert_eq!(out, data);
    }

    #[test]
    fn read_slices_match_copying_reads() {
        let r = Ring::new(64);
        let data: Vec<u8> = (0..50).collect();
        unsafe { r.write_at(40, &data) };
        // Wrapping range: 24 bytes at the tail, 26 at the head.
        let (a, b) = unsafe { r.read_slices(40, 50) };
        assert_eq!(a.len(), 24);
        assert_eq!(b.len(), 26);
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(joined, data);
        // Non-wrapping range: second slice empty.
        let (a, b) = unsafe { r.read_slices(0, 30) };
        assert_eq!(a.len(), 30);
        assert!(b.is_empty());
        // Zero-length range.
        let (a, b) = unsafe { r.read_slices(17, 0) };
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn exact_capacity_write() {
        let r = Ring::new(64);
        let data: Vec<u8> = (0..64).collect();
        unsafe { r.write_at(7, &data) };
        let mut out = vec![0u8; 64];
        unsafe { r.read_at(7, &mut out) };
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic]
    fn oversized_write_panics() {
        let r = Ring::new(64);
        let data = vec![0u8; 65];
        unsafe { r.write_at(0, &data) };
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let _ = Ring::new(100);
    }

    #[test]
    fn disjoint_concurrent_writes() {
        use std::sync::Arc;
        let r = Arc::new(Ring::new(1 << 16));
        let mut handles = vec![];
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let pattern = vec![t as u8 + 1; 512];
                for i in 0..16 {
                    let at = t * 8192 + i * 512;
                    unsafe { r.write_at(at, &pattern) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            let mut out = vec![0u8; 512];
            unsafe { r.read_at(t * 8192, &mut out) };
            assert!(out.iter().all(|&b| b == t as u8 + 1));
        }
    }
}
