//! The Aether log manager: buffer variant + device + flush daemon + commit
//! pipeline behind one facade.

use crate::buffer::{BufferCore, BufferKind, EncodePayload, LogBuffer, LogSlot};
use crate::commit::{CommitAction, CommitGate, CommitHandle, CommitPipeline, DurabilityPolicy};
use crate::config::LogConfig;
use crate::device::{DeviceKind, LogDevice};
use crate::error::Result;
use crate::flush::FlushDaemon;
use crate::lsn::Lsn;
use crate::reader::LogReader;
use crate::record::{on_log_size, RecordKind};
use crate::stats::StatsSnapshot;
use crate::telemetry::{Telemetry, TelemetrySnapshot, Unit};
use std::sync::Arc;

/// Builder for [`LogManager`].
#[derive(Debug)]
pub struct LogManagerBuilder {
    config: LogConfig,
    buffer: BufferKind,
    device_kind: DeviceKind,
    device: Option<Arc<dyn LogDevice>>,
    start_lsn: Option<Lsn>,
}

impl std::fmt::Debug for dyn LogDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogDevice(len={})", self.len())
    }
}

impl Default for LogManagerBuilder {
    fn default() -> Self {
        LogManagerBuilder {
            config: LogConfig::default(),
            buffer: BufferKind::Hybrid,
            device_kind: DeviceKind::Ram,
            device: None,
            start_lsn: None,
        }
    }
}

impl LogManagerBuilder {
    /// Set the full configuration.
    pub fn config(mut self, config: LogConfig) -> Self {
        self.config = config;
        self
    }

    /// Choose the buffer insertion algorithm (default: Hybrid/CD).
    pub fn buffer(mut self, kind: BufferKind) -> Self {
        self.buffer = kind;
        self
    }

    /// Choose a device class (default: Ram).
    pub fn device(mut self, kind: DeviceKind) -> Self {
        self.device_kind = kind;
        self
    }

    /// Supply a pre-built device (e.g. a shared [`crate::device::SimDevice`]
    /// whose contents a test will inspect after a simulated crash).
    pub fn device_instance(mut self, device: Arc<dyn LogDevice>) -> Self {
        self.device = Some(device);
        self
    }

    /// Start LSN allocation at `lsn` instead of zero. After recovery this is
    /// set to the device length so new records land at matching offsets.
    pub fn start_lsn(mut self, lsn: Lsn) -> Self {
        self.start_lsn = Some(lsn);
        self
    }

    /// Build; panics on invalid configuration (see
    /// [`LogManagerBuilder::try_build`] for the fallible form).
    pub fn build(self) -> LogManager {
        self.try_build().expect("invalid log configuration")
    }

    /// Build, surfacing configuration/I-O errors.
    pub fn try_build(self) -> Result<LogManager> {
        self.config
            .validate()
            .map_err(crate::error::LogError::Config)?;
        let device = match self.device {
            Some(d) => d,
            None => self.device_kind.build()?,
        };
        let start = self.start_lsn.unwrap_or(Lsn::ZERO);
        let core = BufferCore::with_start(&self.config, start);
        let buffer = self.buffer.build(Arc::clone(&core), &self.config);
        let pipeline = Arc::new(CommitPipeline::new());
        let gate = Arc::new(CommitGate::new());
        pipeline.set_telemetry(Arc::clone(core.telemetry()));
        gate.set_telemetry(Arc::clone(core.telemetry()));
        let daemon = if device.discards() {
            // Microbenchmark mode: no daemon; releasing reclaims directly.
            core.set_auto_reclaim(true);
            None
        } else {
            Some(FlushDaemon::spawn(
                &self.config.runtime,
                Arc::clone(&core),
                Arc::clone(&device),
                Arc::clone(&pipeline),
                Arc::clone(&gate),
                self.config.group_commit.clone(),
                self.config.flush_retry.clone(),
            ))
        };
        let flush_shared = daemon.as_ref().map(|d| Arc::clone(d.shared()));
        let truncation = Arc::new(TruncationShared {
            low_water: crate::lsn::AtomicLsn::new(device.low_water()),
            truncations: std::sync::atomic::AtomicU64::new(0),
            segments_recycled: std::sync::atomic::AtomicU64::new(0),
            mutex: parking_lot::Mutex::new(()),
            cv: crate::runtime::RtCondvar::new(),
        });
        // Periodic telemetry exporter: snapshots the whole log (registry +
        // layer counters) on a fixed cadence; the final snapshot is emitted
        // at shutdown whether or not the daemon runs.
        let exporter = match (
            self.config.telemetry.enabled,
            self.config.telemetry.export_every,
        ) {
            (true, Some(every)) => {
                let out = std::env::var("AETHER_TELEMETRY_OUT")
                    .ok()
                    .filter(|p| !p.is_empty())
                    .map(std::path::PathBuf::from);
                let c = Arc::clone(&core);
                let p = Arc::clone(&pipeline);
                let g = Arc::clone(&gate);
                let f = flush_shared.clone();
                let t = Arc::clone(&truncation);
                let d = Arc::clone(&device);
                Some(crate::telemetry::spawn_exporter(
                    &self.config.runtime,
                    every,
                    out,
                    move || assemble_snapshot("log", &c, &p, &g, f.as_ref(), &t, &d),
                ))
            }
            _ => None,
        };
        Ok(LogManager {
            core,
            buffer,
            device,
            pipeline,
            gate,
            flush_shared,
            truncation,
            daemon: parking_lot::Mutex::new(daemon),
            exporter: parking_lot::Mutex::new(exporter),
            final_emitted: std::sync::atomic::AtomicBool::new(false),
            config: self.config,
        })
    }
}

/// Assemble the full-log telemetry snapshot: the registry's own metrics
/// plus the counters that live outside it (buffer stats, flush totals,
/// commit pipeline, truncation watermarks, replication gate).
fn assemble_snapshot(
    scope: &str,
    core: &Arc<BufferCore>,
    pipeline: &Arc<CommitPipeline>,
    gate: &Arc<CommitGate>,
    flush_shared: Option<&Arc<crate::flush::FlushShared>>,
    truncation: &Arc<TruncationShared>,
    device: &Arc<dyn LogDevice>,
) -> TelemetrySnapshot {
    let mut snap = core.telemetry().snapshot(scope);
    let s = core.stats.snapshot();
    snap.push_counter("log.inserts", Unit::Records, s.inserts);
    snap.push_counter("log.bytes", Unit::Bytes, s.bytes);
    snap.push_counter("log.direct_acquires", Unit::Count, s.direct_acquires);
    snap.push_counter("log.consolidations", Unit::Count, s.consolidations);
    snap.push_counter("log.group_acquires", Unit::Count, s.group_acquires);
    snap.push_counter("log.delegated_releases", Unit::Count, s.delegated_releases);
    snap.push_counter("log.wrapper_inserts", Unit::Count, s.wrapper_inserts);
    snap.push_counter("log.scratch_bytes", Unit::Bytes, s.scratch_bytes);
    snap.push_counter("log.acquire_wait_ns", Unit::Nanos, s.acquire_wait_ns);
    snap.push_counter("log.fill_ns", Unit::Nanos, s.fill_ns);
    snap.push_counter("log.release_wait_ns", Unit::Nanos, s.release_wait_ns);
    if let Some(f) = flush_shared {
        snap.push_counter("flush.flushes", Unit::Count, f.flush_count());
        snap.push_counter("flush.flushed_bytes", Unit::Bytes, f.flushed_bytes());
    }
    snap.push_counter("commit.submitted", Unit::Records, pipeline.submitted());
    snap.push_counter("commit.completed", Unit::Records, pipeline.completed());
    snap.push_gauge("commit.pending", Unit::Records, pipeline.pending() as i64);
    let relaxed = std::sync::atomic::Ordering::Relaxed;
    snap.push_counter(
        "truncation.truncations",
        Unit::Count,
        truncation.truncations.load(relaxed),
    );
    snap.push_counter(
        "truncation.segments_recycled",
        Unit::Count,
        truncation.segments_recycled.load(relaxed),
    );
    snap.push_gauge(
        "truncation.low_water",
        Unit::Lsns,
        device.low_water().raw() as i64,
    );
    snap.push_gauge(
        "log.released_lsn",
        Unit::Lsns,
        core.released_lsn().raw() as i64,
    );
    snap.push_gauge(
        "log.durable_lsn",
        Unit::Lsns,
        core.durable_lsn().raw() as i64,
    );
    if gate.policy().is_some() {
        snap.push_gauge(
            "repl.replicated_floor",
            Unit::Lsns,
            gate.replicated_floor().raw() as i64,
        );
        snap.push_gauge(
            "repl.slowest_ack",
            Unit::Lsns,
            gate.slowest_ack().raw() as i64,
        );
    }
    snap
}

/// The assembled log manager.
///
/// Thread-safe: share it via `Arc` and call [`LogManager::insert`] from any
/// number of threads.
pub struct LogManager {
    core: Arc<BufferCore>,
    buffer: Arc<dyn LogBuffer>,
    device: Arc<dyn LogDevice>,
    pipeline: Arc<CommitPipeline>,
    /// Replication gate: commit completion additionally waits on replica
    /// acks per the installed [`DurabilityPolicy`] (transparent by default).
    gate: Arc<CommitGate>,
    /// Shared daemon state, used lock-free-ish on the commit path so any
    /// number of committers can wait concurrently (group commit).
    flush_shared: Option<Arc<crate::flush::FlushShared>>,
    /// Truncation watermark + counters, shared with [`TruncationWatch`]es.
    truncation: Arc<TruncationShared>,
    /// The daemon thread handle; the mutex is touched only at shutdown.
    daemon: parking_lot::Mutex<Option<FlushDaemon>>,
    /// Periodic telemetry exporter, if configured; stopped at shutdown.
    exporter: parking_lot::Mutex<Option<crate::telemetry::Exporter>>,
    /// Guard so the shutdown telemetry emit happens exactly once.
    final_emitted: std::sync::atomic::AtomicBool,
    config: LogConfig,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager")
            .field("buffer", &self.buffer.kind())
            .field("released", &self.released_lsn())
            .field("durable", &self.durable_lsn())
            .finish()
    }
}

impl LogManager {
    /// Start building a log manager.
    pub fn builder() -> LogManagerBuilder {
        LogManagerBuilder::default()
    }

    /// Insert a record; returns its start LSN.
    pub fn insert(&self, kind: RecordKind, txn: u64, payload: &[u8]) -> Lsn {
        self.buffer.insert(kind, txn, Lsn::ZERO, payload)
    }

    /// Insert a record chained to the transaction's previous record (ARIES
    /// undo chain); returns its start LSN.
    pub fn insert_chained(&self, kind: RecordKind, txn: u64, prev: Lsn, payload: &[u8]) -> Lsn {
        self.buffer.insert(kind, txn, prev, payload)
    }

    /// Insert and also return the record's end LSN (`start + on-log size`),
    /// the durability target for commit waits.
    pub fn insert_ext(&self, kind: RecordKind, txn: u64, prev: Lsn, payload: &[u8]) -> (Lsn, Lsn) {
        let start = self.buffer.insert(kind, txn, prev, payload);
        (start, start.advance(on_log_size(payload.len()) as u64))
    }

    /// Reserve a record slot and serialize `payload` **directly into the
    /// ring** — the zero-copy, zero-allocation insert path. Returns
    /// `(start, end)` LSNs like [`LogManager::insert_ext`], but with no
    /// intermediate encode buffer anywhere: the payload's bytes exist only
    /// in the ring (and the frame CRC streams along with them).
    pub fn insert_payload<P: EncodePayload + ?Sized>(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload: &P,
    ) -> (Lsn, Lsn) {
        let mut slot = self.buffer.reserve(kind, txn, prev, payload.encoded_len());
        slot.fill(payload);
        let end = slot.end_lsn();
        (slot.release(), end)
    }

    /// Reserve a record slot for `payload_len` payload bytes; the caller
    /// streams the payload through the returned [`LogSlot`] and releases
    /// it. See [`crate::buffer::LogBuffer::reserve`].
    pub fn reserve(
        &self,
        kind: RecordKind,
        txn: u64,
        prev: Lsn,
        payload_len: usize,
    ) -> LogSlot<'_> {
        self.buffer.reserve(kind, txn, prev, payload_len)
    }

    /// The buffer variant in use.
    pub fn buffer_kind(&self) -> BufferKind {
        self.buffer.kind()
    }

    /// Direct access to the buffer (microbenchmarks).
    pub fn buffer(&self) -> &Arc<dyn LogBuffer> {
        &self.buffer
    }

    /// The configuration this manager was built with.
    pub fn config(&self) -> &LogConfig {
        &self.config
    }

    /// Highest released (fill-complete, flushable) LSN.
    pub fn released_lsn(&self) -> Lsn {
        self.core.released_lsn()
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        self.core.durable_lsn()
    }

    /// Block until everything at or below `lsn` is durable (baseline commit:
    /// this is delay (A)+(C) of Figure 1 — the I/O wait plus the context
    /// switch pair).
    ///
    /// Fails with [`crate::AetherError::Poisoned`] when the flush daemon has
    /// halted on a permanent device failure, and with
    /// [`crate::AetherError::Shutdown`] when the log shut down first —
    /// callers get an `Err`, never a hang.
    pub fn flush_until(&self, lsn: Lsn) -> Result<()> {
        match &self.flush_shared {
            Some(shared) => shared.flush_until(&self.core, lsn),
            None => {
                // Auto-reclaim mode: durability tracks release; wait out any
                // in-flight releases (CDME delegation can lag briefly).
                let mut backoff = crate::buffer::WaitBackoff::new();
                while self.core.durable_lsn() < lsn {
                    backoff.wait();
                }
                Ok(())
            }
        }
    }

    /// Flush everything released so far and wait for it; fallible like
    /// [`LogManager::flush_until`].
    pub fn flush_all(&self) -> Result<()> {
        let target = self.core.released_lsn();
        self.flush_until(target)
    }

    /// True when the log is poisoned: the flush daemon halted on a permanent
    /// device failure (or exhausted its retry budget) and no further bytes
    /// will ever become durable.
    pub fn is_poisoned(&self) -> bool {
        self.poison_reason().is_some()
    }

    /// The poison reason, if the log is poisoned.
    pub fn poison_reason(&self) -> Option<String> {
        self.flush_shared.as_ref().and_then(|s| s.poisoned())
    }

    /// Register `action` to run once `lsn` is committable — durable locally
    /// *and* sufficiently replicated per the gate policy (flush pipelining:
    /// the caller does **not** block). Returns immediately.
    pub fn commit_async(&self, lsn: Lsn, action: CommitAction) {
        if self.is_poisoned() {
            // Fail fast: the daemon is gone, nothing will ever complete this.
            CommitPipeline::fail_action(action);
            return;
        }
        if self.commit_lsn() >= lsn {
            // Already committable: run inline.
            self.pipeline.submit(lsn, action);
            self.pipeline.complete_upto(self.commit_lsn());
            return;
        }
        self.pipeline.submit(lsn, action);
        match &self.flush_shared {
            Some(shared) => shared.note_commit(&self.config.group_commit),
            None => {
                self.pipeline.complete_upto(self.commit_lsn());
            }
        }
    }

    /// Convenience: insert a commit record for `txn` and return a waitable
    /// handle that completes when it is durable.
    pub fn commit(&self, txn: u64, prev: Lsn) -> CommitHandle {
        let (_, end) = self.insert_ext(RecordKind::Commit, txn, prev, &[]);
        let (h, st) = CommitHandle::new();
        self.commit_async(end, CommitAction::Notify(st));
        h
    }

    /// The commit pipeline (drivers read completion counts from here).
    pub fn pipeline(&self) -> &Arc<CommitPipeline> {
        &self.pipeline
    }

    /// Number of device syncs performed so far (0 in microbenchmark mode).
    pub fn flush_count(&self) -> u64 {
        self.flush_shared
            .as_ref()
            .map(|s| s.flush_count())
            .unwrap_or(0)
    }

    /// Buffer statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.core.stats.snapshot()
    }

    /// The log's telemetry registry (register layer metrics, flip sampling).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.core.telemetry()
    }

    /// Full telemetry snapshot under the default `log` scope; see
    /// [`LogManager::telemetry_snapshot_scoped`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.telemetry_snapshot_scoped("log")
    }

    /// Full telemetry snapshot tagged with `scope` (e.g. `primary`,
    /// `replica-1`): registry metrics plus buffer-stats counters, flush
    /// totals, commit-pipeline counts, truncation watermarks, and — when a
    /// durability policy is installed — the replication gate's floors.
    pub fn telemetry_snapshot_scoped(&self, scope: &str) -> TelemetrySnapshot {
        assemble_snapshot(
            scope,
            &self.core,
            &self.pipeline,
            &self.gate,
            self.flush_shared.as_ref(),
            &self.truncation,
            &self.device,
        )
    }

    /// Enable per-phase timing (Figures 2/7 breakdowns).
    pub fn set_timing(&self, on: bool) {
        self.core.stats.set_timing(on);
    }

    /// The device (tests inspect contents; recovery reads records).
    pub fn device(&self) -> &Arc<dyn LogDevice> {
        &self.device
    }

    /// A notification handle over the durable watermark: waiting replaces
    /// spin/sleep polling of [`LogManager::durable_lsn`]. Used by the log
    /// shipper to tail the durable frontier, and by tests.
    pub fn durable_watch(&self) -> DurableWatch {
        DurableWatch {
            core: Arc::clone(&self.core),
        }
    }

    /// The replication commit gate (register replicas, install a policy).
    pub fn commit_gate(&self) -> &Arc<CommitGate> {
        &self.gate
    }

    /// Install a replication durability policy; see [`DurabilityPolicy`].
    pub fn set_durability_policy(&self, policy: DurabilityPolicy) {
        self.gate.set_policy(policy);
        self.replication_recheck();
    }

    /// Highest LSN at which commits may currently complete:
    /// `min(durable, replicated floor)`.
    pub fn commit_lsn(&self) -> Lsn {
        self.gate.effective(self.core.durable_lsn())
    }

    /// Re-evaluate the commit gate after replica acks advanced: completes
    /// newly-eligible pipelined commits and wakes blocking committers. The
    /// shipper calls this once per ack batch — one recheck per flush group,
    /// not per transaction, preserving group-commit amortization.
    pub fn replication_recheck(&self) {
        self.pipeline.complete_upto(self.commit_lsn());
        self.gate.notify();
    }

    /// Block until `lsn` is fully committable: durable locally (group-commit
    /// flush machinery) and replicated per the gate policy. With no policy
    /// installed this is exactly [`LogManager::flush_until`].
    ///
    /// `Err` means local durability failed (log poisoned or shut down) —
    /// the commit is *not* durable. `Ok(false)` means the bytes are durable
    /// locally but the replication gate was poisoned before enough acks
    /// arrived: the commit's replicated fate is indeterminate. `Ok(true)` is
    /// a fully-committed transaction.
    #[must_use = "a false return means the commit did not replicate"]
    pub fn wait_committed(&self, lsn: Lsn) -> Result<bool> {
        self.flush_until(lsn)?;
        if self.gate.policy().map(|p| p.required_acks()).unwrap_or(0) > 0 {
            let core = Arc::clone(&self.core);
            Ok(self.gate.wait_effective(lsn, move || core.durable_lsn()))
        } else {
            Ok(true)
        }
    }

    /// A recovery-scan reader over the device from its low-water mark (LSN
    /// 0 until the log has been truncated).
    pub fn reader(&self) -> LogReader {
        LogReader::new(Arc::clone(&self.device))
    }

    // ------------------------------------------------------------------
    // Log truncation (checkpoint-driven segment recycling)
    // ------------------------------------------------------------------

    /// The log's low-water mark: the stream offset of the first byte any
    /// scan may rely on. Everything below has been retired by
    /// [`LogManager::truncate_to`]; 0 for devices that never truncate.
    pub fn low_water(&self) -> Lsn {
        self.device.low_water()
    }

    /// Bytes of log currently retained (`len - low_water`): the on-disk
    /// footprint recovery would have to scan.
    pub fn retained_bytes(&self) -> u64 {
        self.device.len().saturating_sub(self.low_water().raw())
    }

    /// Retire the log prefix below `lsn` — the **safe** truncation entry
    /// point. `lsn` must be a truncation point computed by the storage
    /// layer (a record boundary at or below the last fuzzy checkpoint's
    /// redo LSN); this method additionally clamps it to the durable
    /// watermark and refuses to act at all while any registered replica has
    /// acknowledged less than the target — a lagging shipper still needs
    /// those bytes, and partial truncation to an ack offset could land
    /// mid-record. All-or-nothing keeps the low-water mark on a record
    /// boundary, which recovery scans depend on.
    ///
    /// Returns the truncation outcome; `applied` never exceeds
    /// `min(lsn, durable, slowest replica ack)` — invariant 7 of DESIGN.md.
    pub fn truncate_to(&self, lsn: Lsn) -> TruncationOutcome {
        let target = lsn.min(self.core.durable_lsn());
        if self.gate.slowest_ack() < target {
            return TruncationOutcome {
                requested: lsn,
                applied: self.low_water(),
                segments_recycled: 0,
                held_back_by_replica: true,
                device_error: false,
            };
        }
        self.apply_truncation(lsn, target)
    }

    /// Retire the log prefix below `lsn` **ignoring replica acks** (still
    /// clamped to the durable watermark). This is the bounded-disk
    /// emergency lever: a shipper stranded below the new low-water mark can
    /// no longer read the stream and must re-bootstrap its replica from a
    /// checkpoint snapshot (`aether-repl` does so automatically). Prefer
    /// [`LogManager::truncate_to`].
    pub fn force_truncate_to(&self, lsn: Lsn) -> TruncationOutcome {
        let target = lsn.min(self.core.durable_lsn());
        self.apply_truncation(lsn, target)
    }

    fn apply_truncation(&self, requested: Lsn, target: Lsn) -> TruncationOutcome {
        // A failed truncation is not fatal to the log — the bytes are merely
        // still retained. Report it so the caller (checkpointer, disk-pressure
        // supervisor) can alarm and retry; the low-water mark is unchanged.
        let (recycled, device_error) = match self.device.truncate_before(target) {
            Ok(n) => (n, false),
            Err(_) => (0, true),
        };
        let lw = self.device.low_water();
        self.truncation.low_water.fetch_max(lw);
        self.truncation
            .truncations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.truncation
            .segments_recycled
            .fetch_add(recycled as u64, std::sync::atomic::Ordering::Relaxed);
        {
            let _g = self.truncation.mutex.lock();
            self.truncation.cv.notify_all();
        }
        TruncationOutcome {
            requested,
            applied: lw,
            segments_recycled: recycled,
            held_back_by_replica: false,
            device_error,
        }
    }

    /// Truncation counters (complements the buffer stats).
    pub fn truncation_stats(&self) -> TruncationStats {
        TruncationStats {
            low_water: self.low_water(),
            truncations: self
                .truncation
                .truncations
                .load(std::sync::atomic::Ordering::Relaxed),
            segments_recycled: self
                .truncation
                .segments_recycled
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// A notification handle over the low-water mark, the truncation
    /// analogue of [`LogManager::durable_watch`]: blocking waits instead of
    /// polling for "has the log been truncated past X". Cloneable and
    /// detached from the manager's lifetime.
    pub fn truncation_watch(&self) -> TruncationWatch {
        TruncationWatch {
            shared: Arc::clone(&self.truncation),
        }
    }

    /// Stop the flush daemon after a final flush. Called automatically on
    /// drop; explicit calls are idempotent. With telemetry enabled, one
    /// final snapshot is emitted (by the exporter daemon if one runs, else
    /// directly to `AETHER_TELEMETRY_OUT` when set).
    pub fn shutdown(&self) {
        if let Some(d) = self.daemon.lock().as_mut() {
            d.shutdown();
        }
        let exporter = self.exporter.lock().take();
        if !self
            .final_emitted
            .swap(true, std::sync::atomic::Ordering::Relaxed)
        {
            match exporter {
                // Stopping the exporter emits the final snapshot itself.
                Some(mut e) => e.stop(),
                None if self.core.telemetry().on() => {
                    let _ = self.telemetry_snapshot().emit_env();
                }
                None => {}
            }
        }
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A waitable view of a log's durable watermark (see
/// [`LogManager::durable_watch`]). Cloneable and detached from the manager's
/// lifetime: it holds only the shared buffer core.
#[derive(Clone)]
pub struct DurableWatch {
    core: Arc<BufferCore>,
}

impl std::fmt::Debug for DurableWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableWatch")
            .field("durable", &self.core.durable_lsn())
            .finish()
    }
}

impl DurableWatch {
    /// Current durable LSN.
    pub fn current(&self) -> Lsn {
        self.core.durable_lsn()
    }

    /// Block until the durable watermark reaches `lsn`; returns the durable
    /// LSN observed at wake-up.
    pub fn wait_for(&self, lsn: Lsn) -> Lsn {
        self.core.wait_durable(lsn)
    }

    /// Block until the durable watermark exceeds `past` or `timeout`
    /// elapses; returns the durable LSN at wake-up. The timeout keeps
    /// tailing loops (the log shipper) responsive to shutdown.
    pub fn wait_past(&self, past: Lsn, timeout: std::time::Duration) -> Lsn {
        self.core.wait_durable_timeout(past.advance(1), timeout)
    }
}

/// Shared state behind [`LogManager::truncation_watch`].
struct TruncationShared {
    low_water: crate::lsn::AtomicLsn,
    truncations: std::sync::atomic::AtomicU64,
    segments_recycled: std::sync::atomic::AtomicU64,
    mutex: parking_lot::Mutex<()>,
    cv: crate::runtime::RtCondvar,
}

/// Result of one [`LogManager::truncate_to`] / `force_truncate_to` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncationOutcome {
    /// The truncation point the caller asked for.
    pub requested: Lsn,
    /// The low-water mark after the call (≤ `requested`, and unchanged when
    /// the call was held back).
    pub applied: Lsn,
    /// Whole segments recycled by this call.
    pub segments_recycled: usize,
    /// True when a lagging replica ack prevented any truncation (safe
    /// entry point only; `force_truncate_to` never reports this).
    pub held_back_by_replica: bool,
    /// True when the device refused to drop the prefix (e.g. an I/O error
    /// while sealing/recycling segments). The low-water mark is unchanged;
    /// the bytes are still retained and the caller should retry or alarm.
    pub device_error: bool,
}

/// Counters over the log's truncation history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncationStats {
    /// Current low-water mark.
    pub low_water: Lsn,
    /// `truncate_to`/`force_truncate_to` calls that reached the device.
    pub truncations: u64,
    /// Whole segments recycled across all calls.
    pub segments_recycled: u64,
}

/// A waitable view of a log's low-water mark (see
/// [`LogManager::truncation_watch`]) — the truncation counterpart of
/// [`DurableWatch`].
#[derive(Clone)]
pub struct TruncationWatch {
    shared: Arc<TruncationShared>,
}

impl std::fmt::Debug for TruncationWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TruncationWatch")
            .field("low_water", &self.shared.low_water.load())
            .finish()
    }
}

impl TruncationWatch {
    /// Current low-water mark.
    pub fn current(&self) -> Lsn {
        self.shared.low_water.load()
    }

    /// Block until the low-water mark exceeds `past` or `timeout` elapses;
    /// returns the mark at wake-up. The timeout keeps watcher loops (a
    /// shipper deciding whether its read position was truncated away)
    /// responsive to shutdown.
    pub fn wait_past(&self, past: Lsn, timeout: std::time::Duration) -> Lsn {
        let deadline = crate::runtime::monotonic_ns().saturating_add(timeout.as_nanos() as u64);
        let mut g = self.shared.mutex.lock();
        loop {
            let lw = self.shared.low_water.load();
            if lw > past {
                return lw;
            }
            let now = crate::runtime::monotonic_ns();
            if now >= deadline {
                return lw;
            }
            let left = std::time::Duration::from_nanos(deadline - now);
            let (g2, _) = self.shared.cv.wait_for(&self.shared.mutex, g, left);
            g = g2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use std::time::Duration;

    #[test]
    fn build_all_variants() {
        for kind in BufferKind::ALL {
            let log = LogManager::builder()
                .buffer(kind)
                .device(DeviceKind::Ram)
                .build();
            assert_eq!(log.buffer_kind(), kind);
            let lsn = log.insert(RecordKind::Filler, 1, b"abc");
            log.flush_all().unwrap();
            assert!(log.durable_lsn() > lsn);
        }
    }

    #[test]
    fn microbenchmark_mode_has_no_daemon() {
        let log = LogManager::builder().device(DeviceKind::Null).build();
        log.insert(RecordKind::Filler, 1, &[0; 120]);
        assert_eq!(log.flush_count(), 0);
        assert_eq!(log.durable_lsn(), log.released_lsn());
        log.flush_all().unwrap(); // no-op, must not hang
    }

    #[test]
    fn commit_handle_completes() {
        let log = LogManager::builder()
            .device(DeviceKind::CustomUs(200))
            .build();
        let prev = log.insert(RecordKind::Update, 42, &[1; 64]);
        let h = log.commit(42, prev);
        assert!(h.wait());
        assert!(log.durable_lsn() >= log.released_lsn());
        assert_eq!(log.pipeline().completed(), 1);
    }

    #[test]
    fn commit_async_runs_callbacks() {
        let log = Arc::new(LogManager::builder().device(DeviceKind::Ram).build());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for i in 0..20u64 {
            let (_, end) = log.insert_ext(RecordKind::Commit, i, Lsn::ZERO, &[]);
            let c = Arc::clone(&counter);
            log.commit_async(
                end,
                CommitAction::Callback(Box::new(move |_| {
                    c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                })),
            );
        }
        log.flush_all().unwrap();
        // Durable-watch notification instead of a sleep-poll: once the log
        // is durable, callbacks complete momentarily (daemon reattach).
        log.durable_watch().wait_for(log.released_lsn());
        let mut backoff = crate::buffer::WaitBackoff::new();
        while counter.load(std::sync::atomic::Ordering::Relaxed) < 20 {
            backoff.wait();
        }
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 20);
    }

    #[test]
    fn records_roundtrip_through_device() {
        let device = Arc::new(SimDevice::new(Duration::ZERO));
        let log = LogManager::builder()
            .device_instance(device.clone())
            .build();
        let payloads: Vec<Vec<u8>> = (0..30).map(|i| vec![i as u8; 10 + i * 7]).collect();
        for (i, p) in payloads.iter().enumerate() {
            log.insert(RecordKind::Update, i as u64, p);
        }
        log.flush_all().unwrap();
        let mut reader = log.reader();
        let mut n = 0;
        while let Some(rec) = reader.next_record().unwrap() {
            assert_eq!(rec.header.txn, n as u64);
            assert_eq!(rec.payload, payloads[n]);
            n += 1;
        }
        assert_eq!(n, payloads.len());
    }

    #[test]
    fn truncate_to_recycles_segments_and_notifies_watch() {
        use crate::partition::{MemSegmentFactory, SegmentedDevice};
        let seg = Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 4096).unwrap());
        let log = LogManager::builder()
            .device_instance(Arc::clone(&seg) as Arc<dyn crate::device::LogDevice>)
            .build();
        for i in 0..200u64 {
            log.insert(RecordKind::Update, i, &[7u8; 100]);
        }
        log.flush_all().unwrap();
        assert_eq!(log.low_water(), Lsn::ZERO);
        let full = log.retained_bytes();
        let watch = log.truncation_watch();
        // Pick a record boundary roughly halfway in.
        let mid = {
            let mut r = log.reader();
            let mut at = Lsn::ZERO;
            while at.raw() < log.durable_lsn().raw() / 2 {
                at = r.next_record().unwrap().unwrap().next_lsn();
            }
            at
        };
        let waiter = {
            let watch = watch.clone();
            std::thread::spawn(move || watch.wait_past(Lsn::ZERO, Duration::from_secs(5)))
        };
        let out = log.truncate_to(mid);
        assert!(!out.held_back_by_replica);
        assert_eq!(out.applied, mid);
        assert!(out.segments_recycled > 0);
        assert_eq!(log.low_water(), mid);
        assert!(log.retained_bytes() < full);
        assert_eq!(waiter.join().unwrap(), mid);
        let stats = log.truncation_stats();
        assert_eq!(stats.low_water, mid);
        assert_eq!(stats.truncations, 1);
        assert_eq!(stats.segments_recycled, out.segments_recycled as u64);
        // The reader now starts at the mark and the tail is intact.
        let recs = log.reader().read_all().unwrap();
        assert_eq!(recs.first().unwrap().lsn, mid);
        assert_eq!(recs.last().unwrap().next_lsn(), log.durable_lsn());
    }

    #[test]
    fn truncate_to_is_held_back_by_slow_replicas_but_force_is_not() {
        use crate::partition::{MemSegmentFactory, SegmentedDevice};
        let seg = Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 4096).unwrap());
        let log = LogManager::builder()
            .device_instance(Arc::clone(&seg) as Arc<dyn crate::device::LogDevice>)
            .build();
        let mut end = Lsn::ZERO;
        for i in 0..100u64 {
            let (_, e) = log.insert_ext(RecordKind::Update, i, Lsn::ZERO, &[7u8; 100]);
            end = e;
        }
        log.flush_all().unwrap();
        let ack = log.commit_gate().register_replica();
        ack.advance(Lsn(end.raw() / 4));
        let out = log.truncate_to(end);
        assert!(out.held_back_by_replica, "slow replica must pin the log");
        assert_eq!(out.applied, Lsn::ZERO);
        assert_eq!(log.low_water(), Lsn::ZERO);
        // The emergency lever ignores the ack (laggards re-bootstrap).
        let out = log.force_truncate_to(end);
        assert!(!out.held_back_by_replica);
        assert_eq!(out.applied, end);
        assert_eq!(log.low_water(), end);
        assert_eq!(log.retained_bytes(), 0);
        // Once the replica catches up, safe truncation proceeds again.
        ack.advance(end);
        assert!(!log.truncate_to(end).held_back_by_replica);
    }

    #[test]
    fn truncate_to_clamps_to_durable_on_plain_devices() {
        // Non-segmented devices ignore truncation: the call is a no-op with
        // a zero low-water mark, so recovery semantics never change.
        let log = LogManager::builder().device(DeviceKind::Ram).build();
        log.insert(RecordKind::Filler, 0, &[1; 64]);
        log.flush_all().unwrap();
        let out = log.truncate_to(log.durable_lsn());
        assert_eq!(out.applied, Lsn::ZERO);
        assert_eq!(out.segments_recycled, 0);
        assert_eq!(log.low_water(), Lsn::ZERO);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let log = LogManager::builder().device(DeviceKind::Ram).build();
        log.insert(RecordKind::Filler, 0, &[1; 16]);
        log.shutdown();
        log.shutdown();
        drop(log);
    }

    #[test]
    fn concurrent_inserts_through_manager() {
        let log = Arc::new(
            LogManager::builder()
                .buffer(BufferKind::Hybrid)
                .device(DeviceKind::Ram)
                .build(),
        );
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for _ in 0..500 {
                        log.insert(RecordKind::Update, t, &[t as u8; 88]);
                    }
                });
            }
        });
        log.flush_all().unwrap();
        let stats = log.stats();
        assert_eq!(stats.inserts, 8 * 500);
        assert_eq!(log.durable_lsn(), Lsn(stats.bytes));
    }
}
