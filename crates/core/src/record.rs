//! Log record layout.
//!
//! A log record is a fixed 32-byte header followed by an arbitrary payload
//! (§5 of the paper: "a standard header followed by an arbitrary payload").
//! Records are padded to 8-byte alignment so that headers never straddle an
//! odd boundary; the pad bytes are zero. Buffer allocation is *composable*:
//! the concatenation of two well-formed records is itself a well-formed
//! sequence — this is exactly the property the consolidation array exploits
//! when it carves one group allocation into many records.
//!
//! Shore-MT's record-size distribution (peaks at 40 B and 264 B, average
//! ~120 B, max 12 kiB, §5/§6.3.1) informs the defaults used by the
//! microbenchmarks in `aether-bench`.

use crate::lsn::Lsn;

/// Size in bytes of the on-log record header.
pub const HEADER_SIZE: usize = 32;

/// Byte offset of the checksum field within the encoded header. The frame
/// CRC is computed over the header with these four bytes zeroed, then the
/// final value is patched in place — the header is serialized exactly once.
pub const CHECKSUM_OFFSET: usize = 12;

/// Records are padded to this alignment in the log stream.
pub const RECORD_ALIGN: usize = 8;

/// Maximum payload the log accepts in one record. Shore-MT's largest record
/// is 12 kiB; we allow up to 1 MiB so the skew experiments (§A.3, Fig. 11) can
/// push outliers to 64 kiB and beyond.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Magic tag stored in the top byte of `flags` word for torn-write detection.
pub const RECORD_MAGIC: u8 = 0xA7;

/// The type of a log record.
///
/// `aether-core` itself is policy-free: it treats these as opaque tags. The
/// storage manager (`aether-storage`) gives them ARIES semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RecordKind {
    /// Physiological page update (redo + undo payload).
    Update = 1,
    /// Transaction commit.
    Commit = 2,
    /// Transaction abort (end of rollback).
    Abort = 3,
    /// Compensation log record written during rollback.
    Clr = 4,
    /// Fuzzy checkpoint begin.
    CheckpointBegin = 5,
    /// Fuzzy checkpoint end (carries ATT + DPT).
    CheckpointEnd = 6,
    /// Record inserted by microbenchmarks; payload is arbitrary filler.
    Filler = 7,
    /// Transaction end (after commit becomes durable; releases ATT entry).
    End = 8,
}

impl RecordKind {
    /// Decode from the on-log byte.
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            1 => RecordKind::Update,
            2 => RecordKind::Commit,
            3 => RecordKind::Abort,
            4 => RecordKind::Clr,
            5 => RecordKind::CheckpointBegin,
            6 => RecordKind::CheckpointEnd,
            7 => RecordKind::Filler,
            8 => RecordKind::End,
            _ => return None,
        })
    }
}

/// Round `len` up to [`RECORD_ALIGN`].
#[inline]
pub const fn align_up(len: usize) -> usize {
    (len + RECORD_ALIGN - 1) & !(RECORD_ALIGN - 1)
}

/// Total on-log footprint (header + payload + pad) of a record with
/// `payload_len` bytes of payload.
#[inline]
pub const fn on_log_size(payload_len: usize) -> usize {
    align_up(HEADER_SIZE + payload_len)
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup tables for
/// slice-by-4 processing, generated at compile time. CRC32 is the standard
/// frame check for both on-disk log records and on-wire replication frames:
/// unlike the previous xor-rotate-multiply hash, it detects all burst errors
/// up to 32 bits and has well-understood behavior under bit flips.
const CRC32_TABLES: [[u32; 256]; 4] = {
    let mut tables = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            b += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 4 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Feed `data` into a running (pre-finalization) CRC32 state. Start from
/// [`CRC32_INIT`]; finalize with [`crc32_finish`]. Streaming form so callers
/// (the record frame, the replication wire frame) can checksum a header and
/// a payload without concatenating them.
pub fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        let v = crc ^ u32::from_le_bytes(c.try_into().unwrap());
        crc = CRC32_TABLES[3][(v & 0xFF) as usize]
            ^ CRC32_TABLES[2][((v >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((v >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(v >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Initial CRC32 state for [`crc32_update`].
pub const CRC32_INIT: u32 = 0xFFFF_FFFF;

/// Finalize a running CRC32 state.
#[inline]
pub const fn crc32_finish(crc: u32) -> u32 {
    crc ^ 0xFFFF_FFFF
}

/// One-shot CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC32_INIT, data))
}

/// Checksum over a record *frame*: the 32-byte header (with the checksum
/// field itself zeroed) followed by the payload. Covering the header — not
/// just the payload — means a torn or bit-flipped header field (txn id,
/// prev-LSN chain pointer) fails verification instead of silently steering
/// recovery or a replica down a wrong undo chain.
pub fn checksum(header_zeroed: &[u8; HEADER_SIZE], payload: &[u8]) -> u32 {
    crc32_finish(crc32_update(
        crc32_update(CRC32_INIT, header_zeroed),
        payload,
    ))
}

/// Serialize a record header directly from its fields, with the checksum
/// bytes zeroed — the single-pass encoding used by the reservation insert
/// path. The result is both the frame-CRC input and (after patching bytes
/// [`CHECKSUM_OFFSET`]`..`[`CHECKSUM_OFFSET`]`+4` with the final CRC) the
/// on-log header; nothing is serialized twice.
#[inline]
pub fn encode_frame_header(
    kind: RecordKind,
    txn: u64,
    prev_lsn: Lsn,
    payload_len: usize,
) -> [u8; HEADER_SIZE] {
    debug_assert!(payload_len <= MAX_PAYLOAD);
    let mut out = [0u8; HEADER_SIZE];
    out[0..4].copy_from_slice(&(on_log_size(payload_len) as u32).to_le_bytes());
    out[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[8] = kind as u8;
    out[9] = RECORD_MAGIC;
    // bytes 10..12 reserved, zero; CHECKSUM_OFFSET..+4 is the checksum,
    // zero here (patched after the payload CRC is known)
    out[16..24].copy_from_slice(&txn.to_le_bytes());
    out[24..32].copy_from_slice(&prev_lsn.raw().to_le_bytes());
    out
}

/// The decoded header of a log record.
///
/// On-log layout (little-endian):
///
/// ```text
/// offset  field
/// 0       total_len   u32   header + payload + pad, multiple of 8
/// 4       payload_len u32
/// 8       kind        u8
/// 9       magic       u8    RECORD_MAGIC
/// 10      reserved    u16
/// 12      checksum    u32   CRC32 over header (checksum zeroed) + payload
/// 16      txn         u64   transaction id (0 = none)
/// 24      prev_lsn    u64   previous record of the same transaction
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Total footprint of the record in the log stream (aligned).
    pub total_len: u32,
    /// Exact payload length in bytes.
    pub payload_len: u32,
    /// Record type tag.
    pub kind: RecordKind,
    /// Frame checksum: CRC32 over the zero-checksum header plus payload.
    pub checksum: u32,
    /// Owning transaction (0 for records not tied to a transaction).
    pub txn: u64,
    /// Backward chain within the transaction (undo chain). `Lsn::ZERO` ends
    /// the chain.
    pub prev_lsn: Lsn,
}

impl RecordHeader {
    /// Build a header for `payload` (computes length fields and the frame
    /// CRC32 over header + payload).
    pub fn new(kind: RecordKind, txn: u64, prev_lsn: Lsn, payload: &[u8]) -> RecordHeader {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload of {} bytes exceeds MAX_PAYLOAD",
            payload.len()
        );
        let zeroed = encode_frame_header(kind, txn, prev_lsn, payload.len());
        RecordHeader {
            total_len: on_log_size(payload.len()) as u32,
            payload_len: payload.len() as u32,
            kind,
            checksum: checksum(&zeroed, payload),
            txn,
            prev_lsn,
        }
    }

    /// Serialize into the fixed 32-byte on-log form: one field pass plus the
    /// in-place checksum patch.
    pub fn encode(&self) -> [u8; HEADER_SIZE] {
        let mut out = self.encode_zeroed();
        out[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// The on-log form with the checksum field zeroed — the byte string the
    /// frame CRC is computed over.
    fn encode_zeroed(&self) -> [u8; HEADER_SIZE] {
        encode_frame_header(
            self.kind,
            self.txn,
            self.prev_lsn,
            self.payload_len as usize,
        )
    }

    /// Decode and validate a header. Returns `None` for anything that cannot
    /// be a live record (zeroed space, torn write, impossible lengths) — a
    /// recovery scan treats that as the end of the log.
    pub fn decode(buf: &[u8; HEADER_SIZE]) -> Option<RecordHeader> {
        let total_len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let payload_len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let kind = RecordKind::from_u8(buf[8])?;
        if buf[9] != RECORD_MAGIC {
            return None;
        }
        if total_len as usize != on_log_size(payload_len as usize) {
            return None;
        }
        if payload_len as usize > MAX_PAYLOAD {
            return None;
        }
        let checksum = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        let txn = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let prev_lsn = Lsn(u64::from_le_bytes(buf[24..32].try_into().unwrap()));
        Some(RecordHeader {
            total_len,
            payload_len,
            kind,
            checksum,
            txn,
            prev_lsn,
        })
    }

    /// Verify the frame (header fields + `payload`) against the stored CRC.
    pub fn verify(&self, payload: &[u8]) -> bool {
        payload.len() == self.payload_len as usize
            && checksum(&self.encode_zeroed(), payload) == self.checksum
    }
}

/// A fully decoded record as produced by recovery scans ([`crate::reader`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// LSN at which the record starts.
    pub lsn: Lsn,
    /// Decoded header.
    pub header: RecordHeader,
    /// Owned copy of the payload.
    pub payload: Vec<u8>,
}

impl Record {
    /// LSN of the byte just past this record — where the next record starts.
    pub fn next_lsn(&self) -> Lsn {
        self.lsn.advance(self.header.total_len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_multiples_of_eight() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 8);
        assert_eq!(align_up(8), 8);
        assert_eq!(align_up(9), 16);
        assert_eq!(align_up(32 + 40), 72);
    }

    #[test]
    fn on_log_size_includes_header_and_pad() {
        assert_eq!(on_log_size(0), 32);
        assert_eq!(on_log_size(1), 40);
        assert_eq!(on_log_size(8), 40);
        // the paper's two record-size peaks
        assert_eq!(on_log_size(40 - 32), 40);
        assert_eq!(on_log_size(264 - 32), 264);
    }

    #[test]
    fn frame_header_is_the_zeroed_encoding() {
        // The single-pass field encoder must agree with the struct path:
        // patching the checksum into the zeroed form yields encode().
        let payload = b"payload";
        let h = RecordHeader::new(RecordKind::Clr, 5, Lsn(640), payload);
        let mut framed = encode_frame_header(RecordKind::Clr, 5, Lsn(640), payload.len());
        assert_eq!(
            u32::from_le_bytes(
                framed[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4]
                    .try_into()
                    .unwrap()
            ),
            0
        );
        framed[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 4].copy_from_slice(&h.checksum.to_le_bytes());
        assert_eq!(framed, h.encode());
    }

    #[test]
    fn header_roundtrip() {
        let payload = b"some physiological redo bytes";
        let h = RecordHeader::new(RecordKind::Update, 77, Lsn(4096), payload);
        let enc = h.encode();
        let dec = RecordHeader::decode(&enc).expect("valid header");
        assert_eq!(dec, h);
        assert!(dec.verify(payload));
        assert!(!dec.verify(b"tampered payload bytes here!!"));
    }

    #[test]
    fn decode_rejects_garbage() {
        // All zeroes: kind 0 is invalid.
        assert!(RecordHeader::decode(&[0u8; HEADER_SIZE]).is_none());
        // Valid header with the magic byte flipped.
        let h = RecordHeader::new(RecordKind::Commit, 1, Lsn::ZERO, b"x");
        let mut enc = h.encode();
        enc[9] = 0;
        assert!(RecordHeader::decode(&enc).is_none());
        // Length mismatch.
        let mut enc2 = h.encode();
        enc2[0..4].copy_from_slice(&123u32.to_le_bytes());
        assert!(RecordHeader::decode(&enc2).is_none());
    }

    #[test]
    fn all_kinds_roundtrip() {
        for k in [
            RecordKind::Update,
            RecordKind::Commit,
            RecordKind::Abort,
            RecordKind::Clr,
            RecordKind::CheckpointBegin,
            RecordKind::CheckpointEnd,
            RecordKind::Filler,
            RecordKind::End,
        ] {
            assert_eq!(RecordKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(RecordKind::from_u8(0), None);
        assert_eq!(RecordKind::from_u8(99), None);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 3, 4, 7, 500, 999, 1000] {
            let streamed = crc32_finish(crc32_update(
                crc32_update(CRC32_INIT, &data[..split]),
                &data[split..],
            ));
            assert_eq!(streamed, crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn checksum_differs_on_flip() {
        let zh = [0u8; HEADER_SIZE];
        let a = vec![7u8; 1000];
        let mut b = a.clone();
        b[999] ^= 1;
        assert_ne!(checksum(&zh, &a), checksum(&zh, &b));
        b[999] ^= 1;
        assert_eq!(checksum(&zh, &a), checksum(&zh, &b));
        assert_ne!(checksum(&zh, &a[..999]), checksum(&zh, &a));
    }

    #[test]
    fn checksum_covers_header_fields() {
        // Two records with identical payloads but different txn ids must not
        // share a frame CRC: the checksum covers the header, so a corrupted
        // txn/prev_lsn field is caught even when the payload is intact.
        let h1 = RecordHeader::new(RecordKind::Update, 1, Lsn(64), b"same payload");
        let h2 = RecordHeader::new(RecordKind::Update, 2, Lsn(64), b"same payload");
        assert_ne!(h1.checksum, h2.checksum);
        // Tampering with an encoded header field fails verification even
        // though decode() finds the structure plausible.
        let mut enc = h1.encode();
        enc[16] ^= 0x04; // flip a txn-id bit
        let dec = RecordHeader::decode(&enc).expect("structurally valid");
        assert!(!dec.verify(b"same payload"));
    }

    #[test]
    fn record_next_lsn() {
        let payload = vec![1u8; 100];
        let h = RecordHeader::new(RecordKind::Filler, 0, Lsn::ZERO, &payload);
        let r = Record {
            lsn: Lsn(1000),
            header: h,
            payload,
        };
        assert_eq!(r.next_lsn(), Lsn(1000 + on_log_size(100) as u64));
    }
}
