//! Log record layout.
//!
//! A log record is a fixed 32-byte header followed by an arbitrary payload
//! (§5 of the paper: "a standard header followed by an arbitrary payload").
//! Records are padded to 8-byte alignment so that headers never straddle an
//! odd boundary; the pad bytes are zero. Buffer allocation is *composable*:
//! the concatenation of two well-formed records is itself a well-formed
//! sequence — this is exactly the property the consolidation array exploits
//! when it carves one group allocation into many records.
//!
//! Shore-MT's record-size distribution (peaks at 40 B and 264 B, average
//! ~120 B, max 12 kiB, §5/§6.3.1) informs the defaults used by the
//! microbenchmarks in `aether-bench`.

use crate::lsn::Lsn;

/// Size in bytes of the on-log record header.
pub const HEADER_SIZE: usize = 32;

/// Records are padded to this alignment in the log stream.
pub const RECORD_ALIGN: usize = 8;

/// Maximum payload the log accepts in one record. Shore-MT's largest record
/// is 12 kiB; we allow up to 1 MiB so the skew experiments (§A.3, Fig. 11) can
/// push outliers to 64 kiB and beyond.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Magic tag stored in the top byte of `flags` word for torn-write detection.
pub const RECORD_MAGIC: u8 = 0xA7;

/// The type of a log record.
///
/// `aether-core` itself is policy-free: it treats these as opaque tags. The
/// storage manager (`aether-storage`) gives them ARIES semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RecordKind {
    /// Physiological page update (redo + undo payload).
    Update = 1,
    /// Transaction commit.
    Commit = 2,
    /// Transaction abort (end of rollback).
    Abort = 3,
    /// Compensation log record written during rollback.
    Clr = 4,
    /// Fuzzy checkpoint begin.
    CheckpointBegin = 5,
    /// Fuzzy checkpoint end (carries ATT + DPT).
    CheckpointEnd = 6,
    /// Record inserted by microbenchmarks; payload is arbitrary filler.
    Filler = 7,
    /// Transaction end (after commit becomes durable; releases ATT entry).
    End = 8,
}

impl RecordKind {
    /// Decode from the on-log byte.
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            1 => RecordKind::Update,
            2 => RecordKind::Commit,
            3 => RecordKind::Abort,
            4 => RecordKind::Clr,
            5 => RecordKind::CheckpointBegin,
            6 => RecordKind::CheckpointEnd,
            7 => RecordKind::Filler,
            8 => RecordKind::End,
            _ => return None,
        })
    }
}

/// Round `len` up to [`RECORD_ALIGN`].
#[inline]
pub const fn align_up(len: usize) -> usize {
    (len + RECORD_ALIGN - 1) & !(RECORD_ALIGN - 1)
}

/// Total on-log footprint (header + payload + pad) of a record with
/// `payload_len` bytes of payload.
#[inline]
pub const fn on_log_size(payload_len: usize) -> usize {
    align_up(HEADER_SIZE + payload_len)
}

/// Cheap 32-bit checksum over the payload.
///
/// Processes 8 bytes per step (xor-rotate-multiply); this keeps the insert
/// path fast enough to reach multi-GB/s in the Figure-8 microbenchmarks while
/// still catching torn writes during recovery scans.
pub fn checksum(data: &[u8]) -> u32 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        acc = (acc ^ v)
            .rotate_left(23)
            .wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        let v = u64::from_le_bytes(last);
        acc = (acc ^ v)
            .rotate_left(23)
            .wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    (acc ^ (acc >> 32)) as u32
}

/// The decoded header of a log record.
///
/// On-log layout (little-endian):
///
/// ```text
/// offset  field
/// 0       total_len   u32   header + payload + pad, multiple of 8
/// 4       payload_len u32
/// 8       kind        u8
/// 9       magic       u8    RECORD_MAGIC
/// 10      reserved    u16
/// 12      checksum    u32   checksum(payload)
/// 16      txn         u64   transaction id (0 = none)
/// 24      prev_lsn    u64   previous record of the same transaction
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Total footprint of the record in the log stream (aligned).
    pub total_len: u32,
    /// Exact payload length in bytes.
    pub payload_len: u32,
    /// Record type tag.
    pub kind: RecordKind,
    /// Payload checksum.
    pub checksum: u32,
    /// Owning transaction (0 for records not tied to a transaction).
    pub txn: u64,
    /// Backward chain within the transaction (undo chain). `Lsn::ZERO` ends
    /// the chain.
    pub prev_lsn: Lsn,
}

impl RecordHeader {
    /// Build a header for `payload` (computes length fields and checksum).
    pub fn new(kind: RecordKind, txn: u64, prev_lsn: Lsn, payload: &[u8]) -> RecordHeader {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload of {} bytes exceeds MAX_PAYLOAD",
            payload.len()
        );
        RecordHeader {
            total_len: on_log_size(payload.len()) as u32,
            payload_len: payload.len() as u32,
            kind,
            checksum: checksum(payload),
            txn,
            prev_lsn,
        }
    }

    /// Serialize into the fixed 32-byte on-log form.
    pub fn encode(&self) -> [u8; HEADER_SIZE] {
        let mut out = [0u8; HEADER_SIZE];
        out[0..4].copy_from_slice(&self.total_len.to_le_bytes());
        out[4..8].copy_from_slice(&self.payload_len.to_le_bytes());
        out[8] = self.kind as u8;
        out[9] = RECORD_MAGIC;
        // bytes 10..12 reserved, zero
        out[12..16].copy_from_slice(&self.checksum.to_le_bytes());
        out[16..24].copy_from_slice(&self.txn.to_le_bytes());
        out[24..32].copy_from_slice(&self.prev_lsn.raw().to_le_bytes());
        out
    }

    /// Decode and validate a header. Returns `None` for anything that cannot
    /// be a live record (zeroed space, torn write, impossible lengths) — a
    /// recovery scan treats that as the end of the log.
    pub fn decode(buf: &[u8; HEADER_SIZE]) -> Option<RecordHeader> {
        let total_len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let payload_len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let kind = RecordKind::from_u8(buf[8])?;
        if buf[9] != RECORD_MAGIC {
            return None;
        }
        if total_len as usize != on_log_size(payload_len as usize) {
            return None;
        }
        if payload_len as usize > MAX_PAYLOAD {
            return None;
        }
        let checksum = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        let txn = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        let prev_lsn = Lsn(u64::from_le_bytes(buf[24..32].try_into().unwrap()));
        Some(RecordHeader {
            total_len,
            payload_len,
            kind,
            checksum,
            txn,
            prev_lsn,
        })
    }

    /// Verify `payload` against the stored checksum.
    pub fn verify(&self, payload: &[u8]) -> bool {
        payload.len() == self.payload_len as usize && checksum(payload) == self.checksum
    }
}

/// A fully decoded record as produced by recovery scans ([`crate::reader`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// LSN at which the record starts.
    pub lsn: Lsn,
    /// Decoded header.
    pub header: RecordHeader,
    /// Owned copy of the payload.
    pub payload: Vec<u8>,
}

impl Record {
    /// LSN of the byte just past this record — where the next record starts.
    pub fn next_lsn(&self) -> Lsn {
        self.lsn.advance(self.header.total_len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_multiples_of_eight() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 8);
        assert_eq!(align_up(8), 8);
        assert_eq!(align_up(9), 16);
        assert_eq!(align_up(32 + 40), 72);
    }

    #[test]
    fn on_log_size_includes_header_and_pad() {
        assert_eq!(on_log_size(0), 32);
        assert_eq!(on_log_size(1), 40);
        assert_eq!(on_log_size(8), 40);
        // the paper's two record-size peaks
        assert_eq!(on_log_size(40 - 32), 40);
        assert_eq!(on_log_size(264 - 32), 264);
    }

    #[test]
    fn header_roundtrip() {
        let payload = b"some physiological redo bytes";
        let h = RecordHeader::new(RecordKind::Update, 77, Lsn(4096), payload);
        let enc = h.encode();
        let dec = RecordHeader::decode(&enc).expect("valid header");
        assert_eq!(dec, h);
        assert!(dec.verify(payload));
        assert!(!dec.verify(b"tampered payload bytes here!!"));
    }

    #[test]
    fn decode_rejects_garbage() {
        // All zeroes: kind 0 is invalid.
        assert!(RecordHeader::decode(&[0u8; HEADER_SIZE]).is_none());
        // Valid header with the magic byte flipped.
        let h = RecordHeader::new(RecordKind::Commit, 1, Lsn::ZERO, b"x");
        let mut enc = h.encode();
        enc[9] = 0;
        assert!(RecordHeader::decode(&enc).is_none());
        // Length mismatch.
        let mut enc2 = h.encode();
        enc2[0..4].copy_from_slice(&123u32.to_le_bytes());
        assert!(RecordHeader::decode(&enc2).is_none());
    }

    #[test]
    fn all_kinds_roundtrip() {
        for k in [
            RecordKind::Update,
            RecordKind::Commit,
            RecordKind::Abort,
            RecordKind::Clr,
            RecordKind::CheckpointBegin,
            RecordKind::CheckpointEnd,
            RecordKind::Filler,
            RecordKind::End,
        ] {
            assert_eq!(RecordKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(RecordKind::from_u8(0), None);
        assert_eq!(RecordKind::from_u8(99), None);
    }

    #[test]
    fn checksum_differs_on_flip() {
        let a = vec![7u8; 1000];
        let mut b = a.clone();
        b[999] ^= 1;
        assert_ne!(checksum(&a), checksum(&b));
        b[999] ^= 1;
        assert_eq!(checksum(&a), checksum(&b));
        assert_ne!(checksum(&a[..999]), checksum(&a));
    }

    #[test]
    fn record_next_lsn() {
        let payload = vec![1u8; 100];
        let h = RecordHeader::new(RecordKind::Filler, 0, Lsn::ZERO, &payload);
        let r = Record {
            lsn: Lsn(1000),
            header: h,
            payload,
        };
        assert_eq!(r.next_lsn(), Lsn(1000 + on_log_size(100) as u64));
    }
}
