//! The delegated buffer-release queue (§A.3, Algorithm 4).
//!
//! The CD design's only remaining coupling is the in-order release: many
//! small inserts can complete entirely in the shadow of one large insert yet
//! must wait for it before publishing. §A.3 removes the wait by turning the
//! implied LSN queue into a physical one: each insert joins a release queue
//! while it still holds the log mutex; at release time a thread whose
//! predecessor is still copying may **abandon** its node — atomically marking
//! it `DELEGATED` — and leave, making the predecessor responsible for the
//! release. The protocol is lock-free and non-blocking, "based on the
//! abortable MCS queue lock by Scott \[20\] and the critical-section-combining
//! approach suggested by Oyama et al.".
//!
//! Node states:
//! * `FILLING` — owner is still copying (or has not yet tried to release);
//! * `DELEGATED` — owner abandoned the release; a predecessor will do it;
//! * `SELF` — a predecessor handed off: this node is now the queue head and
//!   its owner must perform its own release when it finishes.
//!
//! To break "treadmills" (one thread stuck releasing an endless delegation
//! chain), threads randomly refuse to delegate with probability
//! `1/treadmill_inv` (1/32 in the paper).

use crate::buffer::{fast_rand, BufferCore};
use crate::lsn::Lsn;
use crossbeam::queue::SegQueue;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

const FILLING: u8 = 0;
const DELEGATED: u8 = 1;
const SELF: u8 = 2;

/// One queue node: the byte range to release plus linkage and state.
#[derive(Debug)]
struct QNode {
    start: AtomicU64,
    end: AtomicU64,
    state: AtomicU8,
    /// Successor as pool-index + 1; 0 = none.
    next: AtomicU32,
}

impl QNode {
    fn new() -> Self {
        QNode {
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            state: AtomicU8::new(FILLING),
            next: AtomicU32::new(0),
        }
    }
}

/// Handle returned by [`ReleaseQueue::join`]; pass it to
/// [`ReleaseQueue::release`] (possibly from a *different* thread — the last
/// member of a consolidation group releases on behalf of the group leader).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseHandle {
    idx: u32,
    /// Whether the node had a predecessor at join time. Head nodes must
    /// always self-release (nobody will ever hand off to them).
    had_pred: bool,
}

impl ReleaseHandle {
    /// Pack into a single word (stored in a consolidation-slot's `extra`).
    pub fn pack(self) -> u64 {
        ((self.idx as u64) << 1) | self.had_pred as u64
    }

    /// Unpack from [`ReleaseHandle::pack`].
    pub fn unpack(v: u64) -> ReleaseHandle {
        ReleaseHandle {
            idx: (v >> 1) as u32,
            had_pred: v & 1 == 1,
        }
    }
}

/// The physical release queue (Algorithm 4).
pub struct ReleaseQueue {
    nodes: Box<[CachePadded<QNode>]>,
    /// Tail as pool-index + 1; 0 = empty queue.
    tail: AtomicU32,
    free: SegQueue<u32>,
    treadmill_inv: u32,
}

impl std::fmt::Debug for ReleaseQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseQueue")
            .field("pool", &self.nodes.len())
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

impl ReleaseQueue {
    /// Pool of `pool_size` nodes; see [`crate::LogConfig::treadmill_inv`].
    pub fn new(pool_size: usize, treadmill_inv: u32) -> ReleaseQueue {
        assert!(pool_size >= 2, "release queue needs at least 2 nodes");
        let nodes: Box<[CachePadded<QNode>]> = (0..pool_size)
            .map(|_| CachePadded::new(QNode::new()))
            .collect();
        let free = SegQueue::new();
        for i in 0..pool_size as u32 {
            free.push(i);
        }
        ReleaseQueue {
            nodes,
            tail: AtomicU32::new(0),
            free,
            treadmill_inv,
        }
    }

    /// Join the queue for the byte range `[start, end)` (Algorithm 4 line 4).
    ///
    /// Must be called while holding the log's insert lock, which guarantees
    /// join order equals LSN order — the invariant the whole protocol rests
    /// on.
    pub fn join(&self, start: Lsn, end: Lsn) -> ReleaseHandle {
        let idx = loop {
            if let Some(i) = self.free.pop() {
                break i;
            }
            // Pool exhausted: releases are in flight on other threads and do
            // not need the insert lock we hold, so spinning here is live.
            crate::runtime::yield_now();
        };
        let n = &self.nodes[idx as usize];
        n.start.store(start.raw(), Ordering::Relaxed);
        n.end.store(end.raw(), Ordering::Relaxed);
        n.state.store(FILLING, Ordering::Relaxed);
        n.next.store(0, Ordering::Relaxed);
        let prev = self.tail.swap(idx + 1, Ordering::AcqRel);
        let had_pred = prev != 0;
        if had_pred {
            // Publish linkage (and our start/end stores above) to the
            // predecessor's handoff scan.
            self.nodes[(prev - 1) as usize]
                .next
                .store(idx + 1, Ordering::Release);
        }
        ReleaseHandle { idx, had_pred }
    }

    /// Release the byte range owned by `h` (Algorithm 4, `buffer_release`).
    ///
    /// Either delegates to a still-copying predecessor and returns
    /// immediately, or performs the release (advancing `core`'s released
    /// watermark) plus any delegated successors' releases.
    pub fn release(&self, h: ReleaseHandle, core: &BufferCore) {
        let n = &self.nodes[h.idx as usize];
        if h.had_pred {
            let refuse = self.treadmill_inv != 0 && fast_rand().is_multiple_of(self.treadmill_inv);
            if !refuse
                && n.state
                    .compare_exchange(FILLING, DELEGATED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                // A predecessor will (or already must) process our node.
                core.stats.record_delegated();
                return;
            }
            // We must self-release: wait until the predecessor hands off,
            // i.e. until everything before us is released.
            let t = core.stats.phase_start();
            let mut backoff = crate::buffer::WaitBackoff::new();
            while n.state.load(Ordering::Acquire) != SELF {
                backoff.wait();
            }
            core.stats.phase_release(t);
        }
        self.do_release(h.idx, core);
    }

    /// Release node `idx`'s region, then hand off — possibly consuming a
    /// chain of delegated successors (Algorithm 4 lines 14–20).
    fn do_release(&self, mut idx: u32, core: &BufferCore) {
        loop {
            let n = &self.nodes[idx as usize];
            let start = Lsn(n.start.load(Ordering::Relaxed));
            let end = Lsn(n.end.load(Ordering::Relaxed));
            debug_assert_eq!(
                core.released_lsn(),
                start,
                "release queue head must match the released watermark"
            );
            let _ = start;
            core.advance_released(end);

            // Handoff: find the successor (waiting for in-flight joins).
            let mut next = n.next.load(Ordering::Acquire);
            if next == 0 {
                if self
                    .tail
                    .compare_exchange(idx + 1, 0, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Queue drained.
                    self.free.push(idx);
                    return;
                }
                // A join swapped the tail but hasn't linked yet; it will.
                let mut backoff = crate::buffer::WaitBackoff::new();
                loop {
                    next = n.next.load(Ordering::Acquire);
                    if next != 0 {
                        break;
                    }
                    backoff.wait();
                }
            }
            let succ = next - 1;
            match self.nodes[succ as usize].state.compare_exchange(
                FILLING,
                SELF,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // Successor will self-release when its fill completes.
                    self.free.push(idx);
                    return;
                }
                Err(s) => {
                    debug_assert_eq!(s, DELEGATED, "successor in impossible state");
                    // Successor abandoned its node: release it too.
                    self.free.push(idx);
                    idx = succ;
                }
            }
        }
    }

    /// Pool size (diagnostics).
    pub fn pool_size(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferCore;
    use crate::config::LogConfig;
    use std::sync::Arc;

    fn core() -> Arc<BufferCore> {
        let c = BufferCore::new(&LogConfig::default().with_buffer_size(1 << 20));
        c.set_auto_reclaim(true);
        c
    }

    #[test]
    fn handle_pack_roundtrip() {
        for idx in [0u32, 1, 77, 4095] {
            for had_pred in [false, true] {
                let h = ReleaseHandle { idx, had_pred };
                assert_eq!(ReleaseHandle::unpack(h.pack()), h);
            }
        }
    }

    #[test]
    fn single_node_self_releases() {
        let q = ReleaseQueue::new(8, 32);
        let c = core();
        let h = q.join(Lsn(0), Lsn(64));
        assert!(!h.had_pred);
        q.release(h, &c);
        assert_eq!(c.released_lsn(), Lsn(64));
        // Node recycled.
        let h2 = q.join(Lsn(64), Lsn(128));
        q.release(h2, &c);
        assert_eq!(c.released_lsn(), Lsn(128));
    }

    #[test]
    fn in_order_chain_sequential() {
        let q = ReleaseQueue::new(8, 0); // never refuse delegation
        let c = core();
        let h1 = q.join(Lsn(0), Lsn(10));
        let h2 = q.join(Lsn(10), Lsn(30));
        let h3 = q.join(Lsn(30), Lsn(100));
        // Release out of order: 3 and 2 delegate, 1 performs the chain.
        q.release(h3, &c);
        assert_eq!(c.released_lsn(), Lsn(0), "h3 must have delegated");
        q.release(h2, &c);
        assert_eq!(c.released_lsn(), Lsn(0), "h2 must have delegated");
        q.release(h1, &c);
        assert_eq!(c.released_lsn(), Lsn(100), "h1 releases the whole chain");
        assert_eq!(c.stats.snapshot().delegated_releases, 2);
    }

    #[test]
    fn handoff_to_filling_successor() {
        let q = Arc::new(ReleaseQueue::new(8, 0));
        let c = core();
        let h1 = q.join(Lsn(0), Lsn(10));
        let h2 = q.join(Lsn(10), Lsn(30));
        // h1 releases first: h2 is still FILLING, so h1 marks it SELF.
        q.release(h1, &c);
        assert_eq!(c.released_lsn(), Lsn(10));
        // h2 now self-releases (its delegation CAS will fail).
        q.release(h2, &c);
        assert_eq!(c.released_lsn(), Lsn(30));
        assert_eq!(c.stats.snapshot().delegated_releases, 0);
    }

    #[test]
    fn concurrent_stress_releases_everything() {
        let q = Arc::new(ReleaseQueue::new(256, 32));
        let c = core();
        let total_threads = 8u64;
        let per = 2000u64;
        let len = 24u64;
        // Joins must be globally ordered (normally by the insert lock);
        // emulate with a mutex around join + LSN allocation.
        let alloc = Arc::new(parking_lot::Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..total_threads {
                let q = Arc::clone(&q);
                let c = Arc::clone(&c);
                let alloc = Arc::clone(&alloc);
                s.spawn(move || {
                    for i in 0..per {
                        let h = {
                            let mut a = alloc.lock();
                            let start = *a;
                            *a += len;
                            q.join(Lsn(start), Lsn(start + len))
                        };
                        // Simulate variable fill times.
                        if i % 17 == 0 {
                            std::thread::yield_now();
                        }
                        q.release(h, &c);
                    }
                });
            }
        });
        assert_eq!(c.released_lsn(), Lsn(total_threads * per * len));
        let snap = c.stats.snapshot();
        assert!(
            snap.delegated_releases > 0,
            "stress should exercise delegation: {snap:?}"
        );
    }

    #[test]
    fn pool_exhaustion_recovers() {
        // Pool of 2 nodes, strictly sequential: join/release ping-pong.
        let q = ReleaseQueue::new(2, 0);
        let c = core();
        let mut at = 0u64;
        for _ in 0..100 {
            let h = q.join(Lsn(at), Lsn(at + 8));
            q.release(h, &c);
            at += 8;
        }
        assert_eq!(c.released_lsn(), Lsn(800));
        assert_eq!(q.pool_size(), 2);
    }
}
