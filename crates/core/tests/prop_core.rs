//! Property-based tests for aether-core's lowest layers: the ring buffer,
//! the consolidation array's group partitioning, and the delegated-release
//! queue's ordering guarantees.

use aether_core::buffer::BufferCore;
use aether_core::carray::CArray;
use aether_core::mcs::ReleaseQueue;
use aether_core::ring::Ring;
use aether_core::{LogConfig, Lsn};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_roundtrips_at_any_offset(
        cap_pow in 6u32..16,
        offset in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let cap = 1usize << cap_pow;
        prop_assume!(data.len() <= cap);
        let ring = Ring::new(cap);
        // SAFETY: single-threaded, exclusive access.
        unsafe { ring.write_at(offset, &data) };
        let mut out = vec![0u8; data.len()];
        unsafe { ring.read_at(offset, &mut out) };
        prop_assert_eq!(out, data);
    }

    #[test]
    fn ring_disjoint_writes_do_not_interfere(
        a_off in 0u64..1000,
        a_len in 1usize..200,
        gap in 0u64..500,
        b_len in 1usize..200,
    ) {
        let ring = Ring::new(1 << 12);
        let b_off = a_off + a_len as u64 + gap;
        prop_assume!(b_off + b_len as u64 - a_off <= (1 << 12));
        let a = vec![0xAAu8; a_len];
        let b = vec![0xBBu8; b_len];
        unsafe {
            ring.write_at(a_off, &a);
            ring.write_at(b_off, &b);
        }
        let mut out_a = vec![0u8; a_len];
        let mut out_b = vec![0u8; b_len];
        unsafe {
            ring.read_at(a_off, &mut out_a);
            ring.read_at(b_off, &mut out_b);
        }
        prop_assert!(out_a.iter().all(|&x| x == 0xAA));
        prop_assert!(out_b.iter().all(|&x| x == 0xBB));
    }

    #[test]
    fn carray_group_offsets_tile_exactly(
        sizes in proptest::collection::vec(8u64..2048, 1..40),
    ) {
        // Sequential joins into one slot must tile [0, total) contiguously
        // in join order — that is what lets followers compute their record
        // positions with no further communication.
        let ca = CArray::new(1, 4, 1 << 20);
        let mut joins = Vec::new();
        for &s in &sizes {
            joins.push((ca.join(s), s));
        }
        let total = ca.close_and_replace(joins[0].0.slot);
        prop_assert_eq!(total, sizes.iter().sum::<u64>());
        let mut expect = 0u64;
        for (j, s) in &joins {
            prop_assert_eq!(j.offset, expect);
            expect += s;
        }
        // Drain the group so the slot recycles cleanly.
        joins[0].0.slot.notify(Lsn(0), total, 0);
        let mut last = 0;
        for (j, s) in &joins {
            last += 1;
            let done = j.slot.release_member(*s);
            prop_assert_eq!(done, last == joins.len());
        }
        joins[0].0.slot.free();
    }

    #[test]
    fn release_queue_orders_any_release_permutation(
        lens in proptest::collection::vec(1u64..500, 1..20),
        seed in any::<u64>(),
    ) {
        // Join in LSN order, release in an arbitrary permutation (via rayon-
        // free manual shuffle); the released watermark must land exactly at
        // the total, with no gaps at any intermediate point.
        let core = BufferCore::new(&LogConfig::default().with_buffer_size(1 << 20));
        core.set_auto_reclaim(true);
        // treadmill_inv = 0: always delegate. A refusal would spin waiting
        // for a predecessor that this single-threaded test releases *later*
        // in the permutation — a deadlock by test construction, not by
        // protocol (refusal requires a concurrent predecessor to make
        // progress; the multi-threaded stress in `mcs` covers it).
        let q = ReleaseQueue::new(64, 0);
        let mut handles = Vec::new();
        let mut at = 0u64;
        for &l in &lens {
            handles.push(q.join(Lsn(at), Lsn(at + l)));
            at += l;
        }
        // Deterministic shuffle.
        let mut order: Vec<usize> = (0..handles.len()).collect();
        let mut s = seed | 1;
        for i in (1..order.len()).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        for &i in &order {
            q.release(handles[i], &core);
            // Watermark is always a prefix boundary: equal to the sum of a
            // prefix of lens.
            let w = core.released_lsn().raw();
            let mut acc = 0u64;
            let mut is_prefix = w == 0;
            for &l in &lens {
                acc += l;
                if acc == w {
                    is_prefix = true;
                    break;
                }
                if acc > w {
                    break;
                }
            }
            prop_assert!(is_prefix, "watermark {} is not a record boundary", w);
        }
        prop_assert_eq!(core.released_lsn(), Lsn(at));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segmented_device_equals_flat_stream(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..3000), 1..30),
        seg_pow in 12u32..15,
        read_at in any::<u16>(),
    ) {
        use aether_core::device::LogDevice;
        use aether_core::partition::{MemSegmentFactory, SegmentedDevice};
        let seg = SegmentedDevice::new(Box::new(MemSegmentFactory), 1 << seg_pow).unwrap();
        let mut flat = Vec::new();
        for c in &chunks {
            seg.append(c).unwrap();
            flat.extend_from_slice(c);
        }
        seg.sync().unwrap();
        prop_assert_eq!(seg.len(), flat.len() as u64);
        // Full read stitches across segments.
        let mut out = vec![0u8; flat.len()];
        prop_assert_eq!(seg.read_at(0, &mut out).unwrap(), flat.len());
        prop_assert_eq!(&out, &flat);
        // Random partial read agrees with the flat stream.
        let at = (read_at as usize) % flat.len();
        let want = (flat.len() - at).min(512);
        let mut part = vec![0u8; want];
        prop_assert_eq!(seg.read_at(at as u64, &mut part).unwrap(), want);
        prop_assert_eq!(&part[..], &flat[at..at + want]);
        // Snapshot equals the stream (nothing truncated yet).
        prop_assert_eq!(seg.snapshot().unwrap(), flat);
    }
}

#[test]
fn carray_many_slots_under_parallel_joins() {
    // Heavier, non-proptest stress: several active slots, parallel joiners,
    // total bytes conserved.
    let ca = Arc::new(CArray::new(4, 16, 1 << 24));
    let total_bytes = std::sync::atomic::AtomicU64::new(0);
    let released_bytes = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let ca = Arc::clone(&ca);
            let total_bytes = &total_bytes;
            let released_bytes = &released_bytes;
            s.spawn(move || {
                for i in 0..500u64 {
                    let size = 16 + (t * 13 + i * 7) % 256;
                    total_bytes.fetch_add(size, std::sync::atomic::Ordering::Relaxed);
                    let j = ca.join(size);
                    if j.offset == 0 {
                        let group = ca.close_and_replace(j.slot);
                        j.slot.notify(Lsn(0), group, 0);
                    }
                    let (_, group, _) = j.slot.wait();
                    if j.slot.release_member(size) {
                        released_bytes.fetch_add(group, std::sync::atomic::Ordering::Relaxed);
                        j.slot.free();
                    }
                }
            });
        }
    });
    assert_eq!(
        total_bytes.load(std::sync::atomic::Ordering::Relaxed),
        released_bytes.load(std::sync::atomic::Ordering::Relaxed),
        "every joined byte must be released exactly once"
    );
}
