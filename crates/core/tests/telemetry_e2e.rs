//! End-to-end telemetry over a real `LogManager`: with tracing at
//! `sample_every = 1`, an inserted record's life shows up as a causal span
//! chain — reserve/fill/release from the insert path, device-write/durable
//! from the flush daemon — and the snapshot carries the wired counters in
//! one document.

use aether_core::record::RecordKind;
use aether_core::telemetry::{assemble_spans, Stage, TelemetryConfig};
use aether_core::{DeviceKind, LogConfig, LogManager};

#[test]
fn sampled_record_yields_causal_span_chain() {
    let log = LogManager::builder()
        .device(DeviceKind::Ram)
        .config(
            LogConfig::default()
                .with_buffer_size(1 << 20)
                .with_telemetry(TelemetryConfig {
                    enabled: true,
                    sample_every: 1,
                    ..TelemetryConfig::default()
                }),
        )
        .build();
    for i in 0..32u64 {
        log.insert(RecordKind::Update, i, &[7u8; 100]);
    }
    log.flush_all().unwrap();
    let snap = log.telemetry_snapshot();

    // The wired counters all flowed into one document.
    assert!(snap.counter("log.inserts").unwrap() >= 32);
    assert!(snap.counter("log.bytes").unwrap() > 0);
    assert_eq!(snap.counter("log.wrapper_inserts"), Some(32));
    assert!(snap.hist("log.insert_ns").unwrap().count >= 32);
    assert!(snap.counter("flush.flushes").unwrap_or(0) >= 1);
    assert!(snap.gauge("log.durable_lsn").unwrap() > 0);

    // At least one record traces the full causal chain: per-record stages
    // from the insert path, batch stages from the flush daemon.
    let spans = assemble_spans(&snap.events);
    let full = spans
        .iter()
        .find(|s| {
            let has = |st: Stage| s.stages.iter().any(|e| e.stage == st);
            has(Stage::Reserve)
                && has(Stage::Fill)
                && has(Stage::Release)
                && s.batch.iter().any(|e| e.stage == Stage::DeviceWrite)
                && s.batch.iter().any(|e| e.stage == Stage::Durable)
        })
        .unwrap_or_else(|| panic!("no full causal chain in {} spans", spans.len()));

    // Causality under the monotonic clock: the record was reserved before
    // its bytes hit the device, and durability is declared last.
    let start = |st: Stage| {
        full.stages
            .iter()
            .chain(full.batch.iter())
            .find(|e| e.stage == st)
            .unwrap()
            .start_ns
    };
    assert!(start(Stage::Reserve) <= start(Stage::Fill));
    assert!(start(Stage::Fill) <= start(Stage::Release));
    assert!(start(Stage::DeviceWrite) <= start(Stage::Durable));

    // The renderers agree on the same snapshot.
    let text = snap.render_text();
    assert!(text.lines().all(|l| l.starts_with("telemetry> ")));
    assert!(text.contains("span lsn="));
    assert!(snap.render_jsonl().contains("\"stage\":\"durable\""));
}

/// The disabled path stays inert: no histogram observations, no trace
/// events, and the snapshot renders cleanly.
#[test]
fn disabled_telemetry_records_nothing() {
    let log = LogManager::builder().device(DeviceKind::Ram).build();
    for i in 0..16u64 {
        log.insert(RecordKind::Update, i, &[7u8; 64]);
    }
    log.flush_all().unwrap();
    assert!(!log.telemetry().on());
    let snap = log.telemetry_snapshot();
    assert_eq!(snap.hist("log.insert_ns").unwrap().count, 0);
    assert!(snap.events.is_empty());
    // The stats-backed counters still render (they are always maintained).
    assert_eq!(snap.counter("log.inserts"), Some(16));
}
