//! Property tests for the reservation-based (zero-copy) insert path.
//!
//! Two independently built logs — one fed through the legacy byte-slice
//! `insert(&[u8])` wrapper, one through `reserve` + streamed `SlotWriter`
//! writes split at arbitrary chunk boundaries — must produce **byte
//! identical**, reader-decodable device streams for any sequence of record
//! sizes. The ring is deliberately tiny (4 KiB) so sequences straddle the
//! wrap boundary many times; the flush daemon's vectored drain is therefore
//! exercised on both one-slice and two-slice windows.

use aether_core::device::SimDevice;
use aether_core::record::{RecordKind, HEADER_SIZE};
use aether_core::{BufferKind, LogManager, Lsn};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic payload bytes for record `i` of length `len`.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| (i * 31 + j * 7) as u8).collect()
}

fn build_log(kind: BufferKind, device: Arc<SimDevice>) -> LogManager {
    LogManager::builder()
        .buffer(kind)
        .config(aether_core::LogConfig::default().with_buffer_size(4096))
        .device_instance(device)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reservation_and_legacy_insert_produce_identical_logs(
        kind_idx in 0usize..5,
        // Payload sizes spanning 0 bytes to larger-than-half-the-ring, so
        // records straddle the 4 KiB wrap boundary in many phases.
        sizes in proptest::collection::vec(0usize..2500, 1..40),
        // Chunk split knob for the streamed writes.
        split in 1usize..64,
    ) {
        let kind = BufferKind::ALL[kind_idx];

        // A: legacy pre-encoded-slice wrapper.
        let dev_a = Arc::new(SimDevice::new(Duration::ZERO));
        let log_a = build_log(kind, Arc::clone(&dev_a));
        for (i, &len) in sizes.iter().enumerate() {
            let p = payload(i, len);
            log_a.insert_chained(RecordKind::Update, i as u64, Lsn(i as u64), &p);
        }
        log_a.flush_all().unwrap();

        // B: reservation path, payload streamed in `split`-byte chunks.
        let dev_b = Arc::new(SimDevice::new(Duration::ZERO));
        let log_b = build_log(kind, Arc::clone(&dev_b));
        for (i, &len) in sizes.iter().enumerate() {
            let p = payload(i, len);
            let mut slot = log_b.reserve(RecordKind::Update, i as u64, Lsn(i as u64), len);
            for chunk in p.chunks(split.max(1)) {
                slot.write(chunk);
            }
            prop_assert_eq!(slot.writer().remaining(), 0);
            slot.release();
        }
        log_b.flush_all().unwrap();

        // Byte-identical device streams.
        let bytes_a = dev_a.contents();
        let bytes_b = dev_b.contents();
        prop_assert_eq!(&bytes_a, &bytes_b, "device streams diverge for {:?}", kind);

        // And the stream decodes back to exactly the inserted records.
        let recs = log_b.reader().read_all().unwrap();
        prop_assert_eq!(recs.len(), sizes.len());
        for (i, rec) in recs.iter().enumerate() {
            prop_assert_eq!(rec.header.kind, RecordKind::Update);
            prop_assert_eq!(rec.header.txn, i as u64);
            prop_assert_eq!(rec.header.prev_lsn, Lsn(i as u64));
            prop_assert_eq!(&rec.payload, &payload(i, sizes[i]));
            prop_assert!(rec.header.verify(&rec.payload));
        }

        // The zero-copy drain never staged bytes through a scratch buffer.
        prop_assert_eq!(log_b.stats().scratch_bytes, 0);
    }

    #[test]
    fn slot_typed_puts_match_slice_writes(
        vals in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        // put_u8/u16/u32/u64 must be byte-equivalent to one put_slice of
        // the little-endian concatenation.
        let mut flat = Vec::new();
        for v in &vals {
            flat.push(*v as u8);
            flat.extend_from_slice(&(*v as u16).to_le_bytes());
            flat.extend_from_slice(&(*v as u32).to_le_bytes());
            flat.extend_from_slice(&v.to_le_bytes());
        }

        let dev_a = Arc::new(SimDevice::new(Duration::ZERO));
        let log_a = build_log(BufferKind::Hybrid, Arc::clone(&dev_a));
        log_a.insert(RecordKind::Filler, 1, &flat);
        log_a.flush_all().unwrap();

        let dev_b = Arc::new(SimDevice::new(Duration::ZERO));
        let log_b = build_log(BufferKind::Hybrid, Arc::clone(&dev_b));
        let mut slot = log_b.reserve(RecordKind::Filler, 1, Lsn::ZERO, flat.len());
        for v in &vals {
            let w = slot.writer();
            w.put_u8(*v as u8);
            w.put_u16(*v as u16);
            w.put_u32(*v as u32);
            w.put_u64(*v);
        }
        slot.release();
        log_b.flush_all().unwrap();

        prop_assert_eq!(dev_a.contents(), dev_b.contents());
    }
}

#[test]
fn dropped_slot_does_not_wedge_the_release_chain() {
    // An abandoned reservation (e.g. a panicking serializer) must still
    // publish so successors release — but NOT under its original kind: a
    // CRC-valid Update with a garbage payload would wedge replay forever.
    // The slot is neutralized to an all-zero Filler record, which every
    // log consumer skips.
    for kind in BufferKind::ALL {
        let dev = Arc::new(SimDevice::new(Duration::ZERO));
        let log = build_log(kind, Arc::clone(&dev));
        log.insert(RecordKind::Filler, 1, b"before");
        {
            let mut slot = log.reserve(RecordKind::Update, 2, Lsn(64), 100);
            slot.write(b"partial");
            // dropped here without release()
        }
        let after = log.insert(RecordKind::Filler, 3, b"after");
        log.flush_all().unwrap();
        let recs = log.reader().read_all().unwrap();
        assert_eq!(recs.len(), 3, "{kind:?}: all three records must publish");
        assert_eq!(recs[2].lsn, after);
        // The abandoned record is a neutral, CRC-valid, all-zero Filler —
        // no trace of the half-written Update survives.
        assert_eq!(recs[1].header.kind, RecordKind::Filler);
        assert_eq!(recs[1].header.txn, 0);
        assert_eq!(recs[1].header.prev_lsn, Lsn::ZERO);
        assert_eq!(recs[1].payload, vec![0u8; 100]);
        assert!(recs[1].header.verify(&recs[1].payload));
    }
}

#[test]
fn oversized_payload_rejected_before_any_lock_is_taken() {
    // A payload beyond MAX_PAYLOAD must panic on entry to reserve — before
    // the insert mutex is locked or LSN space handed out — so the log keeps
    // working afterwards instead of wedging every later insert.
    use aether_core::record::MAX_PAYLOAD;
    for kind in BufferKind::ALL {
        let dev = Arc::new(SimDevice::new(Duration::ZERO));
        let log = Arc::new(
            LogManager::builder()
                .buffer(kind)
                .config(aether_core::LogConfig::default().with_buffer_size(1 << 22))
                .device_instance(Arc::clone(&dev) as Arc<dyn aether_core::device::LogDevice>)
                .build(),
        );
        let log2 = Arc::clone(&log);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            log2.reserve(RecordKind::Filler, 1, Lsn::ZERO, MAX_PAYLOAD + 1);
        }));
        assert!(panicked.is_err(), "{kind:?}: oversized reserve must panic");
        // The log is not wedged: an ordinary insert still completes.
        let lsn = log.insert(RecordKind::Filler, 2, b"still alive");
        log.flush_all().unwrap();
        assert!(log.durable_lsn() > lsn, "{kind:?}: log wedged after panic");
    }
}

#[test]
#[should_panic(expected = "slot overflow")]
fn overfilling_a_slot_panics() {
    let dev = Arc::new(SimDevice::new(Duration::ZERO));
    let log = build_log(BufferKind::Baseline, dev);
    let mut slot = log.reserve(RecordKind::Filler, 1, Lsn::ZERO, 8);
    slot.write(&[0u8; 9]);
}

#[test]
fn empty_payload_record_roundtrips() {
    let dev = Arc::new(SimDevice::new(Duration::ZERO));
    let log = build_log(BufferKind::Delegated, Arc::clone(&dev));
    let slot = log.reserve(RecordKind::Commit, 7, Lsn(64), 0);
    assert_eq!(slot.end_lsn().raw() - slot.lsn().raw(), HEADER_SIZE as u64);
    slot.release();
    log.flush_all().unwrap();
    let recs = log.reader().read_all().unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].header.kind, RecordKind::Commit);
    assert!(recs[0].payload.is_empty());
}
