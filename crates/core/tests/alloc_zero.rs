//! Proof that the steady-state insert path performs **zero heap
//! allocations**: a counting global allocator brackets a burst of
//! reservation-based inserts on every buffer variant and asserts the
//! allocation count did not move.
//!
//! This file is its own integration-test binary on purpose: the counting
//! allocator is process-global, and a single `#[test]` keeps other tests'
//! allocations out of the measurement window. The buffers run over a
//! discarding core (auto-reclaim, no flush daemon), matching the fig8
//! microbenchmark configuration — the paper's "log insertions without
//! flushes to disk".

use aether_core::buffer::{
    BaselineBuffer, BufferCore, BufferKind, ConsolidationBuffer, DecoupledBuffer, DelegatedBuffer,
    HybridBuffer, LogBuffer,
};
use aether_core::record::RecordKind;
use aether_core::{LogConfig, Lsn};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// System allocator wrapper that counts allocations while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn count_insert_allocs(kind: BufferKind, inserts: usize, payload: &[u8]) -> u64 {
    let cfg = LogConfig::default().with_buffer_size(1 << 20);
    let core = BufferCore::new(&cfg);
    core.set_auto_reclaim(true);
    let buffer: Box<dyn LogBuffer> = match kind {
        BufferKind::Baseline => Box::new(BaselineBuffer::new(Arc::clone(&core))),
        BufferKind::Consolidation => Box::new(ConsolidationBuffer::new(Arc::clone(&core), &cfg)),
        BufferKind::Decoupled => Box::new(DecoupledBuffer::new(Arc::clone(&core))),
        BufferKind::Hybrid => Box::new(HybridBuffer::new(Arc::clone(&core), &cfg)),
        BufferKind::Delegated => Box::new(DelegatedBuffer::new(Arc::clone(&core), &cfg)),
    };

    // Warm up: first calls may lazily initialize (thread-local RNG seed,
    // parking_lot statics); steady state is what the claim is about.
    for _ in 0..64 {
        let mut slot = buffer.reserve(RecordKind::Filler, 1, Lsn::ZERO, payload.len());
        slot.write(payload);
        slot.release();
    }

    ALLOCS.store(0, Ordering::SeqCst);
    REALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for i in 0..inserts {
        let mut slot = buffer.reserve(RecordKind::Filler, i as u64, Lsn::ZERO, payload.len());
        // Stream in two chunks to exercise the chunked writer too.
        let mid = payload.len() / 2;
        slot.write(&payload[..mid]);
        slot.write(&payload[mid..]);
        slot.release();
    }
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst) + REALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_insert_path_is_alloc_free() {
    // 120-byte records (the paper's workload average) across sizes that
    // wrap the 1 MiB ring several times, on every variant.
    let payload = vec![0xA7u8; 120 - aether_core::record::HEADER_SIZE];
    for kind in BufferKind::ALL {
        let allocs = count_insert_allocs(kind, 20_000, &payload);
        assert_eq!(
            allocs, 0,
            "{kind:?}: steady-state reserve/fill/release must not touch the heap \
             ({allocs} allocations in 20k inserts)"
        );
    }
}
