//! Proof that the telemetry record path performs **zero heap allocations**
//! once metrics are registered: a counting global allocator brackets a
//! burst of counter adds, gauge sets, histogram records, and sampled trace
//! spans, and asserts the allocation count did not move — enabled or not.
//!
//! Own integration-test binary for the same reason as `alloc_zero.rs`: the
//! counting allocator is process-global, and a single `#[test]` keeps other
//! tests' allocations out of the measurement window.

use aether_core::telemetry::{Stage, Telemetry, TelemetryConfig, Unit};
use aether_core::Lsn;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// System allocator wrapper that counts allocations while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn record_burst(tel: &Telemetry, rounds: u64) {
    let c = tel.counter("t.counter", Unit::Count);
    let g = tel.gauge("t.gauge", Unit::Bytes);
    let h = tel.histogram("t.hist", Unit::Nanos);
    for i in 0..rounds {
        tel.add(c, i);
        tel.inc(c);
        tel.gauge_set(g, i as i64);
        tel.gauge_add(g, -1);
        tel.record(h, i * 37 + 1);
        tel.record(tel.ids().log_insert_ns, i ^ 0x5A5A);
        // Every LSN here passes the sample_every=1 mask, so the trace ring
        // (fixed-capacity, overwrite-oldest) takes every span and event.
        let lsn = Lsn(i * 64);
        tel.span(Stage::Fill, lsn, i, i + 10);
        tel.event(Stage::Durable, lsn, i + 20);
    }
}

#[test]
fn telemetry_record_path_is_alloc_free() {
    for enabled in [true, false] {
        let tel = Telemetry::new(&TelemetryConfig {
            enabled,
            sample_every: 1,
            ..TelemetryConfig::default()
        });
        // Warm up: registration allocates (names, shard arrays) and the
        // first record pins this thread's shard; steady state is the claim.
        record_burst(&tel, 64);

        ALLOCS.store(0, Ordering::SeqCst);
        REALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        record_burst(&tel, 20_000);
        ARMED.store(false, Ordering::SeqCst);
        let allocs = ALLOCS.load(Ordering::SeqCst) + REALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            allocs, 0,
            "enabled={enabled}: steady-state record path must not touch the heap \
             ({allocs} allocations in 20k rounds)"
        );
    }
}
