//! Property and concurrency tests for the telemetry histogram: quantiles
//! against a sorted-vector oracle, bucket-boundary exactness, shard-merge
//! idempotence, and multi-threaded recording.

use aether_core::telemetry::histogram::{
    bucket_index, bucket_lower, bucket_upper, Histogram, BUCKET_COUNT, MAX_BITS, SUB_BITS,
    SUB_COUNT,
};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The documented quantile contract, against a sorted-vector oracle:
    /// `value_at_quantile(q)` is exactly the upper bound of the bucket
    /// holding the rank-`ceil(q*n)` observation, clamped to the observed
    /// maximum — which bounds the relative error by one sub-bucket width.
    #[test]
    fn quantiles_match_sorted_oracle(
        values in proptest::collection::vec(any::<u64>(), 1..400),
        qs in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let h = Histogram::new(4);
        for &v in &values {
            h.record(v);
        }
        let snap = h.merged();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, sorted.len() as u64);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for &qi in &qs {
            let q = qi as f64 / 1000.0;
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let got = snap.value_at_quantile(q);
            prop_assert_eq!(
                got,
                bucket_upper(bucket_index(oracle)).min(snap.max),
                "q={} rank={} oracle={}", q, rank, oracle
            );
            // And the headline property that contract implies:
            prop_assert!(got >= oracle, "quantile may never under-report");
            if oracle < (1 << MAX_BITS) {
                let width = bucket_upper(bucket_index(oracle))
                    .saturating_sub(bucket_lower(bucket_index(oracle)));
                prop_assert!(
                    got - oracle <= width,
                    "q={}: {} overshoots oracle {} by more than its bucket", q, got, oracle
                );
            }
        }
    }

    /// Bucket boundaries are exact: every value round-trips into a bucket
    /// whose bounds contain it, and bucketing preserves the total order.
    #[test]
    fn bucket_boundaries_contain_and_order(a in any::<u64>(), b in any::<u64>()) {
        for v in [a, b] {
            let i = bucket_index(v);
            prop_assert!(i < BUCKET_COUNT);
            prop_assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
        }
        if a <= b {
            prop_assert!(bucket_index(a) <= bucket_index(b));
        }
    }
}

/// Values below `SUB_COUNT` and every power-of-two boundary up to the clamp
/// are bucketed exactly: one value per bucket below `SUB_COUNT`, and each
/// `2^k` starts its bucket.
#[test]
fn bucket_boundary_exactness() {
    for v in 0..SUB_COUNT as u64 {
        let i = bucket_index(v);
        assert_eq!((bucket_lower(i), bucket_upper(i)), (v, v), "value {v}");
    }
    for bits in SUB_BITS..MAX_BITS {
        let p = 1u64 << bits;
        assert_eq!(bucket_lower(bucket_index(p)), p, "2^{bits}");
        assert_ne!(bucket_index(p - 1), bucket_index(p), "2^{bits} boundary");
    }
    assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
}

/// Concurrent recording from many threads loses nothing: count, sum, min
/// and max all match the closed-form totals, regardless of which shard
/// each thread landed on.
#[test]
fn concurrent_recording_is_lossless() {
    let h = Arc::new(Histogram::new(8));
    let threads = 8u64;
    let per = 10_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..per {
                    // Distinct magnitudes per thread so every shard sees a
                    // different distribution.
                    h.record(t * per + i + 1);
                }
            });
        }
    });
    let snap = h.merged();
    let n = threads * per;
    assert_eq!(snap.count, n);
    assert_eq!(snap.sum, n * (n + 1) / 2);
    assert_eq!(snap.min, 1);
    assert_eq!(snap.max, n);
    assert_eq!(snap.buckets.iter().sum::<u64>(), n);
}

/// Merging is idempotent (same histogram, same snapshot twice) and
/// shard-independent: the merged view of a many-sharded histogram filled
/// from many threads equals a single-sharded one fed the same values.
#[test]
fn shard_merge_is_idempotent_and_shard_independent() {
    let sharded = Arc::new(Histogram::new(8));
    let single = Histogram::new(1);
    let values: Vec<u64> = (0..5000u64)
        .map(|i| i.wrapping_mul(2654435761) >> 16)
        .collect();
    std::thread::scope(|s| {
        for chunk in values.chunks(1250) {
            let h = Arc::clone(&sharded);
            let chunk = chunk.to_vec();
            s.spawn(move || {
                for v in chunk {
                    h.record(v);
                }
            });
        }
    });
    for &v in &values {
        single.record(v);
    }
    let a = sharded.merged();
    assert_eq!(a, sharded.merged(), "merge must be idempotent");
    assert_eq!(a, single.merged(), "merge must not depend on shard layout");
}
