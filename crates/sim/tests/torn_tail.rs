//! Exhaustive torn-write recovery: clip the durable log mid-frame at
//! *every byte offset* of the last record and assert recovery always
//! truncates cleanly at the preceding record boundary — never a partial
//! record, never a dead tail, never a state that differs from the
//! boundary-clipped reference.

use aether_core::device::{LogDevice, SimDevice};
use aether_core::{BufferKind, LogConfig};
use aether_storage::recovery::recover_with_stats;
use aether_storage::replay::{snapshot_read, state_fingerprint};
use aether_storage::{CommitProtocol, CrashImage, Db, DbOptions};
use std::sync::Arc;
use std::time::Duration;

fn opts() -> DbOptions {
    DbOptions {
        protocol: CommitProtocol::Baseline,
        buffer: BufferKind::Hybrid,
        log_config: LogConfig::default().with_buffer_size(1 << 20),
        ..DbOptions::default()
    }
}

fn record(key: u64, counter: u64) -> Vec<u8> {
    let mut r = vec![0u8; 40];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&counter.to_le_bytes());
    r
}

fn counter_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[8..16].try_into().unwrap())
}

/// Crash image with the log clipped to `cut` stream bytes — the torn-write
/// model: the device lost everything at and beyond the tear.
fn clipped_image(db: &Db, cut: u64) -> CrashImage {
    let mut image = db.crash();
    let keep = (cut - image.log_start.raw()) as usize;
    image.log_bytes.truncate(keep);
    image
}

#[test]
fn every_tear_offset_in_last_record_recovers_to_the_boundary() {
    let device = Arc::new(SimDevice::new(Duration::ZERO));
    let db = Db::open_with_device(opts(), Arc::clone(&device) as Arc<dyn LogDevice>);
    db.create_table(40, 4);
    for k in 0..4u64 {
        db.load(0, k, &record(k, 0)).unwrap();
    }
    db.setup_complete();
    // A few committed rounds; the final commit record is the tear target.
    for round in 1..=3u64 {
        for k in 0..4u64 {
            let mut txn = db.begin();
            db.update(&mut txn, 0, k, &record(k, round)).unwrap();
            db.commit(txn).unwrap();
        }
    }
    db.log().flush_all().unwrap();

    let records = db.log().reader().read_all().unwrap();
    let last = records.last().expect("log has records");
    let boundary = last.lsn.raw();
    let end = last.next_lsn().raw();
    assert!(end > boundary + 1, "last record must span multiple bytes");

    // Reference: recovery from the log clipped exactly at the boundary —
    // the last record cleanly absent.
    let (reference, ref_stats) = recover_with_stats(clipped_image(&db, boundary), opts()).unwrap();
    let ref_fp = state_fingerprint(&reference).unwrap();

    // Every tear offset strictly inside the last record must recover to
    // exactly the reference: a partial record is indistinguishable from no
    // record.
    for cut in boundary + 1..end {
        let (recovered, stats) = recover_with_stats(clipped_image(&db, cut), opts())
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery failed: {e:?}"));
        assert_eq!(
            stats.scanned, ref_stats.scanned,
            "cut at byte {cut}: torn record partially scanned"
        );
        assert_eq!(
            state_fingerprint(&recovered).unwrap(),
            ref_fp,
            "cut at byte {cut}: state differs from boundary-clipped reference"
        );
        // The recovered log was truncated at the boundary: a fresh scan
        // parses cleanly and the first post-recovery append lands at the
        // boundary, not after dead tail bytes.
        let recovered_records =
            recovered.log().reader().read_all().unwrap_or_else(|e| {
                panic!("cut at byte {cut}: recovered log has a dead tail: {e:?}")
            });
        for w in recovered_records.windows(2) {
            assert_eq!(
                w[1].lsn,
                w[0].next_lsn(),
                "cut at byte {cut}: recovered log is not dense"
            );
        }
        if let Some(first_new) = recovered_records.iter().find(|r| r.lsn.raw() >= boundary) {
            assert_eq!(
                first_new.lsn.raw(),
                boundary,
                "cut at byte {cut}: post-recovery records must start at the truncation boundary"
            );
        }
    }

    // Sanity: a cut at the full length keeps the last record (the winner
    // stays a winner), so the final round's values survive.
    let (full, _) = recover_with_stats(clipped_image(&db, end), opts()).unwrap();
    for k in 0..4u64 {
        assert_eq!(
            counter_of(&snapshot_read(&full, 0, k).unwrap().unwrap()),
            3,
            "full-length image must recover the final round"
        );
    }
    assert_ne!(
        state_fingerprint(&full).unwrap(),
        ref_fp,
        "the last record must be semantically meaningful for this test to bite"
    );
}
