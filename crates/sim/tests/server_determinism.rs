//! The wire server is a pure function of its seed: the whole stack —
//! IO loop, per-connection executors, flush daemon, client actors —
//! runs under `Runtime::sim`, so one seed pins one interleaving, one
//! scheduler history, and one final table state.

use aether_sim::run_server_seed;

#[test]
fn same_seed_replays_byte_identically() {
    let a = run_server_seed(0x5EED);
    let b = run_server_seed(0x5EED);
    assert!(a.ok(), "violations: {:?}", a.violations);
    assert_eq!(
        a.history, b.history,
        "same seed must replay the same scheduler history"
    );
    assert_eq!(a.state, b.state, "same history must converge to same state");
    assert_eq!(a.acked, b.acked);
}

#[test]
fn different_seeds_diverge() {
    let a = run_server_seed(1);
    let c = run_server_seed(2);
    assert!(a.ok(), "violations: {:?}", a.violations);
    assert!(c.ok(), "violations: {:?}", c.violations);
    // Different seeds draw different plans and schedules; if these ever
    // collide the history hash has lost its witness value.
    assert_ne!(a.history, c.history, "seed must steer the interleaving");
}

#[test]
fn a_seed_batch_holds_server_invariants() {
    // A small always-on sweep: ordering, token monotonicity and
    // read-your-writes across a spread of plans (every commit protocol
    // appears within 12 seeds). The wide sweep lives in `sim_sweep`.
    for seed in 0..12u64 {
        let r = run_server_seed(seed);
        assert!(r.ok(), "seed {seed} violations: {:?}", r.violations);
        assert!(r.acked > 0, "seed {seed} acked nothing");
    }
}
