//! The determinism contract, end to end: one seed ⇒ one byte-identical
//! cluster history, across every scenario shape the plan decoder emits.

use aether_sim::{run_seed, Fault, FaultPlan};

/// Same seed, twice: identical scheduler history (hash AND event count),
/// identical ack totals, identical verdicts. This is the property that
/// makes `AETHER_SIM_SEED=<n>` a reproduction recipe rather than a hint.
#[test]
fn same_seed_replays_byte_identically() {
    for seed in [3, 11, 0xA37, 9_000_001] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert_eq!(
            a.history, b.history,
            "seed {seed}: history diverged between runs"
        );
        assert_eq!(a.acked, b.acked, "seed {seed}: ack totals diverged");
        assert_eq!(a.violations, b.violations, "seed {seed}: verdicts diverged");
        assert!(a.history.1 > 0, "seed {seed}: sim recorded no events");
    }
}

/// The telemetry snapshot rides the same contract: every timestamp in it is
/// virtual, sampling is a pure function of the LSN, and shard merges are
/// commutative — so rerunning a seed must render a byte-identical snapshot,
/// and a real run must actually contain data (counters, hists, spans).
#[test]
fn same_seed_renders_identical_telemetry() {
    for seed in [3, 11, 0xA37] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert_eq!(
            a.telemetry, b.telemetry,
            "seed {seed}: telemetry snapshot diverged between runs"
        );
        assert!(
            a.telemetry.lines().all(|l| l.starts_with("telemetry> ")),
            "seed {seed}: unprefixed snapshot line"
        );
        assert!(
            a.telemetry.contains("counter log.inserts="),
            "seed {seed}: snapshot missing insert counter:\n{}",
            a.telemetry
        );
        assert!(
            a.telemetry.contains("hist log.insert_ns count="),
            "seed {seed}: snapshot missing insert latency histogram"
        );
    }
}

/// Different seeds take different paths (scheduling, scenario, or both).
#[test]
fn different_seeds_diverge() {
    let a = run_seed(101);
    let b = run_seed(102);
    assert_ne!(
        a.history, b.history,
        "two seeds produced identical histories"
    );
}

/// A small sweep across the scenario space: every seed must satisfy every
/// invariant. CI runs the big sweep (200+ seeds) via the `sim_sweep` binary;
/// this keeps `cargo test` honest without the wall-clock bill.
#[test]
fn small_sweep_passes_all_invariants() {
    let mut faults_seen = Vec::new();
    for seed in 1..=24 {
        let report = run_seed(seed);
        assert!(
            report.ok(),
            "seed {seed} ({:?}): {:?}",
            report.plan.fault,
            report.violations
        );
        faults_seen.push(report.plan.fault);
    }
    // The sweep range must actually exercise the fault menu, not just the
    // happy path.
    assert!(
        faults_seen.iter().any(|f| *f != Fault::None),
        "seeds 1..=24 decoded to fault-free plans only: {faults_seen:?}"
    );
}

/// Replaying a specific failure is exactly `run_seed(seed)` — assert the
/// plan decode that recipe depends on is stable for the documented faults.
#[test]
fn plan_decode_covers_documented_faults() {
    let mut kills = 0;
    let mut tears = 0;
    for seed in 0..2048 {
        match FaultPlan::decode(seed).fault {
            Fault::KillPrimary => kills += 1,
            Fault::TornWrite => tears += 1,
            _ => {}
        }
    }
    assert!(kills > 50, "kill-primary underrepresented: {kills}/2048");
    assert!(tears > 50, "torn-write underrepresented: {tears}/2048");
}
