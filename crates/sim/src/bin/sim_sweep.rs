//! Seed-sweep driver for the deterministic cluster simulation.
//!
//! ```text
//! sim_sweep [COUNT] [BASE_SEED]       # run COUNT seeds starting at BASE_SEED
//! AETHER_SIM_SEED=7213 sim_sweep      # rerun one seed, verbosely
//! AETHER_SIM_OUT=failing.txt sim_sweep 500
//! ```
//!
//! Environment:
//! * `AETHER_SIM_SEED` — run exactly this seed and print its full report.
//! * `AETHER_SIM_SEEDS` — seed count when no positional COUNT is given
//!   (default 200).
//! * `AETHER_SIM_BASE` — first seed when no positional BASE_SEED is given
//!   (default 1).
//! * `AETHER_SIM_SCENARIO` — `cluster` (default, the fault-injected
//!   replication scenario) or `server`: the wire tier under the seeded
//!   scheduler ([`aether_sim::run_server_seed`]) — connection loop,
//!   pipelined clients, read-your-writes checks.
//! * `AETHER_SIM_OUT` — file to write failing seeds to (one per line);
//!   always written when set, even if empty, so CI can upload it as an
//!   artifact unconditionally.
//!
//! Exit code 0 iff every seed satisfied every invariant.

use aether_sim::{run_seed, run_server_seed};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A scenario-agnostic view of one seed's outcome, so the sweep loop and
/// failure bookkeeping don't care which tier ran.
struct Outcome {
    acked: u64,
    history: (u64, u64),
    violations: Vec<String>,
    telemetry: String,
}

impl Outcome {
    fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn run_scenario(server: bool, seed: u64) -> Outcome {
    if server {
        let r = run_server_seed(seed);
        Outcome {
            acked: r.acked,
            history: r.history,
            violations: r.violations,
            telemetry: String::new(),
        }
    } else {
        let r = run_seed(seed);
        Outcome {
            acked: r.acked,
            history: r.history,
            violations: r.violations,
            telemetry: r.telemetry,
        }
    }
}

fn main() {
    let server = match std::env::var("AETHER_SIM_SCENARIO").as_deref() {
        Ok("server") => true,
        Ok("cluster") | Err(_) => false,
        Ok(other) => {
            eprintln!("AETHER_SIM_SCENARIO must be cluster|server, got {other:?}");
            std::process::exit(2);
        }
    };

    // Single-seed replay mode: the "reproduce this failure" entry point.
    if let Ok(v) = std::env::var("AETHER_SIM_SEED") {
        let seed: u64 = v.parse().unwrap_or_else(|_| {
            eprintln!("AETHER_SIM_SEED must be a u64, got {v:?}");
            std::process::exit(2);
        });
        println!("seed     : {seed}");
        if server {
            println!("scenario : server");
        } else {
            println!("plan     : {:?}", aether_sim::FaultPlan::decode(seed));
        }
        let report = run_scenario(server, seed);
        println!("acked    : {}", report.acked);
        println!(
            "history  : {:016x} over {} events",
            report.history.0, report.history.1
        );
        if report.ok() {
            println!("verdict  : PASS");
            print!("{}", report.telemetry);
        } else {
            println!("verdict  : FAIL");
            for v in &report.violations {
                println!("  - {v}");
            }
            // The structured snapshot is the "actor dump" for the log
            // pipeline: counters, latency histograms, and sampled spans at
            // the moment the invariant broke. Grep-stable (`telemetry>`).
            print!("{}", report.telemetry);
            std::process::exit(1);
        }
        return;
    }

    let args: Vec<String> = std::env::args().collect();
    let count = args
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64("AETHER_SIM_SEEDS", 200));
    let base = args
        .get(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64("AETHER_SIM_BASE", 1));

    let mut failing: Vec<(u64, String)> = Vec::new();
    let mut acked_total = 0u64;
    for i in 0..count {
        let seed = base + i;
        match catch_unwind(AssertUnwindSafe(|| run_scenario(server, seed))) {
            Ok(report) if report.ok() => acked_total += report.acked,
            Ok(report) => {
                eprintln!("seed {seed}: FAIL ({})", report.violations.join("; "));
                // Dump the end-of-run telemetry snapshot alongside the
                // verdict so a CI log alone is enough to see what the
                // pipeline was doing; every line is `telemetry>`-prefixed.
                eprint!("{}", report.telemetry);
                failing.push((seed, report.violations.join("; ")));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                eprintln!("seed {seed}: PANIC ({msg})");
                failing.push((seed, format!("panic: {msg}")));
            }
        }
    }

    if let Ok(path) = std::env::var("AETHER_SIM_OUT") {
        let mut f =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        for (seed, why) in &failing {
            writeln!(f, "{seed}\t{why}").unwrap();
        }
    }

    println!(
        "sim_sweep: {}/{count} seeds passed ({} commits acked); rerun a failure with \
         AETHER_SIM_SEED=<seed> sim_sweep",
        count - failing.len() as u64,
        acked_total
    );
    if !failing.is_empty() {
        eprintln!(
            "failing seeds: {:?}",
            failing.iter().map(|(s, _)| s).collect::<Vec<_>>()
        );
        std::process::exit(1);
    }
}
