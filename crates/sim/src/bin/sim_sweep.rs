//! Seed-sweep driver for the deterministic cluster simulation.
//!
//! ```text
//! sim_sweep [COUNT] [BASE_SEED]       # run COUNT seeds starting at BASE_SEED
//! AETHER_SIM_SEED=7213 sim_sweep      # rerun one seed, verbosely
//! AETHER_SIM_OUT=failing.txt sim_sweep 500
//! ```
//!
//! Environment:
//! * `AETHER_SIM_SEED` — run exactly this seed and print its full report.
//! * `AETHER_SIM_SEEDS` — seed count when no positional COUNT is given
//!   (default 200).
//! * `AETHER_SIM_BASE` — first seed when no positional BASE_SEED is given
//!   (default 1).
//! * `AETHER_SIM_SCENARIO` — `cluster` (default, the fault-injected
//!   replication scenario) or `server`: the wire tier under the seeded
//!   scheduler ([`aether_sim::run_server_seed`]) — connection loop,
//!   pipelined clients, read-your-writes checks.
//! * `AETHER_SIM_OUT` — file to write failing seeds to (one per line);
//!   always written when set, even if empty, so CI can upload it as an
//!   artifact unconditionally.
//! * `AETHER_SIM_JSON` — file to write the machine-readable sweep report
//!   to: counts, a per-fault-kind histogram of runs vs failures, and every
//!   failing seed with its fault kind and violations. Like
//!   `AETHER_SIM_OUT`, always written when set.
//! * `AETHER_SIM_FAULT` — force every seed to decode to this fault kind
//!   (kebab-case, e.g. `partition-then-heal`); the seed still varies the
//!   cluster shape and schedule. This is how the chaos CI job runs N seeds
//!   of each fault instead of letting the menu dilute them.
//!
//! Exit code 0 iff every seed satisfied every invariant.

use aether_sim::{run_seed, run_server_seed, Fault, FaultPlan};
use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A scenario-agnostic view of one seed's outcome, so the sweep loop and
/// failure bookkeeping don't care which tier ran.
struct Outcome {
    acked: u64,
    history: (u64, u64),
    violations: Vec<String>,
    telemetry: String,
}

impl Outcome {
    fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn run_scenario(server: bool, seed: u64) -> Outcome {
    if server {
        let r = run_server_seed(seed);
        Outcome {
            acked: r.acked,
            history: r.history,
            violations: r.violations,
            telemetry: String::new(),
        }
    } else {
        let r = run_seed(seed);
        Outcome {
            acked: r.acked,
            history: r.history,
            violations: r.violations,
            telemetry: r.telemetry,
        }
    }
}

fn main() {
    let server = match std::env::var("AETHER_SIM_SCENARIO").as_deref() {
        Ok("server") => true,
        Ok("cluster") | Err(_) => false,
        Ok(other) => {
            eprintln!("AETHER_SIM_SCENARIO must be cluster|server, got {other:?}");
            std::process::exit(2);
        }
    };

    // Single-seed replay mode: the "reproduce this failure" entry point.
    if let Ok(v) = std::env::var("AETHER_SIM_SEED") {
        let seed: u64 = v.parse().unwrap_or_else(|_| {
            eprintln!("AETHER_SIM_SEED must be a u64, got {v:?}");
            std::process::exit(2);
        });
        println!("seed     : {seed}");
        if server {
            println!("scenario : server");
        } else {
            println!("plan     : {:?}", aether_sim::FaultPlan::decode(seed));
        }
        let report = run_scenario(server, seed);
        println!("acked    : {}", report.acked);
        println!(
            "history  : {:016x} over {} events",
            report.history.0, report.history.1
        );
        if report.ok() {
            println!("verdict  : PASS");
            print!("{}", report.telemetry);
        } else {
            println!("verdict  : FAIL");
            for v in &report.violations {
                println!("  - {v}");
            }
            // The structured snapshot is the "actor dump" for the log
            // pipeline: counters, latency histograms, and sampled spans at
            // the moment the invariant broke. Grep-stable (`telemetry>`).
            print!("{}", report.telemetry);
            std::process::exit(1);
        }
        return;
    }

    let args: Vec<String> = std::env::args().collect();
    let count = args
        .get(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64("AETHER_SIM_SEEDS", 200));
    let base = args
        .get(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| env_u64("AETHER_SIM_BASE", 1));

    let mut failing: Vec<(u64, &'static str, String)> = Vec::new();
    // fault-kind name -> (runs, failures); BTreeMap for stable JSON order.
    let mut by_fault: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut acked_total = 0u64;
    for i in 0..count {
        let seed = base + i;
        // The fault kind this seed decodes to (the histogram key). Server
        // sweeps have no fault menu; the scheduler is the only adversary.
        let kind = if server {
            "server"
        } else {
            FaultPlan::decode(seed).fault.name()
        };
        by_fault.entry(kind).or_insert((0, 0)).0 += 1;
        match catch_unwind(AssertUnwindSafe(|| run_scenario(server, seed))) {
            Ok(report) if report.ok() => acked_total += report.acked,
            Ok(report) => {
                eprintln!(
                    "seed {seed} [{kind}]: FAIL ({})",
                    report.violations.join("; ")
                );
                // Dump the end-of-run telemetry snapshot alongside the
                // verdict so a CI log alone is enough to see what the
                // pipeline was doing; every line is `telemetry>`-prefixed.
                eprint!("{}", report.telemetry);
                by_fault.get_mut(kind).unwrap().1 += 1;
                failing.push((seed, kind, report.violations.join("; ")));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                eprintln!("seed {seed} [{kind}]: PANIC ({msg})");
                by_fault.get_mut(kind).unwrap().1 += 1;
                failing.push((seed, kind, format!("panic: {msg}")));
            }
        }
    }

    if let Ok(path) = std::env::var("AETHER_SIM_OUT") {
        let mut f =
            std::fs::File::create(&path).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        for (seed, _, why) in &failing {
            writeln!(f, "{seed}\t{why}").unwrap();
        }
    }
    if let Ok(path) = std::env::var("AETHER_SIM_JSON") {
        let json = render_json(count, base, acked_total, &by_fault, &failing);
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }

    if !failing.is_empty() {
        let mut hist: Vec<String> = by_fault
            .iter()
            .filter(|(_, (_, fails))| *fails > 0)
            .map(|(kind, (runs, fails))| format!("{kind}: {fails}/{runs}"))
            .collect();
        hist.sort();
        eprintln!("failures by fault kind: {}", hist.join(", "));
    }
    println!(
        "sim_sweep: {}/{count} seeds passed ({} commits acked); rerun a failure with \
         AETHER_SIM_SEED=<seed> sim_sweep",
        count - failing.len() as u64,
        acked_total
    );
    if !failing.is_empty() {
        eprintln!(
            "failing seeds: {:?}",
            failing.iter().map(|(s, _, _)| s).collect::<Vec<_>>()
        );
        std::process::exit(1);
    }
}

/// Minimal JSON string escape (quotes, backslashes, control bytes) —
/// violations embed arbitrary Debug output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable sweep report (`AETHER_SIM_JSON`). Every fault kind
/// in the menu appears in the histogram even with zero runs, so a CI
/// dashboard can tell "never scheduled" from "always passed".
fn render_json(
    count: u64,
    base: u64,
    acked: u64,
    by_fault: &BTreeMap<&'static str, (u64, u64)>,
    failing: &[(u64, &'static str, String)],
) -> String {
    let forced = std::env::var("AETHER_SIM_FAULT").unwrap_or_default();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seeds\": {count},\n  \"base\": {base},\n"));
    out.push_str(&format!(
        "  \"passed\": {},\n  \"failed\": {},\n  \"acked_commits\": {acked},\n",
        count - failing.len() as u64,
        failing.len()
    ));
    out.push_str(&format!(
        "  \"forced_fault\": \"{}\",\n",
        json_escape(&forced)
    ));
    out.push_str("  \"fault_histogram\": {\n");
    let mut kinds: Vec<&'static str> = Fault::ALL.iter().map(|f| f.name()).collect();
    for k in by_fault.keys() {
        if !kinds.contains(k) {
            kinds.push(k);
        }
    }
    for (i, kind) in kinds.iter().enumerate() {
        let (runs, fails) = by_fault.get(kind).copied().unwrap_or((0, 0));
        out.push_str(&format!(
            "    \"{kind}\": {{\"runs\": {runs}, \"failures\": {fails}}}{}\n",
            if i + 1 < kinds.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"failing_seeds\": [\n");
    for (i, (seed, kind, why)) in failing.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seed\": {seed}, \"fault\": \"{kind}\", \"violations\": \"{}\"}}{}\n",
            json_escape(why),
            if i + 1 < failing.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
