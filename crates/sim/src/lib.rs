//! Deterministic whole-cluster simulation for the Aether logging stack.
//!
//! The core, storage, and replication crates route every clock read, sleep,
//! thread spawn, and blocking wait through
//! [`aether_core::runtime`]. This crate exploits that seam: it boots an
//! entire cluster — primary with its flush daemon, replicas with shippers
//! and simulated links, committing workers — under
//! [`aether_core::runtime::Runtime::sim`], where a seeded cooperative
//! scheduler and a virtual clock make the whole execution a pure function
//! of one `u64` seed.
//!
//! On top of the virtual runtime sits a seeded **fault harness**:
//!
//! * [`plan::FaultPlan`] decodes each seed into a scenario — cluster shape,
//!   link latency/reordering, commit protocol, and one injected fault
//!   (primary kill, torn device write, wedged truncation, latency spike);
//! * [`fault::FaultDevice`] is a [`aether_core::device::LogDevice`] wrapper
//!   that tears writes and wedges truncation on command;
//! * [`cluster::run_seed`] runs the scenario and checks the DESIGN.md
//!   invariants it puts at risk, returning a [`cluster::SimReport`] whose
//!   `history` field is the reproducibility witness: the same seed must
//!   reproduce it bit-for-bit.
//!
//! [`server_scenario::run_server_seed`] does the same for the wire tier:
//! an `aether-server` connection loop plus a fleet of pipelining clients,
//! all over in-process channel transports under the seeded scheduler, so
//! the server's batching/ordering invariants replay byte-identically too.
//!
//! The `sim_sweep` binary runs a batch of seeds (default 200) and prints
//! the failing ones; `AETHER_SIM_SEED=<n> sim_sweep` reruns a single seed —
//! byte-identically, every time.

#![warn(missing_docs)]

pub mod cluster;
pub mod fault;
pub mod plan;
pub mod server_scenario;

pub use cluster::{run_seed, SimReport};
pub use fault::FaultDevice;
pub use plan::{Fault, FaultPlan, SeedRng};
pub use server_scenario::{run_server_seed, ServerSimReport};
