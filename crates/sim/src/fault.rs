//! A fault-injecting [`LogDevice`] wrapper.
//!
//! [`FaultDevice`] sits between the flush daemon and the real device and
//! misbehaves on command:
//!
//! * **Torn write + power loss** ([`FaultDevice::arm_torn_write`]): the next
//!   append lands only a prefix, then the device goes dark — every later
//!   append is silently dropped and syncs succeed without persisting
//!   anything. This is the lying-disk model: the upper layers keep acking,
//!   but the bytes are gone, exactly like a crash after a torn sector.
//! * **Stuck truncation** ([`FaultDevice::set_truncate_stuck`]):
//!   `truncate_before` reports zero recycled segments, modeling a recycler
//!   wedged on a full metadata store. Correctness must not depend on
//!   reclamation ever succeeding — only boundedness does.
//!
//! Reads always pass through, so a crash image taken from a torn device
//! reflects precisely the bytes that "survived".

use aether_core::device::LogDevice;
use aether_core::error::Result;
use aether_core::Lsn;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wraps an inner log device with switchable write/truncate faults.
pub struct FaultDevice {
    inner: Arc<dyn LogDevice>,
    /// When set, the next write keeps at most this many bytes, then the
    /// device freezes. `u64::MAX` = disarmed.
    tear_keep: AtomicU64,
    /// Dark-device mode: appends dropped, syncs lie.
    frozen: AtomicBool,
    /// Truncation wedged: `truncate_before` recycles nothing.
    truncate_stuck: AtomicBool,
    /// Truncation fails with `AetherError::DiskFull` (recycler needs scratch
    /// space it cannot get — the ENOSPC-on-truncate paradox).
    truncate_enospc: AtomicBool,
    /// The next N syncs fail with a *transient* I/O error
    /// (`ErrorKind::Interrupted`) — the flush daemon's retry fodder.
    sync_fails: AtomicU64,
    /// Appends (fully or partially) dropped since the freeze.
    dropped_writes: AtomicU64,
}

impl std::fmt::Debug for FaultDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDevice")
            .field("frozen", &self.frozen.load(Ordering::Relaxed))
            .field(
                "dropped_writes",
                &self.dropped_writes.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl FaultDevice {
    /// Wrap `inner`; all faults start disarmed.
    pub fn new(inner: Arc<dyn LogDevice>) -> Arc<FaultDevice> {
        Arc::new(FaultDevice {
            inner,
            tear_keep: AtomicU64::new(u64::MAX),
            frozen: AtomicBool::new(false),
            truncate_stuck: AtomicBool::new(false),
            truncate_enospc: AtomicBool::new(false),
            sync_fails: AtomicU64::new(0),
            dropped_writes: AtomicU64::new(0),
        })
    }

    /// Arm the torn-write fault: the next write keeps at most `keep` bytes
    /// and the device then goes dark.
    pub fn arm_torn_write(&self, keep: u64) {
        self.tear_keep.store(keep, Ordering::SeqCst);
    }

    /// Go dark immediately (a clean power cut at a write boundary).
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::SeqCst);
    }

    /// True once a tear or freeze has fired.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::SeqCst)
    }

    /// Wedge (or unwedge) truncation.
    pub fn set_truncate_stuck(&self, stuck: bool) {
        self.truncate_stuck.store(stuck, Ordering::SeqCst);
    }

    /// Make (or stop making) truncation fail with `DiskFull`: the recycler
    /// itself hits ENOSPC. Distinct from [`FaultDevice::set_truncate_stuck`]
    /// — this arm surfaces a typed *error*, not a silent zero.
    pub fn set_truncate_enospc(&self, on: bool) {
        self.truncate_enospc.store(on, Ordering::SeqCst);
    }

    /// Fail the next `n` syncs with a transient I/O error
    /// (`ErrorKind::Interrupted`). The flush daemon's bounded retry should
    /// absorb `n` below its attempt budget; above it, the log poisons.
    pub fn fail_syncs(&self, n: u64) {
        self.sync_fails.store(n, Ordering::SeqCst);
    }

    /// Writes fully or partially dropped since the device went dark.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped_writes.load(Ordering::Relaxed)
    }

    /// One write path for both `append` and `write_vectored`: apply the
    /// armed tear to the first run it covers, drop everything once frozen.
    fn faulty_write(&self, bufs: &[&[u8]]) -> Result<()> {
        if self.frozen.load(Ordering::SeqCst) {
            self.dropped_writes.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let keep = self.tear_keep.swap(u64::MAX, Ordering::SeqCst);
        if keep == u64::MAX {
            return self.inner.write_vectored(bufs);
        }
        // Tear fires on this write: land `keep` bytes, then go dark.
        let mut budget = keep as usize;
        for b in bufs {
            let n = b.len().min(budget);
            if n > 0 {
                self.inner.append(&b[..n])?;
                budget -= n;
            }
        }
        self.frozen.store(true, Ordering::SeqCst);
        self.dropped_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl LogDevice for FaultDevice {
    fn append(&self, data: &[u8]) -> Result<()> {
        self.faulty_write(&[data])
    }
    fn write_vectored(&self, bufs: &[&[u8]]) -> Result<()> {
        self.faulty_write(bufs)
    }
    fn sync(&self) -> Result<()> {
        if self.frozen.load(Ordering::SeqCst) {
            // A dark device acks syncs instantly: the lie that makes torn
            // tails interesting.
            return Ok(());
        }
        if self
            .sync_fails
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(
                std::io::Error::new(std::io::ErrorKind::Interrupted, "injected sync blip").into(),
            );
        }
        self.inner.sync()
    }
    fn read_at(&self, offset: u64, dst: &mut [u8]) -> Result<usize> {
        self.inner.read_at(offset, dst)
    }
    fn len(&self) -> u64 {
        self.inner.len()
    }
    fn discards(&self) -> bool {
        self.inner.discards()
    }
    fn nominal_latency(&self) -> Duration {
        self.inner.nominal_latency()
    }
    fn snapshot(&self) -> Option<Vec<u8>> {
        self.inner.snapshot()
    }
    fn low_water(&self) -> Lsn {
        self.inner.low_water()
    }
    fn truncate_before(&self, upto: Lsn) -> Result<usize> {
        if self.truncate_enospc.load(Ordering::SeqCst) {
            return Err(aether_core::AetherError::DiskFull);
        }
        if self.truncate_stuck.load(Ordering::SeqCst) {
            return Ok(0);
        }
        self.inner.truncate_before(upto)
    }
    fn snapshot_from(&self) -> Option<(Lsn, Vec<u8>)> {
        self.inner.snapshot_from()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aether_core::device::SimDevice;

    fn dev() -> (Arc<SimDevice>, Arc<FaultDevice>) {
        let inner = Arc::new(SimDevice::new(Duration::ZERO));
        let f = FaultDevice::new(Arc::clone(&inner) as Arc<dyn LogDevice>);
        (inner, f)
    }

    #[test]
    fn passthrough_until_armed() {
        let (_, f) = dev();
        f.append(b"hello ").unwrap();
        f.write_vectored(&[b"wo", b"rld"]).unwrap();
        f.sync().unwrap();
        assert_eq!(f.len(), 11);
        assert_eq!(f.snapshot().unwrap(), b"hello world");
        assert_eq!(f.dropped_writes(), 0);
    }

    #[test]
    fn torn_write_keeps_prefix_then_goes_dark() {
        let (inner, f) = dev();
        f.append(b"abcdef").unwrap();
        f.arm_torn_write(4);
        f.write_vectored(&[b"ghi", b"jkl"]).unwrap(); // lands "ghij"
        assert!(f.is_frozen());
        f.append(b"never").unwrap(); // dropped
        f.sync().unwrap(); // lies
        assert_eq!(inner.contents(), b"abcdefghij");
        assert_eq!(f.dropped_writes(), 2);
    }

    #[test]
    fn tear_larger_than_write_still_freezes() {
        let (inner, f) = dev();
        f.arm_torn_write(1000);
        f.append(b"all of it").unwrap();
        assert!(f.is_frozen());
        assert_eq!(inner.contents(), b"all of it");
    }

    #[test]
    fn stuck_truncation_recycles_nothing() {
        use aether_core::partition::{MemSegmentFactory, SegmentedDevice};
        let seg = Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 4096).unwrap());
        let f = FaultDevice::new(Arc::clone(&seg) as Arc<dyn LogDevice>);
        for _ in 0..8 {
            f.append(&[7u8; 4096]).unwrap();
        }
        f.set_truncate_stuck(true);
        assert_eq!(f.truncate_before(Lsn(2 * 4096)).unwrap(), 0);
        assert_eq!(f.low_water(), Lsn::ZERO);
        f.set_truncate_stuck(false);
        assert!(f.truncate_before(Lsn(2 * 4096)).unwrap() > 0);
    }

    #[test]
    fn enospc_truncation_surfaces_typed_error() {
        use aether_core::partition::{MemSegmentFactory, SegmentedDevice};
        let seg = Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 4096).unwrap());
        let f = FaultDevice::new(Arc::clone(&seg) as Arc<dyn LogDevice>);
        for _ in 0..4 {
            f.append(&[7u8; 4096]).unwrap();
        }
        f.set_truncate_enospc(true);
        assert!(matches!(
            f.truncate_before(Lsn(4096)),
            Err(aether_core::AetherError::DiskFull)
        ));
        assert_eq!(f.low_water(), Lsn::ZERO, "nothing dropped on failure");
        f.set_truncate_enospc(false);
        assert!(f.truncate_before(Lsn(4096)).unwrap() > 0);
    }

    #[test]
    fn sync_blips_are_transient_and_bounded() {
        let (_, f) = dev();
        f.append(b"x").unwrap();
        f.fail_syncs(2);
        let e = f.sync().unwrap_err();
        assert!(e.is_transient(), "injected blip must classify transient");
        assert!(f.sync().is_err());
        f.sync().unwrap();
    }
}
