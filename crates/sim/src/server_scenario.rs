//! The wire server under the simulated runtime: one seed, one server, a
//! fleet of deterministic client actors.
//!
//! [`run_server_seed`] boots a `Db` *and* an `aether-server` connection
//! loop entirely under [`Runtime::sim`] — IO thread, per-connection
//! executors, flush daemon, and every client all scheduled by the seeded
//! cooperative scheduler over `chan_pair` byte-channel transports, so chunk delivery
//! order is scheduler order, which is seed order. The run checks the
//! server-level invariants from DESIGN.md:
//!
//! * **Per-connection response ordering** (inv. 10): responses arrive in
//!   request order — `Client::call` hard-fails on any id mismatch.
//! * **Commit-ack durability** (inv. 10): a `Committed` token is only ever
//!   produced by the durability callback, and tokens never regress within
//!   a connection.
//! * **Read-your-writes**: a read at `at_least = token` immediately after
//!   that token's commit must observe the committed value, through
//!   whatever routing the engine uses.
//!
//! The returned [`ServerSimReport::history`] is the reproducibility
//! witness: same seed ⇒ same `(hash, events)` ⇒ same state checksum.

use crate::plan::SeedRng;
use aether_core::runtime::Runtime;
use aether_core::LogConfig;
use aether_server::protocol::{Request, Response};
use aether_server::{Client, Engine, Server, ServerConfig};
use aether_storage::{CommitProtocol, Db, DbOptions};
use std::sync::Arc;

/// Outcome of one simulated server run.
#[derive(Debug)]
pub struct ServerSimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Commits acknowledged across all client actors.
    pub acked: u64,
    /// `(hash, events)` of the scheduler history.
    pub history: (u64, u64),
    /// Checksum over the final table contents (replayable witness of the
    /// converged state).
    pub state: u64,
    /// Invariant violations ("" ⇒ pass).
    pub violations: Vec<String>,
}

impl ServerSimReport {
    /// True when the run satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Keys 0..32 are private (8 per connection — read-your-writes value
/// equality is checkable there); 32..40 are a shared hot zone where
/// connections fight over locks and only freshness is checkable.
const KEYS: u64 = 40;
const PRIVATE: u64 = 8;
const HOT_BASE: u64 = 32;
const RECORD: usize = 16;

fn value_of(conn: u64, op: u64) -> Vec<u8> {
    let mut v = vec![0u8; RECORD];
    v[..8].copy_from_slice(&conn.to_le_bytes());
    v[8..16].copy_from_slice(&op.to_le_bytes());
    v
}

/// Run one seeded server scenario to completion.
pub fn run_server_seed(seed: u64) -> ServerSimReport {
    let mut rng = SeedRng::new(seed.rotate_left(17));
    let protocol = match rng.below(4) {
        0 => CommitProtocol::Baseline,
        1 => CommitProtocol::Elr,
        2 => CommitProtocol::AsyncCommit,
        _ => CommitProtocol::Pipelined,
    };
    let conns = 2 + rng.below(3); // 2..=4 client actors
    let ops = 6 + rng.below(12); // 6..=17 ops each
    let interactive_bias = rng.below(3); // how often ops use begin/commit

    let rt = Runtime::sim(seed);
    let guard = rt.enter();

    let db = Db::open(DbOptions {
        protocol,
        log_config: LogConfig::default().with_runtime(rt.clone()),
        ..DbOptions::default()
    });
    let table = db.create_table(RECORD, KEYS);
    for k in 0..KEYS {
        db.load(table, k, &[0u8; RECORD]).unwrap();
    }
    db.setup_complete();

    let server = Server::start(
        Engine::primary(Arc::clone(&db)),
        ServerConfig {
            runtime: rt.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("in-process server start");

    let mut workers = Vec::new();
    for conn in 0..conns {
        let mut client = Client::new(Box::new(server.connect_chan()));
        let mut rng = SeedRng::new(seed ^ (conn + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
        workers.push(rt.spawn(&format!("sim-client-{conn}"), move || {
            let mut acked = 0u64;
            let mut last_token = 0u64;
            let mut violations = Vec::new();
            for op in 0..ops {
                let hot = rng.below(4) == 0;
                let key = if hot {
                    HOT_BASE + rng.below(KEYS - HOT_BASE)
                } else {
                    conn * PRIVATE + rng.below(PRIVATE)
                };
                let value = value_of(conn, op);
                // Interactive transaction or auto-commit, seed's choice.
                let token = if rng.below(3) <= interactive_bias {
                    let txn = match client.call(&Request::Begin) {
                        Ok(Response::Begun { txn }) => txn,
                        other => {
                            violations.push(format!("conn {conn} op {op}: begin → {other:?}"));
                            continue;
                        }
                    };
                    match client.call(&Request::Update {
                        txn,
                        table,
                        key,
                        value: value.clone(),
                    }) {
                        Ok(Response::UpdateOk) => {}
                        other => {
                            violations.push(format!("conn {conn} op {op}: update → {other:?}"));
                            let _ = client.call(&Request::Abort { txn });
                            continue;
                        }
                    }
                    match client.call(&Request::Commit { txn }) {
                        Ok(Response::Committed { token }) => token,
                        other => {
                            violations.push(format!("conn {conn} op {op}: commit → {other:?}"));
                            continue;
                        }
                    }
                } else {
                    match client.call(&Request::Update {
                        txn: 0,
                        table,
                        key,
                        value: value.clone(),
                    }) {
                        Ok(Response::Committed { token }) => token,
                        other => {
                            violations.push(format!("conn {conn} op {op}: autocommit → {other:?}"));
                            continue;
                        }
                    }
                };
                acked += 1;
                if token < last_token {
                    violations.push(format!(
                        "conn {conn} op {op}: token regressed {token} < {last_token}"
                    ));
                }
                last_token = token;
                // Read-your-writes at the token's freshness floor. On a
                // private key the exact value must come back; on a hot key
                // a later writer may have won, but the serving snapshot
                // must still honor the floor.
                match client.call(&Request::Read {
                    table,
                    key,
                    at_least: token,
                }) {
                    Ok(Response::Value {
                        present,
                        applied,
                        value: v,
                        ..
                    }) => {
                        if !present {
                            violations.push(format!("conn {conn} op {op}: key {key} vanished"));
                        } else if applied < token {
                            violations.push(format!(
                                "conn {conn} op {op}: freshness floor ignored \
                                 ({applied} < {token})"
                            ));
                        } else if !hot && v != value {
                            violations.push(format!(
                                "conn {conn} op {op}: read-your-writes lost key {key}"
                            ));
                        }
                    }
                    other => {
                        violations.push(format!("conn {conn} op {op}: read → {other:?}"));
                    }
                }
            }
            client.close();
            (acked, violations)
        }));
    }

    let mut acked = 0u64;
    let mut violations = Vec::new();
    for w in workers {
        match w.join() {
            Ok((a, v)) => {
                acked += a;
                violations.extend(v);
            }
            Err(_) => violations.push("client actor panicked".into()),
        }
    }
    server.shutdown();
    let _ = db.log().flush_all();

    // State checksum over the converged table (FNV-1a over key/value).
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for k in 0..KEYS {
        if let Ok(Some(v)) = db.snapshot_read(table, k) {
            for b in k.to_le_bytes().iter().chain(v.iter()) {
                state ^= u64::from(*b);
                state = state.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    db.log().shutdown();
    let history = rt.history();
    drop(guard);

    ServerSimReport {
        seed,
        acked,
        history,
        state,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_passes_and_commits() {
        let r = run_server_seed(7);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(r.acked > 0);
        assert!(r.history.1 > 0, "sim history must record events");
    }
}
