//! One seed, one cluster, one verdict.
//!
//! [`run_seed`] decodes a [`FaultPlan`], boots a whole cluster — primary,
//! flush daemon, optional replicas with their shippers and links, worker
//! actors committing counters — entirely under [`Runtime::sim`], drives the
//! planned fault into it, and checks the DESIGN.md invariants that scenario
//! puts at risk:
//!
//! * **Dense stream** (inv. 1): the durable log parses cleanly and every
//!   record starts exactly where the previous one ended.
//! * **Commit safety / zero acked loss** (inv. 4, 6): every commit
//!   acknowledged `Durable` before a fault is present after recovery or on
//!   the promoted replica.
//! * **Recovery convergence** (inv. 5): recovery from a crash image — torn
//!   or clean — succeeds, is deterministic (same image twice ⇒ same state),
//!   and yields a database that accepts new committed work.
//! * **Replication equivalence** (inv. 6): a caught-up replica's state
//!   fingerprint equals the primary's.
//! * **Truncation safety** (inv. 7): a wedged recycler degrades log
//!   boundedness, never correctness.
//!
//! Violations are collected as strings rather than panics so a sweep can
//! report every failing seed instead of dying on the first.

use crate::fault::FaultDevice;
use crate::plan::{Fault, FaultPlan};
use aether_core::device::{LogDevice, SimDevice};
use aether_core::partition::{MemSegmentFactory, SegmentedDevice};
use aether_core::reader::LogReader;
use aether_core::runtime::{self, Runtime};
use aether_core::{BufferKind, LogConfig, TelemetryConfig};
use aether_repl::prelude::*;
use aether_storage::recovery::recover_with_stats;
use aether_storage::replay::{snapshot_read, state_fingerprint};
use aether_storage::{Checkpointer, CommitProtocol, Db, DbOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Outcome of one simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// The decoded scenario.
    pub plan: FaultPlan,
    /// Total commits acknowledged `Durable` across all workers.
    pub acked: u64,
    /// `(hash, events)` of the scheduler history — the reproducibility
    /// witness: rerunning the seed must reproduce it bit-for-bit.
    pub history: (u64, u64),
    /// Invariant violations ("" ⇒ the seed passes).
    pub violations: Vec<String>,
    /// Rendered primary telemetry snapshot (`telemetry>`-prefixed lines),
    /// captured at end of run under the virtual clock. Part of the
    /// determinism contract: same seed ⇒ byte-identical text. Dumped next
    /// to the violations when a seed fails.
    pub telemetry: String,
}

impl SimReport {
    /// True when the run satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Fixed worker record layout: key at `[0..8]`, counter at `[8..16]`.
fn record(key: u64, counter: u64) -> Vec<u8> {
    let mut r = vec![0u8; 40];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..16].copy_from_slice(&counter.to_le_bytes());
    r
}

fn counter_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[8..16].try_into().unwrap())
}

/// Run the scenario for `seed` to completion and report.
pub fn run_seed(seed: u64) -> SimReport {
    let plan = FaultPlan::decode(seed);
    let rt = Runtime::sim(seed);
    let guard = rt.enter();
    let (acked, violations, telemetry) = Scenario::new(&rt, &plan).run();
    let history = rt.history();
    drop(guard);
    SimReport {
        seed,
        plan,
        acked,
        history,
        violations,
        telemetry,
    }
}

/// Everything a running scenario needs in one place.
struct Scenario<'a> {
    rt: &'a Runtime,
    plan: &'a FaultPlan,
    device: Arc<FaultDevice>,
    primary: Arc<Db>,
    violations: Vec<String>,
}

impl<'a> Scenario<'a> {
    fn new(rt: &'a Runtime, plan: &'a FaultPlan) -> Scenario<'a> {
        let inner: Arc<dyn LogDevice> = if plan.segmented {
            Arc::new(SegmentedDevice::new(Box::new(MemSegmentFactory), 16 * 1024).unwrap())
        } else {
            Arc::new(SimDevice::new(Duration::ZERO))
        };
        let device = FaultDevice::new(inner);
        let opts = DbOptions {
            protocol: if plan.elr {
                CommitProtocol::Elr
            } else {
                CommitProtocol::Baseline
            },
            buffer: BufferKind::Hybrid,
            log_config: LogConfig::default()
                .with_buffer_size(1 << 20)
                .with_runtime(rt.clone())
                // Telemetry always on under sim: it costs nothing in
                // virtual time and every invariant failure then comes
                // with a snapshot. Dense sampling (every 8th record)
                // keeps span traces populated at sim-sized workloads.
                .with_telemetry(TelemetryConfig {
                    enabled: true,
                    sample_every: 8,
                    ..TelemetryConfig::default()
                }),
            ..DbOptions::default()
        };
        let primary = Db::open_with_device(opts, Arc::clone(&device) as Arc<dyn LogDevice>);
        // One row per worker plus a marker row (key = plan.workers) the
        // router check commits to — worker counters stay untouched so the
        // recovery-equality invariants keep their exact-value form.
        primary.create_table(40, plan.workers + 1);
        for k in 0..=plan.workers {
            primary.load(0, k, &record(k, 0)).unwrap();
        }
        primary.setup_complete();
        Scenario {
            rt,
            plan,
            device,
            primary,
            violations: Vec::new(),
        }
    }

    fn violate(&mut self, msg: String) {
        self.rt.note(&format!("violation:{msg}"));
        self.violations.push(msg);
    }

    fn run(mut self) -> (u64, Vec<String>, String) {
        let plan = self.plan;
        // Partition switch shared by every replication link (frames and
        // acks): the PartitionThenHeal arm flips it.
        let chaos = LinkChaos::default();
        let cluster = if plan.replicas > 0 {
            let latency = match plan.fault {
                // The latency-spike fault: tens of virtual milliseconds per
                // hop. Free under the virtual clock, brutal for SemiSync.
                Fault::SlowLink => Duration::from_millis(20 + plan.fault_entropy % 30),
                _ => plan.link_latency,
            };
            Some(
                ReplicatedDb::attach(
                    Arc::clone(&self.primary),
                    ReplicationConfig {
                        replicas: plan.replicas,
                        policy: DurabilityPolicy::SemiSync(1),
                        link: LinkConfig {
                            latency,
                            reorder_period: plan.reorder_period,
                            runtime: self.rt.clone(),
                            chaos: chaos.clone(),
                        },
                        ..ReplicationConfig::default()
                    },
                )
                .unwrap(),
            )
        } else {
            None
        };

        // Worker actors: each owns one key and commits an incrementing
        // counter. `submitted` is the value handed to `commit`; `acked` the
        // last value whose commit returned `Durable`.
        let stop = Arc::new(AtomicBool::new(false));
        let submitted: Arc<Vec<AtomicU64>> =
            Arc::new((0..plan.workers).map(|_| AtomicU64::new(0)).collect());
        let acked: Arc<Vec<AtomicU64>> =
            Arc::new((0..plan.workers).map(|_| AtomicU64::new(0)).collect());
        let workers: Vec<_> = (0..plan.workers)
            .map(|k| {
                let db = Arc::clone(&self.primary);
                let stop = Arc::clone(&stop);
                let submitted = Arc::clone(&submitted);
                let acked = Arc::clone(&acked);
                let rt = self.rt.clone();
                self.rt.spawn("sim-worker", move || {
                    let mut v = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        v += 1;
                        let mut txn = db.begin();
                        db.update(&mut txn, 0, k, &record(k, v)).unwrap();
                        submitted[k as usize].store(v, Ordering::SeqCst);
                        if db.commit(txn).unwrap().is_durable_now() {
                            acked[k as usize].store(v, Ordering::SeqCst);
                            rt.note(&format!("ack:{k}:{v}"));
                        }
                        // Pace commits so virtual time moves relative to the
                        // workload (each worker at a slightly different
                        // deterministic rate).
                        runtime::sleep(Duration::from_micros(80 + k * 37));
                    }
                })
            })
            .collect();

        // Trigger: wait (in virtual time) until every worker has made
        // enough progress for the fault to land mid-flight.
        let floor_counts: &Vec<AtomicU64> = if plan.replicas > 0 || !plan.elr {
            &acked
        } else {
            // ELR acks are deliberately decoupled from durability; progress
            // is measured by submissions instead.
            &submitted
        };
        let deadline = runtime::monotonic_ns() + 120_000_000_000; // 120 virtual s
        while floor_counts
            .iter()
            .any(|a| a.load(Ordering::SeqCst) < plan.acks_before_fault)
        {
            if runtime::monotonic_ns() > deadline {
                self.violate("trigger: workload made no progress in 120 virtual s".into());
                break;
            }
            runtime::sleep(Duration::from_millis(1));
        }

        // Inject the planned fault and check its invariants.
        let acked_total = match plan.fault {
            Fault::KillPrimary => {
                self.rt.note("fault:kill-primary");
                let floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                let mut cluster = cluster.expect("KillPrimary requires replicas");
                cluster.kill_primary();
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_failover(cluster, &floor, &submitted);
                floor.iter().sum()
            }
            Fault::TornWrite => {
                self.rt.note("fault:torn-write");
                // Snapshot the floor *before* the device starts lying: those
                // acks were honestly durable and must survive recovery.
                let floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.device.arm_torn_write(plan.fault_entropy % 256);
                // Let the workload run into the dark device for a while.
                runtime::sleep(Duration::from_millis(5));
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_torn_recovery(&floor, &submitted);
                floor.iter().sum()
            }
            Fault::TruncateStuck => {
                self.rt.note("fault:truncate-stuck");
                self.device.set_truncate_stuck(true);
                self.check_stuck_truncation();
                self.device.set_truncate_stuck(false);
                let _ = Checkpointer::checkpoint_once(&self.primary);
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_quiesced(cluster, &submitted);
                acked.iter().map(|a| a.load(Ordering::SeqCst)).sum()
            }
            Fault::LaggingReplica => {
                self.rt.note("fault:lagging-replica");
                let mut cluster = cluster.expect("LaggingReplica requires replicas");
                // The newcomer joins over a crawling link: tens of virtual
                // milliseconds one way while the workers keep committing, so
                // its applied watermark falls ever further behind.
                let lagger = cluster
                    .add_replica_with_link(LinkConfig {
                        latency: Duration::from_millis(40 + plan.fault_entropy % 80),
                        reorder_period: 0,
                        runtime: self.rt.clone(),
                        chaos: LinkChaos::default(),
                    })
                    .unwrap();
                self.check_router(&cluster, Some(lagger));
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_quiesced(Some(cluster), &submitted);
                acked.iter().map(|a| a.load(Ordering::SeqCst)).sum()
            }
            Fault::PartitionThenHeal => {
                self.rt.note("fault:partition-heal");
                let cluster = cluster.expect("PartitionThenHeal requires replicas");
                chaos.cut();
                // Acks already past the cut point drain first; only then is
                // the frozen floor meaningful.
                runtime::sleep(Duration::from_millis(5));
                let floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                runtime::sleep(Duration::from_millis(15));
                let during: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                if during != floor {
                    // SemiSync(1) with every replica unreachable: an ack
                    // here claims replica durability that cannot exist.
                    self.violate(format!(
                        "partition: commits acked with every replica unreachable ({floor:?} -> {during:?})"
                    ));
                }
                chaos.heal();
                // The backlog drains and the workload resumes: every worker
                // must push its acked floor forward.
                let deadline = runtime::monotonic_ns() + 30_000_000_000;
                while acked
                    .iter()
                    .zip(&floor)
                    .any(|(a, &f)| a.load(Ordering::SeqCst) <= f)
                {
                    if runtime::monotonic_ns() > deadline {
                        self.violate(
                            "partition: workload never resumed within 30 virtual s of heal".into(),
                        );
                        break;
                    }
                    runtime::sleep(Duration::from_millis(1));
                }
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_quiesced(Some(cluster), &submitted);
                acked.iter().map(|a| a.load(Ordering::SeqCst)).sum()
            }
            Fault::DiskFullOnTruncate => {
                self.rt.note("fault:disk-full-truncate");
                self.device.set_truncate_enospc(true);
                let lw = self.primary.log().low_water();
                let floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                for round in 0..3 {
                    let out = Checkpointer::checkpoint_once(&self.primary);
                    // The failure is typed and contained: the low-water mark
                    // must not move an inch while the recycler errors.
                    if self.primary.log().low_water() != lw {
                        self.violate(format!(
                            "enospc truncation: low-water moved {:?} -> {:?} on a failing recycler (round {round})",
                            lw,
                            self.primary.log().low_water()
                        ));
                    }
                    if out.segments_recycled != 0 {
                        self.violate(format!(
                            "enospc truncation: {} segments recycled through a DiskFull error",
                            out.segments_recycled
                        ));
                    }
                    runtime::sleep(Duration::from_millis(2));
                }
                if self.primary.log().is_poisoned() {
                    self.violate("enospc truncation: a recycler error poisoned the log".into());
                }
                // Commits must keep flowing under the wedged recycler.
                let deadline = runtime::monotonic_ns() + 30_000_000_000;
                while acked
                    .iter()
                    .zip(&floor)
                    .any(|(a, &f)| a.load(Ordering::SeqCst) <= f)
                {
                    if runtime::monotonic_ns() > deadline {
                        self.violate(
                            "enospc truncation: workload stalled behind a failing recycler".into(),
                        );
                        break;
                    }
                    runtime::sleep(Duration::from_millis(1));
                }
                self.device.set_truncate_enospc(false);
                if Checkpointer::checkpoint_once(&self.primary).device_error {
                    self.violate("enospc truncation: still failing after space returned".into());
                }
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_quiesced(cluster, &submitted);
                acked.iter().map(|a| a.load(Ordering::SeqCst)).sum()
            }
            Fault::CrashDuringRecovery => {
                self.rt.note("fault:crash-during-recovery");
                // Acks after the freeze are lies (the dark device drops the
                // bytes); only the pre-freeze floor is honestly durable.
                let floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.device.freeze();
                runtime::sleep(Duration::from_millis(5));
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_crash_during_recovery(&floor, &submitted);
                floor.iter().sum()
            }
            Fault::TransientSyncError => {
                self.rt.note("fault:transient-sync");
                // A blip burst strictly inside the flush daemon's retry
                // budget: it must be absorbed invisibly.
                let budget = self.primary.options().log_config.flush_retry.max_attempts as u64;
                let blips = 1 + plan.fault_entropy % budget.saturating_sub(1).max(1);
                let floor: Vec<u64> = acked.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.device.fail_syncs(blips);
                let deadline = runtime::monotonic_ns() + 30_000_000_000;
                while acked
                    .iter()
                    .zip(&floor)
                    .any(|(a, &f)| a.load(Ordering::SeqCst) <= f)
                {
                    if runtime::monotonic_ns() > deadline {
                        self.violate(format!(
                            "transient sync: workload stalled after {blips} retryable blips"
                        ));
                        break;
                    }
                    runtime::sleep(Duration::from_millis(1));
                }
                if self.primary.log().is_poisoned() {
                    self.violate(format!(
                        "transient sync: {blips} blips (budget {budget}) poisoned the log"
                    ));
                }
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_quiesced(cluster, &submitted);
                acked.iter().map(|a| a.load(Ordering::SeqCst)).sum()
            }
            Fault::None | Fault::SlowLink => {
                // Replicated fault-free / slow-link runs also exercise the
                // read router's session contract under load.
                if let Some(c) = cluster.as_ref() {
                    self.check_router(c, None);
                }
                stop.store(true, Ordering::SeqCst);
                for w in workers {
                    w.join().unwrap();
                }
                let submitted: Vec<u64> =
                    submitted.iter().map(|a| a.load(Ordering::SeqCst)).collect();
                self.check_quiesced(cluster, &submitted);
                acked.iter().map(|a| a.load(Ordering::SeqCst)).sum()
            }
        };

        // Snapshot the primary's telemetry while still under the virtual
        // clock — counters, histograms, and any live sampled spans. The
        // registry outlives a killed primary (it is all Arc'd atomics), so
        // this works on every fault path.
        let telemetry = self.primary.telemetry_snapshot("sim").render_text();
        (acked_total, self.violations, telemetry)
    }

    // -- Invariant checks ---------------------------------------------------

    /// Router contract under load (inv. 9): commit markers through the
    /// cluster, fold the tokens into a session, and every session read must
    /// come back with an applied watermark at or past the session's — on
    /// whatever source the policy + staleness budget route it to. With a
    /// lagging replica in the set, the lagger must end up quarantined and
    /// receive no reads while it stays quarantined.
    fn check_router(&mut self, cluster: &ReplicatedDb, lagger: Option<usize>) {
        // The policy is part of the decoded scenario: entropy picks one, so
        // the sweep covers all three.
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastLagged,
            RoutingPolicy::FreshnessWeighted,
        ][(self.plan.fault_entropy % 3) as usize];
        let router = cluster.router(RouterConfig {
            policy,
            budget: Duration::from_millis(5),
            quarantine_lag: 512,
            readmit_lag: 256,
            service: Duration::ZERO,
        });
        let session = Session::new();
        let mut marker = 0u64;
        for _ in 0..8 {
            marker += 1;
            self.router_round(cluster, &router, &session, marker);
        }
        let Some(lag) = lagger else { return };
        // The lagger trails the durable frontier by the whole slow-link
        // pipeline; keep committing until quarantine trips (bounded, in
        // virtual time, so a miss is a real bug, not a slow machine).
        let mut rounds = 0;
        while !router.stats().quarantined[lag] {
            if rounds >= 200 {
                self.violate(format!(
                    "router quarantine: lagging replica {lag} never quarantined: {:?}",
                    router.stats()
                ));
                return;
            }
            rounds += 1;
            marker += 1;
            self.router_round(cluster, &router, &session, marker);
        }
        // While quarantined, the lagger must receive no reads.
        let before = router.stats().routed_per_replica[lag];
        for _ in 0..8 {
            marker += 1;
            self.router_round(cluster, &router, &session, marker);
        }
        let st = router.stats();
        if st.quarantined[lag] && st.routed_per_replica[lag] != before {
            self.violate(format!(
                "router quarantine: replica {lag} served {} reads while quarantined",
                st.routed_per_replica[lag] - before
            ));
        }
    }

    /// One router-check round: commit a marker through the cluster, fold
    /// the token into the session, session-read it back, and check the
    /// staleness floor and read-your-writes on whatever source served it.
    fn router_round(
        &mut self,
        cluster: &ReplicatedDb,
        router: &ReadRouter,
        session: &Session,
        marker: u64,
    ) {
        let marker_key = self.plan.workers; // the extra row no worker owns
        let mut txn = self.primary.begin();
        self.primary
            .update(&mut txn, 0, marker_key, &record(marker_key, marker))
            .unwrap();
        let (_, token) = cluster.commit(txn).unwrap();
        session.observe(token);
        let read = router.read_session(session, 0, marker_key).unwrap();
        if read.applied < session.watermark() {
            self.violate(format!(
                "router staleness: session floor {:?}, served applied {:?} from {:?}",
                session.watermark(),
                read.applied,
                read.source
            ));
        }
        let got = read.value.as_deref().map(counter_of).unwrap_or(0);
        if got < marker {
            self.violate(format!(
                "router read-your-writes: wrote marker {marker}, read {got} from {:?}",
                read.source
            ));
        }
        runtime::sleep(Duration::from_micros(300));
    }

    /// Fault-free / slow-link / unstuck-truncation endgame: quiesce, then
    /// check replication equivalence, the dense stream, and clean-crash
    /// recovery equal to the exact committed state.
    fn check_quiesced(&mut self, cluster: Option<ReplicatedDb>, submitted: &[u64]) {
        let _ = self.primary.log().flush_all();
        if let Some(mut cluster) = cluster {
            if !cluster.wait_catchup(Duration::from_secs(30)) {
                self.violate("replication: replica failed to catch up in 30 virtual s".into());
            }
            for (i, st) in cluster.status().iter().enumerate() {
                if st.corrupt_frames != 0 {
                    self.violate(format!(
                        "replication: replica {i} dropped {} frames on a clean link",
                        st.corrupt_frames
                    ));
                }
            }
            let want = state_fingerprint(&self.primary).unwrap();
            for i in 0..cluster.replicas().len() {
                let got = state_fingerprint(&cluster.replica(i).db()).unwrap();
                if got != want {
                    self.violate(format!(
                        "replication equivalence: replica {i} state != primary state"
                    ));
                }
            }
            cluster.shutdown();
        }
        self.check_dense_stream();
        // Clean crash at a quiesced point: recovery must reproduce exactly
        // the submitted counters (every commit completed and was flushed).
        let recovered = match recover_with_stats(self.primary.crash(), self.sim_opts()) {
            Ok((db, _)) => db,
            Err(e) => {
                self.violate(format!("recovery: clean-crash recovery failed: {e:?}"));
                return;
            }
        };
        for (k, &want) in submitted.iter().enumerate() {
            let got = snapshot_read(&recovered, 0, k as u64)
                .unwrap()
                .map(|r| counter_of(&r))
                .unwrap_or(0);
            if got != want {
                self.violate(format!(
                    "durability: key {k} recovered {got}, committed {want}"
                ));
            }
        }
    }

    /// Kill-primary endgame: promote the most-caught-up replica; every
    /// acked commit must be on it, and it must accept new work.
    fn check_failover(&mut self, cluster: ReplicatedDb, floor: &[u64], submitted: &[u64]) {
        let candidate = cluster.most_caught_up();
        let (promoted, _stats) = match cluster.promote(candidate) {
            Ok(p) => p,
            Err(e) => {
                self.violate(format!("failover: promotion failed: {e:?}"));
                return;
            }
        };
        for (k, (&a, &s)) in floor.iter().zip(submitted).enumerate() {
            let got = snapshot_read(&promoted, 0, k as u64)
                .unwrap()
                .map(|r| counter_of(&r))
                .unwrap_or(0);
            if got < a {
                self.violate(format!(
                    "zero acked loss: key {k} promoted with {got}, acked floor {a}"
                ));
            }
            if got > s {
                self.violate(format!(
                    "phantom commit: key {k} promoted with {got}, never submitted past {s}"
                ));
            }
        }
        // The promoted replica is a full primary.
        let mut txn = promoted.begin();
        promoted
            .update(&mut txn, 0, 0, &record(0, u64::MAX))
            .unwrap();
        if promoted.commit(txn).is_err() {
            self.violate("failover: promoted replica rejected new work".into());
        }
    }

    /// Torn-write endgame: recover from the torn image; the pre-tear acked
    /// floor must survive, recovery must be deterministic, and the
    /// recovered database must accept new committed work.
    fn check_torn_recovery(&mut self, floor: &[u64], submitted: &[u64]) {
        let image = self.primary.crash();
        let (r1, stats) = match recover_with_stats(image, self.sim_opts()) {
            Ok(r) => r,
            Err(e) => {
                self.violate(format!("recovery: torn-image recovery failed: {e:?}"));
                return;
            }
        };
        let (r2, stats2) = recover_with_stats(self.primary.crash(), self.sim_opts())
            .expect("second recovery of the same image");
        if state_fingerprint(&r1).unwrap() != state_fingerprint(&r2).unwrap() {
            self.violate("recovery convergence: same torn image recovered to two states".into());
        }
        if stats != stats2 {
            self.violate(format!(
                "recovery convergence: same torn image, different recovery paths: {stats:?} vs {stats2:?}"
            ));
        }
        for (k, (&a, &s)) in floor.iter().zip(submitted).enumerate() {
            let got = snapshot_read(&r1, 0, k as u64)
                .unwrap()
                .map(|r| counter_of(&r))
                .unwrap_or(0);
            if got < a {
                self.violate(format!(
                    "torn durability: key {k} recovered {got}, pre-tear acked floor {a}"
                ));
            }
            if got > s {
                self.violate(format!(
                    "torn phantom: key {k} recovered {got}, never submitted past {s}"
                ));
            }
        }
        let mut txn = r1.begin();
        r1.update(&mut txn, 0, 0, &record(0, u64::MAX)).unwrap();
        if r1.commit(txn).is_err() {
            self.violate("recovery: recovered database rejected new work".into());
        }
    }

    /// Crash-during-recovery endgame: recover once (writing CLRs for the
    /// losers), then power-cut *again* at a byte boundary inside the
    /// recovery-written log suffix — entropy picks the cut, so the sweep
    /// covers every stage from "no CLR survived" through mid-undo tears to
    /// "all of recovery durable". The second recovery must succeed, be
    /// deterministic, and converge to the same winners-only state (CLR redo
    /// is idempotent); the pre-crash acked floor survives both crashes.
    fn check_crash_during_recovery(&mut self, floor: &[u64], submitted: &[u64]) {
        let base_len = self.primary.crash().log_bytes.len();
        let (r1, stats1) = match recover_with_stats(self.primary.crash(), self.sim_opts()) {
            Ok(r) => r,
            Err(e) => {
                self.violate(format!("recovery: first recovery failed: {e:?}"));
                return;
            }
        };
        let want = state_fingerprint(&r1).unwrap();
        // The recovery-written suffix: CLRs and abort markers appended past
        // the crash image's valid prefix (flushed by recovery's wrap-up).
        let full_len = r1.crash().log_bytes.len();
        let recovery_bytes = full_len - base_len;
        let cut = base_len + (self.plan.fault_entropy % (recovery_bytes as u64 + 1)) as usize;
        let img_at_cut = || {
            let mut img = r1.crash();
            img.log_bytes.truncate(cut);
            img
        };
        let (r2a, stats2a) = match recover_with_stats(img_at_cut(), self.sim_opts()) {
            Ok(r) => r,
            Err(e) => {
                self.violate(format!(
                    "recovery: crash at byte {cut}/{full_len} of the recovering log is unrecoverable: {e:?}"
                ));
                return;
            }
        };
        let (r2b, stats2b) = recover_with_stats(img_at_cut(), self.sim_opts())
            .expect("second recovery of the same cut image");
        if state_fingerprint(&r2a).unwrap() != state_fingerprint(&r2b).unwrap()
            || stats2a != stats2b
        {
            self.violate(format!(
                "recovery convergence: crash at byte {cut} recovered nondeterministically: {stats2a:?} vs {stats2b:?}"
            ));
        }
        if state_fingerprint(&r2a).unwrap() != want {
            self.violate(format!(
                "recovery convergence: crash at byte {cut}/{full_len} (losers {}, CLRs {}) landed off the winners-only state",
                stats1.losers, stats1.clrs_written
            ));
        }
        for (k, (&a, &s)) in floor.iter().zip(submitted).enumerate() {
            let got = snapshot_read(&r2a, 0, k as u64)
                .unwrap()
                .map(|r| counter_of(&r))
                .unwrap_or(0);
            if got < a {
                self.violate(format!(
                    "double-crash durability: key {k} recovered {got}, acked floor {a}"
                ));
            }
            if got > s {
                self.violate(format!(
                    "double-crash phantom: key {k} recovered {got}, never submitted past {s}"
                ));
            }
        }
        let mut txn = r2a.begin();
        r2a.update(&mut txn, 0, 0, &record(0, u64::MAX)).unwrap();
        if r2a.commit(txn).is_err() {
            self.violate("recovery: twice-recovered database rejected new work".into());
        }
    }

    /// With the recycler wedged, checkpoints keep succeeding and the
    /// truncation point never outruns the published redo low-water mark;
    /// the log simply stops shrinking.
    fn check_stuck_truncation(&mut self) {
        for round in 0..3 {
            let out = Checkpointer::checkpoint_once(&self.primary);
            if out.applied > self.primary.redo_low_water() {
                self.violate(format!(
                    "truncation safety: applied {:?} outran redo low-water {:?} (round {round})",
                    out.applied,
                    self.primary.redo_low_water()
                ));
            }
            runtime::sleep(Duration::from_millis(2));
        }
        if self.primary.log().truncation_stats().segments_recycled > 0 {
            self.violate("truncation: wedged device still reported recycled segments".into());
        }
    }

    /// Dense-stream check over the primary's durable log: records parse
    /// cleanly from the low-water mark and each starts where the previous
    /// ended.
    fn check_dense_stream(&mut self) {
        let device = Arc::clone(self.primary.log().device());
        let mut prev_end = device.low_water();
        let mut reader = LogReader::from_lsn(device, prev_end);
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => {
                    if rec.lsn != prev_end {
                        self.violate(format!(
                            "dense stream: record at {:?} follows end {:?}",
                            rec.lsn, prev_end
                        ));
                        return;
                    }
                    prev_end = rec.next_lsn();
                }
                Ok(None) => break,
                Err(e) => {
                    self.violate(format!("dense stream: scan failed at {prev_end:?}: {e:?}"));
                    return;
                }
            }
        }
        let durable = self.primary.log().durable_lsn();
        if prev_end < durable && !self.device.is_frozen() {
            self.violate(format!(
                "dense stream: scan ended at {prev_end:?} short of durable {durable:?}"
            ));
        }
    }

    /// Recovery options: same protocol/buffer as the primary, same sim
    /// runtime (the recovered database's flush daemon must be a sim actor).
    fn sim_opts(&self) -> DbOptions {
        self.primary.options().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lagging-replica fault end to end: the seed passes, the router
    /// actually quarantined the lagger (visible in the telemetry snapshot),
    /// and the run replays byte-identically — router decisions included.
    #[test]
    fn lagging_replica_fault_quarantines_and_replays_identically() {
        let seed = (0..10_000u64)
            .find(|&s| FaultPlan::decode(s).fault == Fault::LaggingReplica)
            .expect("some seed decodes to LaggingReplica");
        let r1 = run_seed(seed);
        assert!(r1.ok(), "seed {seed} violations: {:?}", r1.violations);
        let quarantines = r1
            .telemetry
            .lines()
            .find_map(|l| l.strip_prefix("telemetry> counter router.quarantines="))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|v| v.parse::<u64>().ok())
            .expect("router.quarantines counter in telemetry");
        assert!(
            quarantines >= 1,
            "lagger was never quarantined:\n{}",
            r1.telemetry
        );
        let r2 = run_seed(seed);
        assert_eq!(
            r1.history, r2.history,
            "seed {seed} must replay identically"
        );
        assert_eq!(
            r1.telemetry, r2.telemetry,
            "telemetry must replay identically"
        );
    }
}
