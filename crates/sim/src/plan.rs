//! Seed → scenario decoding.
//!
//! Every simulated run is a pure function of one `u64` seed. The seed feeds
//! two independent consumers:
//!
//! * the scheduler inside [`aether_core::runtime::Runtime::sim`], which
//!   decides the thread interleaving, and
//! * this module, which decodes the *scenario*: cluster shape, link
//!   behavior, and which fault (if any) fires, when, and how hard.
//!
//! Both draw from the same number, so "rerun seed 7213" reproduces not just
//! the interleaving but the whole experiment.

use std::time::Duration;

/// Splitmix64: a tiny, well-distributed PRNG used only for decoding the
/// scenario (never for scheduling — the runtime has its own stream).
#[derive(Debug, Clone)]
pub struct SeedRng(u64);

impl SeedRng {
    /// Derive a scenario stream from `seed`. The constant offsets the
    /// stream away from the scheduler's, so scenario and schedule decisions
    /// are decorrelated even though they share one seed.
    pub fn new(seed: u64) -> SeedRng {
        SeedRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit draw.
    pub fn draw(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.draw() % n.max(1)
    }
}

/// Which single fault this run injects (one per run keeps every failing
/// seed attributable to one mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the run only has to satisfy the steady-state invariants.
    None,
    /// Cut the network and poison the primary's commit gate mid-flight,
    /// then promote the most-caught-up replica. Requires replicas.
    KillPrimary,
    /// The next log-device write lands only a prefix, then the device goes
    /// dark (a torn final write followed by power loss).
    TornWrite,
    /// The log device stops honoring `truncate_before` (segment recycling
    /// wedged, as on a disk-full metadata store). Requires a segmented log.
    TruncateStuck,
    /// A latency spike on the replication links: acks crawl, commits under
    /// SemiSync stall behind them. Virtual time makes this free to run.
    SlowLink,
    /// One extra replica joins over a crawling link and trails the durable
    /// frontier far behind the others. The read router must quarantine it
    /// (no reads served from it) while still honoring every session read's
    /// staleness floor from the healthy replicas or the primary. Requires
    /// replicas.
    LaggingReplica,
    /// Every replication link (frames and acks) partitions at once, then
    /// heals. While cut, SemiSync must hold every commit ack hostage — zero
    /// false acks — and after the heal the backlog drains with nothing
    /// lost. Requires replicas.
    PartitionThenHeal,
    /// Segment recycling fails with a typed `DiskFull` (the recycler itself
    /// hits ENOSPC). Checkpoints must keep succeeding, the low-water mark
    /// must not move, commits must keep flowing, and the log must not
    /// poison; once space returns, truncation resumes. Requires a
    /// segmented log.
    DiskFullOnTruncate,
    /// Power-cut the device, recover, then crash *again* at a recovery
    /// stage boundary (entropy picks whether the first recovery's CLRs were
    /// flushed). The second recovery must be deterministic, converge to the
    /// same state, and redo CLRs idempotently. Runs standalone.
    CrashDuringRecovery,
    /// A burst of transient sync failures, sized under the flush daemon's
    /// retry budget. The daemon must absorb them — workload keeps acking,
    /// the log never poisons — and every ack stays durable.
    TransientSyncError,
}

impl Fault {
    /// Every fault kind, in menu order (sweep histograms iterate this).
    pub const ALL: [Fault; 10] = [
        Fault::None,
        Fault::KillPrimary,
        Fault::TornWrite,
        Fault::TruncateStuck,
        Fault::SlowLink,
        Fault::LaggingReplica,
        Fault::PartitionThenHeal,
        Fault::DiskFullOnTruncate,
        Fault::CrashDuringRecovery,
        Fault::TransientSyncError,
    ];

    /// Stable kebab-case name (sweep reports, `AETHER_SIM_FAULT`).
    pub fn name(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::KillPrimary => "kill-primary",
            Fault::TornWrite => "torn-write",
            Fault::TruncateStuck => "truncate-stuck",
            Fault::SlowLink => "slow-link",
            Fault::LaggingReplica => "lagging-replica",
            Fault::PartitionThenHeal => "partition-then-heal",
            Fault::DiskFullOnTruncate => "disk-full-truncate",
            Fault::CrashDuringRecovery => "crash-during-recovery",
            Fault::TransientSyncError => "transient-sync",
        }
    }

    /// Inverse of [`Fault::name`].
    pub fn from_name(name: &str) -> Option<Fault> {
        Fault::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Whether the scenario only makes sense with replicas attached.
    pub fn needs_replicas(self) -> bool {
        matches!(
            self,
            Fault::KillPrimary | Fault::SlowLink | Fault::LaggingReplica | Fault::PartitionThenHeal
        )
    }
}

/// The fully decoded scenario for one seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed this plan was decoded from.
    pub seed: u64,
    /// Committing worker actors (each owns one key).
    pub workers: u64,
    /// Replicas attached behind the primary (0 = standalone).
    pub replicas: usize,
    /// Use a segmented log device (enables truncation faults) instead of a
    /// plain byte-stream device.
    pub segmented: bool,
    /// Run the ELR commit protocol instead of Baseline.
    pub elr: bool,
    /// One-way frame/ack link latency.
    pub link_latency: Duration,
    /// Reorder period for the frame link (0 = in-order).
    pub reorder_period: usize,
    /// SemiSync-acked commits per worker before the fault trigger fires.
    pub acks_before_fault: u64,
    /// The injected fault.
    pub fault: Fault,
    /// Raw entropy for fault parameters (e.g. how many bytes of the torn
    /// write survive).
    pub fault_entropy: u64,
}

impl FaultPlan {
    /// Decode the scenario for `seed`.
    pub fn decode(seed: u64) -> FaultPlan {
        let mut rng = SeedRng::new(seed);
        let workers = 1 + rng.below(3);
        let mut replicas = rng.below(3) as usize;
        let mut segmented = rng.below(2) == 1;
        // ELR decouples the commit ack from durability, so the acked-floor
        // invariants (which equate "commit returned Durable" with "on disk /
        // on a replica") only run it standalone.
        let mut elr = rng.below(2) == 1 && replicas == 0;
        let link_latency = Duration::from_micros([0, 50, 200, 1_000][rng.below(4) as usize]);
        let reorder_period = rng.below(4) as usize;
        let acks_before_fault = 3 + rng.below(6);
        let fault = match std::env::var("AETHER_SIM_FAULT").ok().as_deref() {
            // Forced fault kind (the sweep's per-fault mode and the chaos
            // CI job): the draw below is skipped entirely, but the shape
            // axes (workers, replicas, links…) still come from the seed.
            // Preconditions are *imposed*, not filtered, so every seed
            // yields a run of the requested kind.
            Some(name) if !name.is_empty() => {
                let f = Fault::from_name(name)
                    .unwrap_or_else(|| panic!("AETHER_SIM_FAULT: unknown fault {name:?}"));
                if f.needs_replicas() && replicas == 0 {
                    replicas = 1;
                }
                if f == Fault::TruncateStuck || f == Fault::DiskFullOnTruncate {
                    segmented = true;
                }
                f
            }
            _ => match rng.below(10) {
                0 => Fault::None,
                1 if replicas > 0 => Fault::KillPrimary,
                2 => Fault::TornWrite,
                3 if segmented => Fault::TruncateStuck,
                4 if replicas > 0 => Fault::SlowLink,
                5 if replicas > 0 => Fault::LaggingReplica,
                6 if replicas > 0 => Fault::PartitionThenHeal,
                7 if segmented => Fault::DiskFullOnTruncate,
                8 => Fault::CrashDuringRecovery,
                9 => Fault::TransientSyncError,
                // Draws whose precondition (replicas, segmentation) failed
                // run the fault-free scenario; the shape axes still vary.
                _ => Fault::None,
            },
        };
        if fault == Fault::TornWrite || fault == Fault::CrashDuringRecovery {
            // A dark device stops acks dead: under SemiSync every commit
            // would hang forever on a replica ack that can never come.
            // These scenarios are about local recovery, so they run
            // standalone.
            replicas = 0;
        }
        if replicas > 0 {
            // Forced-fault mode can raise the replica count after the ELR
            // draw; re-impose the standalone-only rule.
            elr = false;
        }
        FaultPlan {
            seed,
            workers,
            replicas,
            segmented,
            elr,
            link_latency,
            reorder_period,
            acks_before_fault,
            fault,
            fault_entropy: rng.draw(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_is_deterministic() {
        for seed in 0..64 {
            let a = FaultPlan::decode(seed);
            let b = FaultPlan::decode(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn decode_respects_preconditions() {
        for seed in 0..4096 {
            let p = FaultPlan::decode(seed);
            assert!((1..=3).contains(&p.workers));
            assert!(p.replicas <= 2);
            if p.fault.needs_replicas() {
                assert!(p.replicas > 0, "seed {seed}: fault needs replicas");
            }
            if p.fault == Fault::TruncateStuck || p.fault == Fault::DiskFullOnTruncate {
                assert!(p.segmented, "seed {seed}: fault needs a segmented log");
            }
            if p.fault == Fault::TornWrite || p.fault == Fault::CrashDuringRecovery {
                assert_eq!(p.replicas, 0, "seed {seed}: {:?} runs standalone", p.fault);
            }
            if p.elr {
                assert_eq!(p.replicas, 0, "seed {seed}: ELR runs standalone");
            }
        }
    }

    #[test]
    fn fault_menu_is_reachable() {
        let mut seen = [false; Fault::ALL.len()];
        for seed in 0..4096 {
            let f = FaultPlan::decode(seed).fault;
            seen[Fault::ALL.iter().position(|&a| a == f).unwrap()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every fault must be reachable from some seed: {seen:?}"
        );
    }

    #[test]
    fn fault_names_round_trip() {
        for f in Fault::ALL {
            assert_eq!(Fault::from_name(f.name()), Some(f));
        }
        assert_eq!(Fault::from_name("no-such-fault"), None);
    }
}
