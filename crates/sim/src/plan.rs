//! Seed → scenario decoding.
//!
//! Every simulated run is a pure function of one `u64` seed. The seed feeds
//! two independent consumers:
//!
//! * the scheduler inside [`aether_core::runtime::Runtime::sim`], which
//!   decides the thread interleaving, and
//! * this module, which decodes the *scenario*: cluster shape, link
//!   behavior, and which fault (if any) fires, when, and how hard.
//!
//! Both draw from the same number, so "rerun seed 7213" reproduces not just
//! the interleaving but the whole experiment.

use std::time::Duration;

/// Splitmix64: a tiny, well-distributed PRNG used only for decoding the
/// scenario (never for scheduling — the runtime has its own stream).
#[derive(Debug, Clone)]
pub struct SeedRng(u64);

impl SeedRng {
    /// Derive a scenario stream from `seed`. The constant offsets the
    /// stream away from the scheduler's, so scenario and schedule decisions
    /// are decorrelated even though they share one seed.
    pub fn new(seed: u64) -> SeedRng {
        SeedRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit draw.
    pub fn draw(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.draw() % n.max(1)
    }
}

/// Which single fault this run injects (one per run keeps every failing
/// seed attributable to one mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the run only has to satisfy the steady-state invariants.
    None,
    /// Cut the network and poison the primary's commit gate mid-flight,
    /// then promote the most-caught-up replica. Requires replicas.
    KillPrimary,
    /// The next log-device write lands only a prefix, then the device goes
    /// dark (a torn final write followed by power loss).
    TornWrite,
    /// The log device stops honoring `truncate_before` (segment recycling
    /// wedged, as on a disk-full metadata store). Requires a segmented log.
    TruncateStuck,
    /// A latency spike on the replication links: acks crawl, commits under
    /// SemiSync stall behind them. Virtual time makes this free to run.
    SlowLink,
    /// One extra replica joins over a crawling link and trails the durable
    /// frontier far behind the others. The read router must quarantine it
    /// (no reads served from it) while still honoring every session read's
    /// staleness floor from the healthy replicas or the primary. Requires
    /// replicas.
    LaggingReplica,
}

/// The fully decoded scenario for one seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed this plan was decoded from.
    pub seed: u64,
    /// Committing worker actors (each owns one key).
    pub workers: u64,
    /// Replicas attached behind the primary (0 = standalone).
    pub replicas: usize,
    /// Use a segmented log device (enables truncation faults) instead of a
    /// plain byte-stream device.
    pub segmented: bool,
    /// Run the ELR commit protocol instead of Baseline.
    pub elr: bool,
    /// One-way frame/ack link latency.
    pub link_latency: Duration,
    /// Reorder period for the frame link (0 = in-order).
    pub reorder_period: usize,
    /// SemiSync-acked commits per worker before the fault trigger fires.
    pub acks_before_fault: u64,
    /// The injected fault.
    pub fault: Fault,
    /// Raw entropy for fault parameters (e.g. how many bytes of the torn
    /// write survive).
    pub fault_entropy: u64,
}

impl FaultPlan {
    /// Decode the scenario for `seed`.
    pub fn decode(seed: u64) -> FaultPlan {
        let mut rng = SeedRng::new(seed);
        let workers = 1 + rng.below(3);
        let mut replicas = rng.below(3) as usize;
        let segmented = rng.below(2) == 1;
        // ELR decouples the commit ack from durability, so the acked-floor
        // invariants (which equate "commit returned Durable" with "on disk /
        // on a replica") only run it standalone.
        let elr = rng.below(2) == 1 && replicas == 0;
        let link_latency = Duration::from_micros([0, 50, 200, 1_000][rng.below(4) as usize]);
        let reorder_period = rng.below(4) as usize;
        let acks_before_fault = 3 + rng.below(6);
        let fault = match rng.below(6) {
            0 => Fault::None,
            1 if replicas > 0 => Fault::KillPrimary,
            2 => Fault::TornWrite,
            3 if segmented => Fault::TruncateStuck,
            4 if replicas > 0 => Fault::SlowLink,
            5 if replicas > 0 => Fault::LaggingReplica,
            // Draws whose precondition (replicas, segmentation) failed run
            // the fault-free scenario; the shape axes still vary.
            _ => Fault::None,
        };
        if fault == Fault::TornWrite {
            // A dark device stops acks dead: under SemiSync every commit
            // would hang forever on a replica ack that can never come. The
            // torn-write scenario is about local recovery, so it runs
            // standalone.
            replicas = 0;
        }
        FaultPlan {
            seed,
            workers,
            replicas,
            segmented,
            elr,
            link_latency,
            reorder_period,
            acks_before_fault,
            fault,
            fault_entropy: rng.draw(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_is_deterministic() {
        for seed in 0..64 {
            let a = FaultPlan::decode(seed);
            let b = FaultPlan::decode(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn decode_respects_preconditions() {
        for seed in 0..4096 {
            let p = FaultPlan::decode(seed);
            assert!((1..=3).contains(&p.workers));
            assert!(p.replicas <= 2);
            if p.fault == Fault::KillPrimary
                || p.fault == Fault::SlowLink
                || p.fault == Fault::LaggingReplica
            {
                assert!(p.replicas > 0, "seed {seed}: fault needs replicas");
            }
            if p.fault == Fault::TruncateStuck {
                assert!(p.segmented, "seed {seed}: fault needs a segmented log");
            }
            if p.fault == Fault::TornWrite {
                assert_eq!(p.replicas, 0, "seed {seed}: torn writes run standalone");
            }
            if p.elr {
                assert_eq!(p.replicas, 0, "seed {seed}: ELR runs standalone");
            }
        }
    }

    #[test]
    fn fault_menu_is_reachable() {
        let mut seen = [false; 6];
        for seed in 0..4096 {
            seen[match FaultPlan::decode(seed).fault {
                Fault::None => 0,
                Fault::KillPrimary => 1,
                Fault::TornWrite => 2,
                Fault::TruncateStuck => 3,
                Fault::SlowLink => 4,
                Fault::LaggingReplica => 5,
            }] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every fault must be reachable from some seed: {seen:?}"
        );
    }
}
