//! Regression tests for the connection-teardown race (ISSUE 9 satellite):
//! a socket closed mid-pipeline — with requests still queued to the
//! executor and a transaction holding row locks — must have its queued
//! tail drained and its in-flight transactions aborted. Nothing may leak:
//! no lock stays granted, no transaction stays active, and the row is
//! immediately lockable by another connection (the deadlock detector's
//! lock table is the witness).

use aether_core::telemetry::TelemetryConfig;
use aether_core::LogConfig;
use aether_server::protocol::{Request, Response};
use aether_server::{Client, Engine, Server, ServerConfig};
use aether_storage::{CommitProtocol, Db, DbOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn boot() -> (Arc<Db>, u32, Server) {
    let opts = DbOptions {
        protocol: CommitProtocol::Pipelined,
        log_config: LogConfig::default().with_telemetry(TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }),
        ..DbOptions::default()
    };
    let db = Db::open(opts);
    let table = db.create_table(16, 64);
    for k in 0..64u64 {
        db.load(table, k, &[0u8; 16]).unwrap();
    }
    db.setup_complete();
    let server = Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap();
    (db, table, server)
}

fn wait_no_leaks(db: &Arc<Db>) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        db.log().flush_all().unwrap();
        if db.locks().granted_count() == 0 && db.txn_manager().active_count() == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "teardown leaked: {} locks granted, {} txns active",
            db.locks().granted_count(),
            db.txn_manager().active_count()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Close a connection with an open lock-holding transaction *and* a deep
/// queue of unexecuted requests. The executor must drain the queued tail,
/// abort the open transaction, and release every lock.
#[test]
fn close_mid_pipeline_releases_locks() {
    let (db, table, server) = boot();
    let mut client = Client::new(Box::new(server.connect_chan()));

    let txn = match client.call(&Request::Begin).unwrap() {
        Response::Begun { txn } => txn,
        other => panic!("unexpected {other:?}"),
    };
    // Take locks on rows 0..8 within the open transaction.
    for key in 0..8u64 {
        assert_eq!(
            client
                .call(&Request::Update {
                    txn,
                    table,
                    key,
                    value: vec![1u8; 16],
                })
                .unwrap(),
            Response::UpdateOk
        );
    }
    assert!(db.locks().granted_count() >= 8, "locks held");

    // Now pile unread work onto the pipeline — more updates on the open
    // transaction plus auto-commits — and slam the socket shut without
    // reading a single response.
    for key in 8..16u64 {
        client
            .send(&Request::Update {
                txn,
                table,
                key,
                value: vec![2u8; 16],
            })
            .unwrap();
        client
            .send(&Request::Update {
                txn: 0,
                table,
                key: 32 + key,
                value: vec![3u8; 16],
            })
            .unwrap();
    }
    client.close();

    wait_no_leaks(&db);

    // The rows the dead connection locked are immediately writable by a
    // fresh connection — a leaked lock would stall this for the full lock
    // timeout and trip the deadlock detector instead of committing.
    let mut other = Client::new(Box::new(server.connect_chan()));
    for key in 0..16u64 {
        match other
            .call(&Request::Update {
                txn: 0,
                table,
                key,
                value: vec![9u8; 16],
            })
            .unwrap()
        {
            Response::Committed { token } => assert!(token > 0),
            resp => panic!("row {key} not writable after teardown: {resp:?}"),
        }
    }
    other.close();

    // The teardown path was the abort path, not a silent drop: the server
    // counted close-time aborts for the dead connection.
    let snap = db.log().telemetry().snapshot("test");
    let aborts = snap
        .counters
        .iter()
        .find(|c| c.name == "server.close_aborts")
        .map(|c| c.value)
        .unwrap_or(0);
    assert!(aborts >= 1, "close-time abort not accounted: {aborts}");

    server.shutdown();
    wait_no_leaks(&db);
}

/// Server shutdown with connections mid-pipeline: every executor drains
/// and aborts; afterwards the Db is reusable directly with no stuck locks.
#[test]
fn server_shutdown_mid_pipeline_leaves_clean_db() {
    let (db, table, server) = boot();

    let mut clients = Vec::new();
    for c in 0..4usize {
        let mut client = Client::new(Box::new(server.connect_chan()));
        let txn = match client.call(&Request::Begin).unwrap() {
            Response::Begun { txn } => txn,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            client
                .call(&Request::Update {
                    txn,
                    table,
                    key: c as u64,
                    value: vec![c as u8; 16],
                })
                .unwrap(),
            Response::UpdateOk
        );
        // Leave more work queued and the transaction open.
        for i in 0..8u64 {
            client
                .send(&Request::Update {
                    txn,
                    table,
                    key: 16 + c as u64 * 8 + i % 8,
                    value: vec![7u8; 16],
                })
                .unwrap();
        }
        clients.push(client);
    }
    assert!(db.locks().granted_count() >= 4);

    // Shut the server down under the open pipelines.
    server.shutdown();
    wait_no_leaks(&db);
    drop(clients);

    // The Db itself is healthy: direct transactions on the same rows work.
    let mut txn = db.begin();
    db.update(&mut txn, table, 0, &[5u8; 16]).unwrap();
    db.commit(txn).unwrap();
    db.log().flush_all().unwrap();
    assert_eq!(db.locks().granted_count(), 0);
    assert_eq!(db.txn_manager().active_count(), 0);
}

/// Churn: connections repeatedly open transactions, pipeline work, and
/// vanish without ceremony, concurrently. No interleaving may leak.
#[test]
fn churning_abrupt_closes_never_leak() {
    let (db, table, server) = boot();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let server = &server;
            s.spawn(move || {
                for round in 0..8usize {
                    let mut client = Client::new(Box::new(server.connect_chan()));
                    let txn = match client.call(&Request::Begin).unwrap() {
                        Response::Begun { txn } => txn,
                        other => panic!("unexpected {other:?}"),
                    };
                    // Every thread fights over the same 4 rows, so teardown
                    // aborts interleave with live lock waits.
                    let key = (t as u64 + round as u64) % 4;
                    let _ = client.call(&Request::Update {
                        txn,
                        table,
                        key,
                        value: vec![round as u8; 16],
                    });
                    client
                        .send(&Request::Update {
                            txn,
                            table,
                            key: (key + 1) % 4,
                            value: vec![round as u8; 16],
                        })
                        .unwrap();
                    client.close();
                }
            });
        }
    });
    wait_no_leaks(&db);
    server.shutdown();
    wait_no_leaks(&db);
}
