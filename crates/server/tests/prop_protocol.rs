//! Protocol torture (ISSUE 9 satellite): proptest round-trips for every
//! request/response frame with arbitrary payloads, and a corrupt-frame
//! suite — truncations and bit flips at every offset — asserting the
//! decoder rejects damage and the *server* survives it: the connection is
//! dropped cleanly, no panic, no partial transaction left holding locks.

use aether_server::protocol::{extract_request, Extracted, Request, Response, MAX_BODY};
use aether_server::stream::ReadOutcome;
use aether_server::{ByteStream, Client, Engine, Server, ServerConfig};
use aether_storage::{CommitProtocol, Db, DbOptions};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_request(sel: u8, a: u64, b: u64, c: u64, payload: &[u8]) -> Request {
    match sel % 7 {
        0 => Request::Begin,
        1 => Request::Read {
            table: a as u32,
            key: b,
            at_least: c,
        },
        2 => Request::Scan {
            table: a as u32,
            start: b,
            count: c as u32,
        },
        3 => Request::Update {
            txn: a,
            table: b as u32,
            key: c,
            value: payload.to_vec(),
        },
        4 => Request::Commit { txn: a },
        5 => Request::Abort { txn: a },
        _ => Request::Ping,
    }
}

fn arb_response(sel: u8, a: u64, b: u64, payload: &[u8]) -> Response {
    match sel % 8 {
        0 => Response::Begun { txn: a },
        1 => Response::Value {
            present: a & 1 == 1,
            applied: b,
            from_replica: a & 2 == 2,
            value: payload.to_vec(),
        },
        2 => Response::ScanDone {
            found: a as u32,
            checksum: b,
        },
        3 => Response::UpdateOk,
        4 => Response::Committed { token: a },
        5 => Response::Aborted,
        6 => Response::Pong,
        _ => Response::Err {
            code: a as u16,
            msg: String::from_utf8_lossy(payload).into_owned(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for every request kind, any payload.
    #[test]
    fn request_encode_decode_identity(
        sel in 0u8..7,
        req_id in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let req = arb_request(sel, a, b, c, &payload);
        let enc = req.encode(req_id);
        prop_assert_eq!(Request::decode(&enc), Some((req_id, req)));
    }

    /// encode → decode is the identity for every response kind.
    #[test]
    fn response_encode_decode_identity(
        sel in 0u8..8,
        req_id in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let resp = arb_response(sel, a, b, &payload);
        let enc = resp.encode(req_id);
        prop_assert_eq!(Response::decode(&enc), Some((req_id, resp)));
    }

    /// A single bit flip anywhere in the frame is always detected, and any
    /// truncation is never accepted as a complete frame.
    #[test]
    fn bit_flips_and_truncations_never_decode(
        sel in 0u8..7,
        a in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        flip_at_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let req = arb_request(sel, a, a ^ 0xFF, a >> 3, &payload);
        let enc = req.encode(7);

        let at = ((enc.len() as f64 - 1.0) * flip_at_frac) as usize;
        let mut bad = enc.clone();
        bad[at] ^= 1 << flip_bit;
        prop_assert!(bad == enc || Request::decode(&bad).is_none(),
            "flip at {} bit {} went undetected", at, flip_bit);

        let cut = ((enc.len() as f64 - 1.0) * cut_frac) as usize;
        prop_assert_eq!(Request::decode(&enc[..cut]), None);
    }

    /// The streaming extractor classifies any byte-aligned split of a valid
    /// stream as NeedMore/Msg, never Corrupt, and reassembles it exactly.
    #[test]
    fn extractor_reassembles_any_split(
        reqs in proptest::collection::vec(
            (0u8..7, any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)), 1..8),
        split in 1usize..64,
    ) {
        let msgs: Vec<Request> = reqs.iter()
            .map(|(sel, a, p)| arb_request(*sel, *a, a ^ 1, a >> 1, p))
            .collect();
        let mut wire = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            wire.extend_from_slice(&m.encode(i as u64));
        }
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(split) {
            buf.extend_from_slice(chunk);
            loop {
                match extract_request(&mut buf) {
                    Extracted::Msg { req_id, msg } => {
                        prop_assert_eq!(req_id, got.len() as u64);
                        got.push(msg);
                    }
                    Extracted::NeedMore => break,
                    Extracted::Corrupt => prop_assert!(false, "valid stream flagged corrupt"),
                }
            }
        }
        prop_assert!(buf.is_empty());
        prop_assert_eq!(got, msgs);
    }
}

// ---------------------------------------------------------------------------
// Server-level corruption handling
// ---------------------------------------------------------------------------

fn boot() -> (Arc<Db>, u32, Server) {
    let db = Db::open(DbOptions {
        protocol: CommitProtocol::Pipelined,
        ..DbOptions::default()
    });
    let table = db.create_table(16, 32);
    for k in 0..32u64 {
        db.load(table, k, &[3u8; 16]).unwrap();
    }
    db.setup_complete();
    let server = Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap();
    (db, table, server)
}

/// Poll a stream until the server closes it, collecting any bytes it sent
/// first. Panics if the connection stays open past a generous deadline.
fn wait_for_close(stream: &mut dyn ByteStream) -> Vec<u8> {
    let mut scratch = Vec::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match stream.read_some(&mut scratch) {
            Ok(ReadOutcome::Closed) | Err(_) => return scratch,
            Ok(ReadOutcome::Bytes(_)) => {}
            Ok(ReadOutcome::WouldBlock) => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never dropped the connection"
        );
    }
}

/// Wait (bounded) until the server has released every lock and finished
/// every transaction, then assert so.
fn assert_no_leaks(db: &Arc<Db>) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        db.log().flush_all().unwrap();
        if db.locks().granted_count() == 0 && db.txn_manager().active_count() == 0 {
            return;
        }
        if std::time::Instant::now() > deadline {
            panic!(
                "leaked state: {} locks granted, {} txns active",
                db.locks().granted_count(),
                db.txn_manager().active_count()
            );
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

/// A connection that has an open transaction holding row locks, then sends
/// a bit-flipped frame: the server must drop that connection and roll the
/// transaction back — no panic, no lock left behind — while a second
/// connection keeps working and can lock the same row.
#[test]
fn corrupt_frame_drops_connection_and_releases_locks() {
    let (db, table, server) = boot();
    let mut victim = Client::new(Box::new(server.connect_chan()));

    let txn = match victim.call(&Request::Begin).unwrap() {
        Response::Begun { txn } => txn,
        other => panic!("unexpected {other:?}"),
    };
    // X lock on row 5, held (transaction stays open).
    assert_eq!(
        victim
            .call(&Request::Update {
                txn,
                table,
                key: 5,
                value: vec![1u8; 16],
            })
            .unwrap(),
        Response::UpdateOk
    );
    assert!(db.locks().granted_count() > 0, "locks held mid-transaction");

    // Now corrupt the stream: the victim's commit frame with one bit
    // flipped in the body region (the CRC must catch it), pushed raw past
    // the Client's framing layer.
    let mut raw_stream = victim.into_stream();
    let mut bad = Request::Commit { txn }.encode(100);
    let n = bad.len();
    bad[n - 3] ^= 0x08;
    raw_stream.write_all(&bad).unwrap();

    // The server drops the connection without answering.
    let scratch = wait_for_close(raw_stream.as_mut());
    assert!(scratch.is_empty(), "no response precedes the drop");

    // The victim's transaction is rolled back: no locks leak, and another
    // connection can take the same row lock immediately.
    assert_no_leaks(&db);
    let mut other = Client::new(Box::new(server.connect_chan()));
    match other
        .call(&Request::Update {
            txn: 0,
            table,
            key: 5,
            value: vec![2u8; 16],
        })
        .unwrap()
    {
        Response::Committed { token } => assert!(token > 0),
        other => panic!("unexpected {other:?}"),
    }
    other.close();
    server.shutdown();
    assert_no_leaks(&db);
}

/// Truncated frame at connection close: a prefix of a valid frame followed
/// by socket close must not wedge or leak — the half-frame is simply
/// incomplete input, and teardown aborts the open transaction.
#[test]
fn truncated_frame_then_close_leaks_nothing() {
    let (db, table, server) = boot();
    let mut client = Client::new(Box::new(server.connect_chan()));
    let txn = match client.call(&Request::Begin).unwrap() {
        Response::Begun { txn } => txn,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(
        client
            .call(&Request::Update {
                txn,
                table,
                key: 9,
                value: vec![4u8; 16],
            })
            .unwrap(),
        Response::UpdateOk
    );
    let mut stream = client.into_stream();
    let enc = Request::Commit { txn }.encode(55);
    stream.write_all(&enc[..enc.len() / 2]).unwrap();
    stream.close();
    assert_no_leaks(&db);
    server.shutdown();
    assert_no_leaks(&db);
}

/// An oversized length prefix (> MAX_BODY) is corruption on arrival — the
/// server must drop the connection without buffering the claimed body.
#[test]
fn oversized_length_prefix_is_fatal() {
    let (db, _table, server) = boot();
    let mut stream = server.connect_chan();
    let mut bad = Request::Ping.encode(0);
    bad[13..17].copy_from_slice(&(MAX_BODY as u32 + 1).to_le_bytes());
    stream.write_all(&bad).unwrap();
    wait_for_close(&mut stream);
    server.shutdown();
    assert_no_leaks(&db);
}
