//! End-to-end smoke: a server fronting a real Db, exercised over both
//! transports — interactive transactions, auto-commit, scans, errors,
//! read-your-writes tokens.

use aether_core::runtime::Runtime;
use aether_server::protocol::{ErrCode, Request, Response};
use aether_server::{Client, Engine, Server, ServerConfig};
use aether_storage::{CommitProtocol, Db, DbOptions};
use std::sync::Arc;

fn boot(protocol: CommitProtocol) -> (Arc<Db>, u32) {
    let opts = DbOptions {
        protocol,
        ..DbOptions::default()
    };
    let db = Db::open(opts);
    let table = db.create_table(16, 64);
    for k in 0..64u64 {
        db.load(table, k, &[7u8; 16]).unwrap();
    }
    db.setup_complete();
    (db, table)
}

fn run_session(client: &mut Client, table: u32) {
    // Interactive transaction: begin, update, commit.
    let txn = match client.call(&Request::Begin).unwrap() {
        Response::Begun { txn } => txn,
        other => panic!("unexpected {other:?}"),
    };
    let resp = client
        .call(&Request::Update {
            txn,
            table,
            key: 3,
            value: vec![9u8; 16],
        })
        .unwrap();
    assert_eq!(resp, Response::UpdateOk);
    let token = match client.call(&Request::Commit { txn }).unwrap() {
        Response::Committed { token } => token,
        other => panic!("unexpected {other:?}"),
    };
    assert!(token > 0, "non-read-only commit carries a token");

    // Read our own write back, at the committed token's freshness floor.
    match client
        .call(&Request::Read {
            table,
            key: 3,
            at_least: token,
        })
        .unwrap()
    {
        Response::Value { present, value, .. } => {
            assert!(present);
            assert_eq!(value, vec![9u8; 16]);
        }
        other => panic!("unexpected {other:?}"),
    }

    // Auto-commit update acks as a commit.
    match client
        .call(&Request::Update {
            txn: 0,
            table,
            key: 4,
            value: vec![5u8; 16],
        })
        .unwrap()
    {
        Response::Committed { token } => assert!(token > 0),
        other => panic!("unexpected {other:?}"),
    }

    // Scan sees the loaded rows.
    match client
        .call(&Request::Scan {
            table,
            start: 0,
            count: 64,
        })
        .unwrap()
    {
        Response::ScanDone { found, .. } => assert_eq!(found, 64),
        other => panic!("unexpected {other:?}"),
    }

    // Errors are responses, not connection drops.
    match client.call(&Request::Commit { txn: 999_999 }).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, ErrCode::NoSuchTxn as u16),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
}

#[test]
fn chan_transport_full_session() {
    let (db, table) = boot(CommitProtocol::Pipelined);
    let server = Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap();
    let mut client = Client::new(Box::new(server.connect_chan()));
    run_session(&mut client, table);
    client.close();
    server.shutdown();
    db.log().flush_all().unwrap();
    assert_eq!(db.locks().granted_count(), 0);
    assert_eq!(db.txn_manager().active_count(), 0);
}

#[test]
fn tcp_transport_full_session() {
    let (db, table) = boot(CommitProtocol::Elr);
    let cfg = ServerConfig {
        addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServerConfig::default()
    };
    let server = Server::start(Engine::primary(Arc::clone(&db)), cfg).unwrap();
    let addr = server.local_addr().expect("bound");
    let mut client = Client::connect_tcp(addr).unwrap();
    run_session(&mut client, table);
    client.close();
    server.shutdown();
}

#[test]
fn pipelined_window_many_commits_in_flight() {
    let (db, table) = boot(CommitProtocol::Pipelined);
    let server = Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap();
    let mut client = Client::new(Box::new(server.connect_chan()));

    // Fire 32 auto-commit updates without reading a single response, then
    // collect: responses must come back in request order, every one a
    // durable Committed with a non-decreasing token.
    let mut ids = Vec::new();
    for i in 0..32u64 {
        let key = i % 64;
        ids.push(
            client
                .send(&Request::Update {
                    txn: 0,
                    table,
                    key,
                    value: vec![i as u8; 16],
                })
                .unwrap(),
        );
    }
    let mut last_token = 0u64;
    for expect_id in ids {
        let (id, resp) = client.recv().unwrap();
        assert_eq!(id, expect_id, "responses out of order");
        match resp {
            Response::Committed { token } => {
                assert!(token >= last_token, "tokens regressed");
                last_token = token;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // Ordering held while the runtime saw real pipelining; the telemetry
    // batch histogram is checked in the benches, not here (timing-shaped).
    client.close();
    server.shutdown();
    db.log().flush_all().unwrap();
    assert_eq!(db.locks().granted_count(), 0);
    assert_eq!(db.txn_manager().active_count(), 0);
}

#[test]
fn sim_runtime_serves_deterministically() {
    fn run(seed: u64) -> (u64, u64) {
        let rt = Runtime::sim(seed);
        let guard = rt.enter();
        let opts = DbOptions {
            protocol: CommitProtocol::Pipelined,
            log_config: aether_core::LogConfig::default().with_runtime(rt.clone()),
            ..DbOptions::default()
        };
        let db = Db::open(opts);
        let table = db.create_table(16, 32);
        for k in 0..32u64 {
            db.load(table, k, &[1u8; 16]).unwrap();
        }
        db.setup_complete();
        let cfg = ServerConfig {
            runtime: rt.clone(),
            ..ServerConfig::default()
        };
        let server = Server::start(Engine::primary(Arc::clone(&db)), cfg).unwrap();
        // Two concurrent client actors: with a second committer in flight
        // the scheduler has real interleaving choices (group-commit batch
        // cuts, executor turn order), so the seed actually steers the
        // history — a single blocking client's schedule is forced.
        let mut client = Client::new(Box::new(server.connect_chan()));
        let mut side = Client::new(Box::new(server.connect_chan()));
        let side_worker = rt.spawn("sim-side-client", move || {
            for i in 0..20u64 {
                match side
                    .call(&Request::Update {
                        txn: 0,
                        table,
                        key: 16 + i % 16,
                        value: vec![i as u8; 16],
                    })
                    .unwrap()
                {
                    Response::Committed { token } => assert!(token > 0),
                    other => panic!("unexpected {other:?}"),
                }
            }
            side.close();
        });
        for i in 0..20u64 {
            match client
                .call(&Request::Update {
                    txn: 0,
                    table,
                    key: i % 16,
                    value: vec![i as u8; 16],
                })
                .unwrap()
            {
                Response::Committed { token } => rt.note(&format!("commit@{token}")),
                other => panic!("unexpected {other:?}"),
            }
        }
        side_worker.join().unwrap();
        client.close();
        server.shutdown();
        db.log().flush_all().unwrap();
        db.log().shutdown();
        let h = rt.history();
        drop(guard);
        h
    }
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must replay the same history");
    let c = run(43);
    assert_ne!(a, c, "different seed should diverge");
}
