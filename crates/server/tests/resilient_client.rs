//! Exactly-once commit retries (ISSUE 10 tentpole, client half).
//!
//! The dangerous window: a client sends an auto-commit, the commit
//! hardens, and the connection dies before the ack arrives. The client
//! cannot tell "never executed" from "executed, ack lost" — so it retries
//! with the *same* request id, on a *new* connection, and the server's
//! dedup window must answer with the original token instead of applying
//! the write twice.

use aether_server::protocol::{ErrCode, Request, Response};
use aether_server::retry::{retry_id, ResilientClient, RetryPolicy};
use aether_server::{Client, Engine, Server, ServerConfig};
use aether_storage::{CommitProtocol, Db, DbOptions};
use std::sync::Arc;
use std::time::Duration;

const VAL: usize = 16;

fn boot() -> (Arc<Db>, u32) {
    let db = Db::open(DbOptions {
        protocol: CommitProtocol::Pipelined,
        ..DbOptions::default()
    });
    let table = db.create_table(VAL, 64);
    for k in 0..64u64 {
        db.load(table, k, &[0u8; VAL]).unwrap();
    }
    db.setup_complete();
    (db, table)
}

/// The core dedup guarantee, at the wire level: the same nonce-tagged
/// request id re-sent on a *different* connection is answered with the
/// original commit token and executes exactly once.
#[test]
fn duplicate_request_id_on_new_connection_commits_exactly_once() {
    let (db, table) = boot();
    let server = Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap();

    let id = retry_id(0x5e55, 1);
    let req = Request::Update {
        txn: 0,
        table,
        key: 9,
        value: vec![0xabu8; VAL],
    };

    // First attempt on connection A: a real commit.
    let mut a = Client::new(Box::new(server.connect_chan()));
    a.send_with_id(&req, id).unwrap();
    let (rid, resp) = a.recv().unwrap();
    assert_eq!(rid, id);
    let token = match resp {
        Response::Committed { token } => token,
        other => panic!("unexpected {other:?}"),
    };
    let commits_after_first = db.stats().commits();

    // "Ack lost": the client gives up on A and replays the id on B.
    a.close();
    let mut b = Client::new(Box::new(server.connect_chan()));
    for _ in 0..3 {
        b.send_with_id(&req, id).unwrap();
        let (rid, resp) = b.recv().unwrap();
        assert_eq!(rid, id);
        match resp {
            Response::Committed { token: replayed } => {
                assert_eq!(replayed, token, "replay must carry the original token");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(
        db.stats().commits(),
        commits_after_first,
        "duplicates must not re-execute"
    );

    // A zero-nonce id opts out: each send is a fresh commit.
    let plain = Request::Update {
        txn: 0,
        table,
        key: 10,
        value: vec![0xcdu8; VAL],
    };
    let t1 = match b.call(&plain).unwrap() {
        Response::Committed { token } => token,
        other => panic!("unexpected {other:?}"),
    };
    let t2 = match b.call(&plain).unwrap() {
        Response::Committed { token } => token,
        other => panic!("unexpected {other:?}"),
    };
    assert!(t2 > t1, "opted-out duplicates re-execute with fresh tokens");

    b.close();
    server.shutdown();
}

/// A failed execution must *not* poison the dedup window: the id is
/// forgotten, so a retry re-executes rather than replaying the error.
#[test]
fn failed_attempt_is_forgotten_so_retry_reexecutes() {
    let (db, table) = boot();
    let server = Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap();
    let mut c = Client::new(Box::new(server.connect_chan()));

    let id = retry_id(7, 1);
    // First attempt targets a bogus table: typed error, id forgotten.
    let bad = Request::Update {
        txn: 0,
        table: 999,
        key: 1,
        value: vec![1u8; VAL],
    };
    c.send_with_id(&bad, id).unwrap();
    match c.recv().unwrap().1 {
        Response::Err { code, .. } => assert_ne!(code, ErrCode::Busy as u16),
        other => panic!("unexpected {other:?}"),
    }
    // Retry of the same id with a good request must actually execute.
    let good = Request::Update {
        txn: 0,
        table,
        key: 1,
        value: vec![1u8; VAL],
    };
    c.send_with_id(&good, id).unwrap();
    match c.recv().unwrap().1 {
        Response::Committed { token } => assert!(token > 0),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(db.snapshot_read(table, 1).unwrap().unwrap()[0], 1);

    c.close();
    server.shutdown();
}

/// The full client loop: commits keep succeeding across severed
/// connections, every value lands exactly once, and the client reports
/// its reconnects.
#[test]
fn resilient_client_survives_severed_connections() {
    let (db, table) = boot();
    let server =
        Arc::new(Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap());

    let dial = Arc::clone(&server);
    let mut rc = ResilientClient::new(
        0xfeed,
        RetryPolicy {
            request_timeout: Duration::from_secs(5),
            ..RetryPolicy::default()
        },
        move || Ok(Client::new(Box::new(dial.connect_chan()))),
    );

    let mut tokens = Vec::new();
    for k in 0..16u64 {
        tokens.push(rc.commit(table, k, vec![k as u8 + 1; VAL]).unwrap());
        if k % 4 == 3 {
            rc.sever(); // the next operation must transparently re-dial
        }
    }
    assert!(tokens.windows(2).all(|w| w[0] < w[1]));
    assert!(rc.stats().reconnects >= 3, "{:?}", rc.stats());
    for k in 0..16u64 {
        let got = rc.read(table, k).unwrap().expect("present");
        assert_eq!(got[0], k as u8 + 1);
    }

    drop(rc);
    match Arc::try_unwrap(server) {
        Ok(s) => s.shutdown(),
        Err(_) => panic!("server still referenced"),
    }
}
