//! Pipelined-commit correctness under a flush stall (ISSUE 9 satellite).
//!
//! Several connections keep deep windows of auto-commit updates in flight
//! while the primary's log device stops syncing mid-run. The server must
//! keep per-connection response order, must not ack a single commit whose
//! bytes have not reached the (stalled) durable store, and after a crash
//! taken *during* the stall, recovery must reproduce every acked write.

use aether_core::device::LogDevice;
use aether_core::error::Result as CoreResult;
use aether_server::protocol::{Request, Response};
use aether_server::{Client, Engine, Server, ServerConfig};
use aether_storage::replay::state_fingerprint;
use aether_storage::{CommitProtocol, Db, DbOptions};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A log device that models durability honestly: appended bytes sit in a
/// staging area and only become part of the crash snapshot once a `sync`
/// completes — and `sync` can be stalled. While stalled, the flush daemon
/// blocks inside `sync`, so durability callbacks (and therefore `Committed`
/// responses) stop; anything acked anyway would be provably undurable.
struct StallDevice {
    inner: Mutex<StallInner>,
    stalled: AtomicBool,
}

struct StallInner {
    data: Vec<u8>,
    durable_len: usize,
}

impl StallDevice {
    fn new() -> StallDevice {
        StallDevice {
            inner: Mutex::new(StallInner {
                data: Vec::new(),
                durable_len: 0,
            }),
            stalled: AtomicBool::new(false),
        }
    }

    fn set_stalled(&self, on: bool) {
        self.stalled.store(on, Ordering::SeqCst);
    }
}

impl LogDevice for StallDevice {
    fn append(&self, data: &[u8]) -> CoreResult<()> {
        self.inner.lock().data.extend_from_slice(data);
        Ok(())
    }

    fn write_vectored(&self, bufs: &[&[u8]]) -> CoreResult<()> {
        let mut g = self.inner.lock();
        for b in bufs {
            g.data.extend_from_slice(b);
        }
        Ok(())
    }

    fn sync(&self) -> CoreResult<()> {
        while self.stalled.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // A little latency keeps the run flush-bound, so the windows stay
        // deep and the group-commit gate actually batches.
        std::thread::sleep(Duration::from_millis(2));
        let mut g = self.inner.lock();
        g.durable_len = g.data.len();
        Ok(())
    }

    fn read_at(&self, offset: u64, dst: &mut [u8]) -> CoreResult<usize> {
        let g = self.inner.lock();
        if offset >= g.data.len() as u64 {
            return Ok(0);
        }
        let start = offset as usize;
        let n = dst.len().min(g.data.len() - start);
        dst[..n].copy_from_slice(&g.data[start..start + n]);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.inner.lock().data.len() as u64
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        let g = self.inner.lock();
        Some(g.data[..g.durable_len].to_vec())
    }
}

const CONNS: usize = 4;
const OPS: usize = 48;
const WINDOW: usize = 8;
const KEYS_PER_CONN: u64 = 64;

fn record(conn: usize, i: usize) -> Vec<u8> {
    let mut v = vec![0xABu8; 16];
    v[0] = conn as u8;
    v[1] = i as u8;
    v
}

#[test]
fn flush_stall_never_acks_undurable_and_keeps_order() {
    let device = Arc::new(StallDevice::new());
    let opts = DbOptions {
        protocol: CommitProtocol::Pipelined,
        ..DbOptions::default()
    };
    let db = Db::open_with_device(opts, device.clone() as Arc<dyn LogDevice>);
    let table = db.create_table(16, CONNS as u64 * KEYS_PER_CONN);
    for k in 0..CONNS as u64 * KEYS_PER_CONN {
        db.load(table, k, &[0u8; 16]).unwrap();
    }
    db.setup_complete();
    let server = Server::start(Engine::primary(Arc::clone(&db)), ServerConfig::default()).unwrap();

    // key -> value of every commit the server has ACKED so far.
    let acked: Arc<Mutex<HashMap<u64, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));

    let mut workers = Vec::new();
    for conn in 0..CONNS {
        let mut client = Client::new(Box::new(server.connect_chan()));
        let acked = Arc::clone(&acked);
        workers.push(std::thread::spawn(move || {
            let mut pending: HashMap<u64, (u64, Vec<u8>)> = HashMap::new();
            let mut last_id: Option<u64> = None;
            let mut issued = 0usize;
            while issued < OPS || !pending.is_empty() {
                while issued < OPS && pending.len() < WINDOW {
                    let key = conn as u64 * KEYS_PER_CONN + issued as u64;
                    let value = record(conn, issued);
                    let id = client
                        .send(&Request::Update {
                            txn: 0,
                            table,
                            key,
                            value: value.clone(),
                        })
                        .unwrap();
                    pending.insert(id, (key, value));
                    issued += 1;
                }
                let (id, resp) = client.recv().unwrap();
                // Per-connection response ordering: ids strictly ascend,
                // stall or no stall.
                assert!(
                    last_id.is_none_or(|p| id > p),
                    "conn {conn}: response id {id} after {last_id:?}"
                );
                last_id = Some(id);
                let (key, value) = pending.remove(&id).expect("response for unknown id");
                match resp {
                    Response::Committed { token } => {
                        assert!(token > 0);
                        acked.lock().insert(key, value);
                    }
                    other => panic!("conn {conn}: unexpected {other:?}"),
                }
            }
            client.close();
        }));
    }

    // Let the run get going, then stall the flush path mid-run.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while acked.lock().len() < CONNS {
        assert!(std::time::Instant::now() < deadline, "no commits acked");
        std::thread::sleep(Duration::from_millis(1));
    }
    device.set_stalled(true);
    // Quiesce: the one sync already past the stall gate may still complete
    // and ack its batch; after this window nothing else can.
    std::thread::sleep(Duration::from_millis(100));
    let a1 = acked.lock().len();
    std::thread::sleep(Duration::from_millis(100));
    let a2 = acked.lock().len();
    assert_eq!(a1, a2, "commits acked while the log device was stalled");
    assert!(
        a2 < CONNS * OPS,
        "stall landed too late to exercise anything"
    );

    // Crash while stalled: the image holds only synced bytes. Every ack the
    // clients have seen so far must survive recovery.
    let acked_at_crash: HashMap<u64, Vec<u8>> = acked.lock().clone();
    let image = db.crash();
    // A second, independent image (recovery consumes its store).
    let image2 = aether_storage::CrashImage {
        log_start: image.log_start,
        log_bytes: image.log_bytes.clone(),
        store: image.store.deep_clone(),
        schema: image.schema.clone(),
    };

    // Release the stall and drain the run cleanly.
    device.set_stalled(false);
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(acked.lock().len(), CONNS * OPS, "every op eventually acked");
    server.shutdown();
    db.log().flush_all().unwrap();
    assert_eq!(db.locks().granted_count(), 0);
    assert_eq!(db.txn_manager().active_count(), 0);

    // Recover from the mid-stall image.
    let recovered = Db::recover(
        image,
        DbOptions {
            protocol: CommitProtocol::Pipelined,
            ..DbOptions::default()
        },
    )
    .unwrap();
    for (key, value) in &acked_at_crash {
        let got = recovered.snapshot_read(table, *key).unwrap();
        assert_eq!(
            got.as_ref(),
            Some(value),
            "acked commit for key {key} missing after recovery — undurable ack"
        );
    }

    // Recovery is a pure function of the image: a second recovery lands on
    // the same state fingerprint.
    let recovered2 = Db::recover(
        image2,
        DbOptions {
            protocol: CommitProtocol::Pipelined,
            ..DbOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        state_fingerprint(&recovered).unwrap(),
        state_fingerprint(&recovered2).unwrap()
    );
}
