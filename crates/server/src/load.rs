//! Closed- and open-loop load generation against a wire server.
//!
//! Closed loop: each connection keeps a fixed window of requests in flight
//! (window 1 = the classic 1-op-per-round-trip client; window W > 1 =
//! pipelining, which is what lets the group-commit gate complete many of a
//! connection's commits off one flush). Open loop: requests depart on a
//! fixed arrival schedule regardless of completions, and latency is
//! measured from the *intended* arrival time, so a stalled server charges
//! its queueing delay honestly (no coordinated omission).
//!
//! Latencies are recorded per completed op in nanoseconds and summarized
//! as p50/p99/p999 — the latency-under-load numbers the figure bins emit.

use crate::client::Client;
use crate::protocol::{Request, Response};
use aether_core::runtime::{monotonic_ns, Runtime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// How a connection paces its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Keep `window` requests in flight; issue the next op the moment a
    /// response frees a slot.
    Closed {
        /// In-flight window (1 = serial round trips).
        window: usize,
    },
    /// Issue one op every `interval`, regardless of completions.
    Open {
        /// Arrival interval.
        interval: Duration,
    },
}

/// Relative op frequencies (need not sum to anything in particular).
#[derive(Debug, Clone, Copy)]
pub struct Mix {
    /// Snapshot reads.
    pub read: u32,
    /// Auto-commit updates (each one is a commit through the gate).
    pub update: u32,
    /// Analytical scans of `scan_len` keys.
    pub scan: u32,
}

/// One load run's shape.
pub struct LoadSpec {
    /// Concurrent connections.
    pub conns: usize,
    /// Ops issued per connection.
    pub ops_per_conn: usize,
    /// Pacing discipline.
    pub pacing: Pacing,
    /// Op mix.
    pub mix: Mix,
    /// Table to hit.
    pub table: u32,
    /// Record size of that table (updates must match it).
    pub value_len: usize,
    /// Keys per scan op.
    pub scan_len: u32,
    /// Key-space size (keys are `0..keys`).
    pub keys: u64,
    /// Key distribution: maps a uniform u64 draw to a key. Workload zoos
    /// plug zipf samplers in here.
    pub key_of: Arc<dyn Fn(&mut StdRng) -> u64 + Send + Sync>,
    /// RNG seed (per-connection streams derive from it).
    pub seed: u64,
}

/// Latency summary in nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Completed-op count the percentiles are over.
    pub count: u64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

/// Aggregate result of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Ops completed (responses received, including errors).
    pub ops: u64,
    /// Reads completed.
    pub reads: u64,
    /// Commits acked (auto-commit updates).
    pub commits: u64,
    /// Scans completed.
    pub scans: u64,
    /// Error responses.
    pub errors: u64,
    /// Wall-clock (or virtual, under sim) duration in nanoseconds.
    pub elapsed_ns: u64,
    /// Latency distribution over every completed op.
    pub latency: LatencySummary,
}

impl LoadReport {
    fn per_s(&self, n: u64) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        n as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Total throughput, ops/s.
    pub fn ops_per_s(&self) -> f64 {
        self.per_s(self.ops)
    }

    /// Read throughput, reads/s.
    pub fn reads_per_s(&self) -> f64 {
        self.per_s(self.reads)
    }

    /// Commit throughput, commits/s.
    pub fn commits_per_s(&self) -> f64 {
        self.per_s(self.commits)
    }
}

/// Summarize a set of per-op latencies.
pub fn summarize(mut lat: Vec<u64>) -> LatencySummary {
    if lat.is_empty() {
        return LatencySummary::default();
    }
    lat.sort_unstable();
    let q = |p: f64| {
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx.min(lat.len() - 1)]
    };
    LatencySummary {
        count: lat.len() as u64,
        p50_ns: q(0.50),
        p99_ns: q(0.99),
        p999_ns: q(0.999),
        max_ns: *lat.last().expect("non-empty"),
    }
}

struct WorkerResult {
    reads: u64,
    commits: u64,
    scans: u64,
    errors: u64,
    lat: Vec<u64>,
}

/// Run `spec` against a server, one worker thread per connection, all
/// spawned through `rt` (so a sim run is deterministic). `connect` opens
/// connection `i`.
pub fn run_load<C>(rt: &Runtime, spec: &LoadSpec, connect: C) -> io::Result<LoadReport>
where
    C: Fn(usize) -> io::Result<Client>,
{
    let t_start = monotonic_ns();
    let mut handles = Vec::with_capacity(spec.conns);
    for i in 0..spec.conns {
        let client = connect(i)?;
        let ops = spec.ops_per_conn;
        let pacing = spec.pacing;
        let mix = spec.mix;
        let table = spec.table;
        let value_len = spec.value_len;
        let scan_len = spec.scan_len;
        let keys = spec.keys;
        let key_of = Arc::clone(&spec.key_of);
        let seed = spec.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        handles.push(rt.spawn(&format!("load-{i}"), move || {
            worker(
                client, ops, pacing, mix, table, value_len, scan_len, keys, key_of, seed,
            )
        }));
    }
    let mut report = LoadReport::default();
    let mut lat = Vec::new();
    for h in handles {
        let w = h
            .join()
            .map_err(|_| io::Error::other("load worker panicked"))??;
        report.reads += w.reads;
        report.commits += w.commits;
        report.scans += w.scans;
        report.errors += w.errors;
        lat.extend(w.lat);
    }
    report.ops = lat.len() as u64;
    report.elapsed_ns = monotonic_ns().saturating_sub(t_start);
    report.latency = summarize(lat);
    Ok(report)
}

#[allow(clippy::too_many_arguments)]
fn worker(
    mut client: Client,
    ops: usize,
    pacing: Pacing,
    mix: Mix,
    table: u32,
    value_len: usize,
    scan_len: u32,
    keys: u64,
    key_of: Arc<dyn Fn(&mut StdRng) -> u64 + Send + Sync>,
    seed: u64,
) -> io::Result<WorkerResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut res = WorkerResult {
        reads: 0,
        commits: 0,
        scans: 0,
        errors: 0,
        lat: Vec::with_capacity(ops),
    };
    // Read-your-writes floor: the largest commit token this connection has
    // been acked with so far.
    let mut token = 0u64;
    let mut in_flight: HashMap<u64, u64> = HashMap::new(); // req_id -> t0
    let total_w = (mix.read + mix.update + mix.scan).max(1);

    let next_op = |rng: &mut StdRng, token: u64| -> Request {
        let r = rng.gen_range(0..total_w);
        if r < mix.read {
            Request::Read {
                table,
                key: key_of(rng),
                at_least: token,
            }
        } else if r < mix.read + mix.update {
            let mut value = vec![0u8; value_len];
            for b in value.iter_mut() {
                *b = rng.gen();
            }
            Request::Update {
                txn: 0,
                table,
                key: key_of(rng),
                value,
            }
        } else {
            let span = u64::from(scan_len).min(keys.max(1));
            let start = rng.gen_range(0..keys.saturating_sub(span).max(1));
            Request::Scan {
                table,
                start,
                count: scan_len,
            }
        }
    };

    let absorb = |resp: Response, res: &mut WorkerResult, token: &mut u64| {
        match resp {
            Response::Value { .. } => res.reads += 1,
            Response::Committed { token: t } => {
                res.commits += 1;
                *token = (*token).max(t);
            }
            Response::ScanDone { .. } => res.scans += 1,
            Response::Err { .. } => res.errors += 1,
            _ => {}
        };
    };

    match pacing {
        Pacing::Closed { window } => {
            let window = window.max(1);
            let mut issued = 0usize;
            while issued < ops || !in_flight.is_empty() {
                while issued < ops && in_flight.len() < window {
                    let req = next_op(&mut rng, token);
                    let t0 = monotonic_ns();
                    let id = client.send(&req)?;
                    in_flight.insert(id, t0);
                    issued += 1;
                }
                let (id, resp) = client.recv()?;
                if let Some(t0) = in_flight.remove(&id) {
                    res.lat.push(monotonic_ns().saturating_sub(t0));
                }
                absorb(resp, &mut res, &mut token);
            }
        }
        Pacing::Open { interval } => {
            let interval_ns = u64::try_from(interval.as_nanos()).unwrap_or(u64::MAX);
            let mut next_t = monotonic_ns();
            for _ in 0..ops {
                let now = monotonic_ns();
                if next_t > now {
                    aether_core::runtime::sleep(Duration::from_nanos(next_t - now));
                }
                let req = next_op(&mut rng, token);
                let id = client.send(&req)?;
                // Latency from the intended departure time: queueing the
                // schedule slipped is the server's fault, and it counts.
                in_flight.insert(id, next_t);
                next_t = next_t.saturating_add(interval_ns);
                while let Some((id, resp)) = client.try_recv()? {
                    if let Some(t0) = in_flight.remove(&id) {
                        res.lat.push(monotonic_ns().saturating_sub(t0));
                    }
                    absorb(resp, &mut res, &mut token);
                }
            }
            while !in_flight.is_empty() {
                let (id, resp) = client.recv()?;
                if let Some(t0) = in_flight.remove(&id) {
                    res.lat.push(monotonic_ns().saturating_sub(t0));
                }
                absorb(resp, &mut res, &mut token);
            }
        }
    }
    client.close();
    Ok(res)
}
