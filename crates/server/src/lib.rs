//! # aether-server — the wire front-end
//!
//! Everything below this crate runs in-process; this crate puts Aether on
//! a socket. The pieces, bottom-up:
//!
//! * [`protocol`] — length-prefixed, CRC32-framed request/response
//!   messages (begin / read / update / commit / abort, plus scan and
//!   ping), following the framing idiom of `aether-repl::frame`. A corrupt
//!   frame kills the connection; it never kills the server or strands a
//!   lock.
//! * [`stream`] — the transport seam: nonblocking TCP for real serving,
//!   an `rt_channel`-backed in-process pipe for tests and deterministic
//!   sim runs.
//! * [`server`] — one IO thread polling every connection plus one
//!   executor actor per connection, with a strictly-ordered response
//!   queue. Commit responses are produced by durability callbacks, so a
//!   pipelined connection's many in-flight commits are all completed by
//!   the single group-commit flush that hardens them — the paper's
//!   consolidation argument, observed from the wire.
//! * [`client`], [`load`] — a pipelining client and closed/open-loop load
//!   generation with p50/p99/p999 reporting.
//!
//! Session tokens: every `Committed` response carries the commit's
//! [`CommitToken`](aether_core::commit::CommitToken) LSN. The server also
//! folds each connection's tokens into a watermark server-side, so a
//! connection always reads its own writes even through the `ReadRouter`;
//! clients can additionally thread tokens through `Read.at_least` to
//! extend the guarantee across connections.

pub mod client;
mod conn;
pub mod dedup;
pub mod load;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod stream;

pub use client::Client;
pub use conn::Engine;
pub use dedup::{Claim, CommitDedup};
pub use load::{LatencySummary, LoadReport, LoadSpec, Mix, Pacing};
pub use protocol::{ErrCode, Request, Response};
pub use retry::{ResilientClient, RetryPolicy, RetryStats};
pub use server::{Server, ServerConfig};
pub use stream::{chan_pair, ByteStream, ChanByteStream, TcpByteStream};
