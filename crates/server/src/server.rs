//! The serving loop: an epoll-style readiness poll over every connection.
//!
//! One IO thread owns all sockets. Each pass it (1) adopts newly accepted
//! connections, (2) appends readable bytes to each connection's
//! accumulator and parses complete frames out of it, reserving a response
//! slot per request and handing the request to the connection's executor,
//! (3) writes each connection's completed response prefix back to its
//! socket. When a pass moves no bytes the loop sleeps for the *batch
//! window* — which is also, deliberately, the pacing that lets pipelined
//! commits from many connections pile onto one flush of the group-commit
//! gate rather than dribbling out one ack at a time.
//!
//! All threads are spawned through the runtime seam, and the loop's only
//! time source is `runtime::sleep`, so the same code serves real TCP
//! traffic and deterministic in-process [`chan_pair`] traffic under
//! [`Runtime::sim`](aether_core::runtime::Runtime::sim).

use crate::conn::{exec_loop, Engine, ExecMsg, RespQueue};
use crate::protocol::{extract_request, Extracted};
use crate::stream::{chan_pair, ByteStream, ChanByteStream, ReadOutcome, TcpByteStream};
use aether_core::runtime::{self, rt_channel, JoinHandle, RtReceiver, RtSender, Runtime};
use aether_core::telemetry::{CounterId, HistId, Telemetry, Unit};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server construction options.
#[derive(Clone)]
pub struct ServerConfig {
    /// Runtime to spawn under (sim for deterministic runs).
    pub runtime: Runtime,
    /// TCP listen address (`None`: in-process connections only). Honors
    /// `AETHER_SERVER_ADDR` via [`ServerConfig::from_env`].
    pub addr: Option<SocketAddr>,
    /// Idle-pass sleep of the IO loop; the knob that shapes how many
    /// pipelined commits share one group-commit flush. Honors
    /// `AETHER_SERVER_BATCH_US`.
    pub batch_window: Duration,
    /// Acceptor poll interval.
    pub accept_window: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            runtime: Runtime::real(),
            addr: None,
            batch_window: Duration::from_micros(50),
            accept_window: Duration::from_micros(200),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `AETHER_SERVER_ADDR` (a `host:port` to listen
    /// on) and `AETHER_SERVER_BATCH_US` (batch window in microseconds).
    pub fn from_env() -> ServerConfig {
        let mut cfg = ServerConfig::default();
        if let Ok(v) = std::env::var("AETHER_SERVER_ADDR") {
            cfg.addr = v.parse().ok();
        }
        if let Ok(v) = std::env::var("AETHER_SERVER_BATCH_US") {
            if let Ok(us) = v.parse::<u64>() {
                cfg.batch_window = Duration::from_micros(us);
            }
        }
        cfg
    }
}

/// `server.*` metric ids, registered on the engine's telemetry.
#[derive(Clone, Copy)]
struct ServerTel {
    conns_opened: CounterId,
    conns_closed: CounterId,
    requests: CounterId,
    responses: CounterId,
    corrupt_frames: CounterId,
    close_aborts: CounterId,
    ack_batch: HistId,
    req_ns: HistId,
}

impl ServerTel {
    fn register(t: &Arc<Telemetry>) -> ServerTel {
        ServerTel {
            conns_opened: t.counter("server.conns_opened", Unit::Count),
            conns_closed: t.counter("server.conns_closed", Unit::Count),
            requests: t.counter("server.requests", Unit::Count),
            responses: t.counter("server.responses", Unit::Count),
            corrupt_frames: t.counter("server.corrupt_frames", Unit::Count),
            close_aborts: t.counter("server.close_aborts", Unit::Count),
            ack_batch: t.histogram("server.ack_batch", Unit::Count),
            req_ns: t.histogram("server.req_ns", Unit::Nanos),
        }
    }
}

struct Shared {
    engine: Engine,
    cfg: ServerConfig,
    tel: Arc<Telemetry>,
    ids: ServerTel,
    stop: AtomicBool,
    conn_seq: AtomicU64,
    conn_tx: RtSender<Box<dyn ByteStream>>,
}

/// A running server. Dropping without [`Server::shutdown`] leaks threads;
/// call shutdown.
pub struct Server {
    sh: Arc<Shared>,
    io: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
}

impl Server {
    /// Start serving `engine` per `cfg`.
    pub fn start(engine: Engine, cfg: ServerConfig) -> io::Result<Server> {
        let tel = Arc::clone(engine.db.log().telemetry());
        let ids = ServerTel::register(&tel);
        let (conn_tx, conn_rx) = rt_channel::<Box<dyn ByteStream>>();
        let listener = match cfg.addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let local_addr = listener.as_ref().and_then(|l| l.local_addr().ok());
        let sh = Arc::new(Shared {
            engine,
            cfg,
            tel,
            ids,
            stop: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            conn_tx,
        });
        let io = {
            let sh = Arc::clone(&sh);
            sh.cfg
                .runtime
                .clone()
                .spawn("server-io", move || io_loop(sh, conn_rx))
        };
        let acceptor = listener.map(|l| {
            let sh = Arc::clone(&sh);
            sh.cfg
                .runtime
                .clone()
                .spawn("server-accept", move || accept_loop(sh, l))
        });
        Ok(Server {
            sh,
            io: Some(io),
            acceptor,
            local_addr,
        })
    }

    /// The bound TCP address (None when serving in-process only).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Open an in-process connection; returns the client end. Works on any
    /// runtime and is the only connection path under sim.
    pub fn connect_chan(&self) -> ChanByteStream {
        let (client, server_end) = chan_pair();
        self.sh.conn_tx.send(Box::new(server_end));
        client
    }

    /// Stop accepting, close every connection (aborting their open
    /// transactions), and join the serving threads.
    pub fn shutdown(mut self) {
        self.sh.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(sh: Arc<Shared>, listener: TcpListener) {
    while !sh.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((sock, _peer)) => match TcpByteStream::new(sock) {
                Ok(s) => {
                    sh.conn_tx.send(Box::new(s));
                }
                Err(_) => continue,
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                runtime::sleep(sh.cfg.accept_window);
            }
            Err(_) => runtime::sleep(sh.cfg.accept_window),
        }
    }
}

struct ConnEntry {
    stream: Box<dyn ByteStream>,
    inbuf: Vec<u8>,
    exec_tx: RtSender<ExecMsg>,
    exec: Option<JoinHandle<()>>,
    resp: Arc<RespQueue>,
    dead: bool,
}

fn io_loop(sh: Arc<Shared>, conn_rx: RtReceiver<Box<dyn ByteStream>>) {
    let mut conns: Vec<ConnEntry> = Vec::new();
    let mut zombies: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stopping = sh.stop.load(Ordering::SeqCst);
        // Adopt new connections.
        while let Some(stream) = conn_rx.try_recv() {
            if stopping {
                // Refuse: drop the server end; the client sees Closed.
                continue;
            }
            conns.push(adopt(&sh, stream));
        }
        if stopping {
            break;
        }

        let mut progressed = false;
        for c in conns.iter_mut() {
            progressed |= pump_reads(&sh, c);
            progressed |= pump_writes(&sh, c);
        }

        // Reap connections that died this pass.
        if conns.iter().any(|c| c.dead) {
            for c in conns.iter_mut().filter(|c| c.dead) {
                retire(&sh, c, &mut zombies);
            }
            conns.retain(|c| !c.dead);
            progressed = true;
        }

        if progressed {
            // Stay fair under sim: hand the token over between passes.
            runtime::yield_now();
        } else {
            runtime::sleep(sh.cfg.batch_window);
        }
    }

    // Shutdown: tear every connection down, then join the executors. The
    // executors abort whatever was still open, so no lock outlives the
    // server (the shutdown-race regression test pins this).
    for c in conns.iter_mut() {
        retire(&sh, c, &mut zombies);
    }
    conns.clear();
    for z in zombies {
        let _ = z.join();
    }
}

fn adopt(sh: &Arc<Shared>, stream: Box<dyn ByteStream>) -> ConnEntry {
    let id = sh.conn_seq.fetch_add(1, Ordering::Relaxed);
    let resp = Arc::new(RespQueue::new(Arc::clone(&sh.tel), sh.ids.req_ns));
    let (exec_tx, exec_rx) = rt_channel::<ExecMsg>();
    let exec = {
        let engine = sh.engine.clone();
        let resp = Arc::clone(&resp);
        let watermark = Arc::new(AtomicU64::new(0));
        let tel = Arc::clone(&sh.tel);
        let close_aborts = sh.ids.close_aborts;
        sh.cfg
            .runtime
            .clone()
            .spawn(&format!("server-exec-{id}"), move || {
                exec_loop(engine, exec_rx, resp, watermark, tel, close_aborts)
            })
    };
    sh.tel.inc(sh.ids.conns_opened);
    ConnEntry {
        stream,
        inbuf: Vec::new(),
        exec_tx,
        exec: Some(exec),
        resp,
        dead: false,
    }
}

/// Read available bytes and dispatch every complete frame. Returns whether
/// anything moved.
fn pump_reads(sh: &Arc<Shared>, c: &mut ConnEntry) -> bool {
    if c.dead {
        return false;
    }
    let mut moved = false;
    match c.stream.read_some(&mut c.inbuf) {
        Ok(ReadOutcome::Bytes(_)) => {
            moved = true;
            loop {
                match extract_request(&mut c.inbuf) {
                    Extracted::Msg { req_id, msg } => {
                        sh.tel.inc(sh.ids.requests);
                        let seq = c.resp.reserve(req_id);
                        if !c.exec_tx.send(ExecMsg::Req {
                            seq,
                            req_id,
                            req: msg,
                        }) {
                            c.dead = true;
                            break;
                        }
                    }
                    Extracted::NeedMore => break,
                    Extracted::Corrupt => {
                        // Unrecoverable framing damage: the length prefix
                        // needed to skip the bad frame is itself suspect.
                        // Drop the connection; the executor aborts its
                        // open transactions on the way out.
                        sh.tel.inc(sh.ids.corrupt_frames);
                        c.dead = true;
                        break;
                    }
                }
            }
        }
        Ok(ReadOutcome::WouldBlock) => {}
        Ok(ReadOutcome::Closed) | Err(_) => c.dead = true,
    }
    moved
}

/// Write the completed response prefix. Returns whether anything moved.
fn pump_writes(sh: &Arc<Shared>, c: &mut ConnEntry) -> bool {
    let ready = c.resp.pop_ready();
    if ready.is_empty() {
        return false;
    }
    sh.tel.record(sh.ids.ack_batch, ready.len() as u64);
    for (req_id, resp) in ready {
        if c.dead {
            break;
        }
        sh.tel.inc(sh.ids.responses);
        let bytes = resp.encode(req_id);
        if c.stream.write_all(&bytes).is_err() {
            c.dead = true;
        }
    }
    true
}

/// Close a connection's socket and signal its executor; the join is
/// deferred (the executor may be sitting in a lock wait, and the IO loop
/// must never block behind one connection).
fn retire(sh: &Arc<Shared>, c: &mut ConnEntry, zombies: &mut Vec<JoinHandle<()>>) {
    c.stream.close();
    c.exec_tx.send(ExecMsg::Close);
    if let Some(h) = c.exec.take() {
        zombies.push(h);
    }
    sh.tel.inc(sh.ids.conns_closed);
}
