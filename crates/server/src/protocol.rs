//! The Aether wire protocol: length-prefixed, CRC32-framed request/response
//! messages, following the framing idiom of `aether-repl::frame`.
//!
//! Every message is one frame:
//!
//! ```text
//! [magic u32][req_id u64][opcode u8][len u32][crc u32]  then `len` body bytes
//! ```
//!
//! The CRC32 covers the header (with the CRC field zeroed) and the body, so
//! a bit flip anywhere — magic, id, opcode, length, payload — is detected.
//! Unlike the replication stream, the serving protocol cannot resynchronize
//! after a bad frame (the length prefix it would need to skip is itself
//! untrusted), so a corrupt frame is *fatal to the connection*: the server
//! drops the socket and aborts the connection's in-flight transactions.
//!
//! `req_id` is chosen by the client (monotonic per connection) and echoed in
//! the matching response; responses to one connection are delivered strictly
//! in request order (invariant 10 in DESIGN.md), so a pipelining client can
//! also match responses positionally.

use aether_core::record::{crc32_finish, crc32_update, CRC32_INIT};

/// Frame header size on the wire.
pub const WIRE_HEADER: usize = 21;

/// Magic tag opening a request frame.
pub const REQUEST_MAGIC: u32 = 0xAE7E_0C11;

/// Magic tag opening a response frame.
pub const RESPONSE_MAGIC: u32 = 0xAE7E_0C22;

/// Upper bound on a frame body. A length prefix larger than this is treated
/// as corruption immediately — the receiver must not buffer attacker-chosen
/// lengths before the CRC can vouch for them.
pub const MAX_BODY: usize = 1 << 20;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open an interactive transaction; the response carries its id.
    Begin,
    /// Snapshot read at a freshness floor (`at_least` = a commit token's
    /// LSN; 0 = any snapshot). Routed through the `ReadRouter` when the
    /// server fronts a replicated cluster, after folding in the
    /// connection's own watermark (read-your-writes).
    Read {
        /// Table id.
        table: u32,
        /// Key.
        key: u64,
        /// Freshness floor (raw LSN of a commit token; 0 = none).
        at_least: u64,
    },
    /// Analytical scan: snapshot-read `count` keys from `start`, aggregated
    /// server-side (row count + checksum) so the response stays bounded.
    Scan {
        /// Table id.
        table: u32,
        /// First key.
        start: u64,
        /// Number of keys to visit.
        count: u32,
    },
    /// Overwrite `key`. `txn` 0 means auto-commit: the server wraps the
    /// write in its own transaction and responds `Committed` at durability,
    /// which is what feeds the group-commit gate a stream of small commits.
    Update {
        /// Transaction id from `Begin`, or 0 for auto-commit.
        txn: u64,
        /// Table id.
        table: u32,
        /// Key.
        key: u64,
        /// New record bytes.
        value: Vec<u8>,
    },
    /// Commit an interactive transaction. Acked strictly at durability.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Roll back an interactive transaction.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// Liveness probe / pipeline barrier.
    Ping,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Transaction opened.
    Begun {
        /// Server-assigned transaction id.
        txn: u64,
    },
    /// Read result.
    Value {
        /// Whether the key was present at the snapshot.
        present: bool,
        /// The serving snapshot's applied watermark (raw LSN).
        applied: u64,
        /// True if a replica served the read (router path).
        from_replica: bool,
        /// Record bytes (empty when absent).
        value: Vec<u8>,
    },
    /// Scan aggregate.
    ScanDone {
        /// Rows found present.
        found: u32,
        /// XOR-fold of a CRC32 per present row (order-independent).
        checksum: u64,
    },
    /// In-transaction update applied (not yet durable — that is `Commit`'s
    /// business).
    UpdateOk,
    /// Commit durable. Carries the session token for read-your-writes.
    Committed {
        /// The commit token's raw LSN (fold into later `Read.at_least`).
        token: u64,
    },
    /// Transaction rolled back.
    Aborted,
    /// Pong.
    Pong,
    /// Request failed. The connection survives; the transaction named by a
    /// failed statement has been rolled back by the server.
    Err {
        /// An [`ErrCode`] as u16.
        code: u16,
        /// Human-readable detail.
        msg: String,
    },
}

/// Error codes carried by [`Response::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrCode {
    /// Referenced transaction id is not open on this connection.
    NoSuchTxn = 1,
    /// Key not found.
    NotFound = 2,
    /// Deadlock victim (transaction rolled back).
    Deadlock = 3,
    /// Lock wait timeout (transaction rolled back).
    LockTimeout = 4,
    /// Any other storage error.
    Storage = 5,
    /// Request malformed at the semantic level (e.g. bad table).
    BadRequest = 6,
    /// Server is shutting down.
    Shutdown = 7,
    /// Admission control shed the request: the retained log footprint is
    /// over the hard disk-pressure watermark. Retry after backoff.
    LogFull = 8,
    /// Server transiently overloaded; retry after backoff.
    Busy = 9,
}

impl ErrCode {
    /// Map a storage error to a wire code.
    pub fn of(e: &aether_storage::StorageError) -> ErrCode {
        use aether_core::AetherError as L;
        use aether_storage::StorageError as E;
        match e {
            E::Deadlock { .. } => ErrCode::Deadlock,
            E::LockTimeout { .. } => ErrCode::LockTimeout,
            E::KeyNotFound { .. } => ErrCode::NotFound,
            E::TxnNotActive(_) => ErrCode::NoSuchTxn,
            E::Log(L::LogFull { .. }) => ErrCode::LogFull,
            E::Log(L::Busy(_)) => ErrCode::Busy,
            E::Log(L::Shutdown) => ErrCode::Shutdown,
            _ => ErrCode::Storage,
        }
    }

    /// Decode a wire `u16` back to a code (`None` for unknown values —
    /// forward compatibility demands they be treated as non-retryable).
    pub fn from_u16(code: u16) -> Option<ErrCode> {
        Some(match code {
            1 => ErrCode::NoSuchTxn,
            2 => ErrCode::NotFound,
            3 => ErrCode::Deadlock,
            4 => ErrCode::LockTimeout,
            5 => ErrCode::Storage,
            6 => ErrCode::BadRequest,
            7 => ErrCode::Shutdown,
            8 => ErrCode::LogFull,
            9 => ErrCode::Busy,
            _ => return None,
        })
    }

    /// True for codes a client may transparently retry after backoff: the
    /// condition is expected to clear without operator action.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrCode::Deadlock | ErrCode::LockTimeout | ErrCode::LogFull | ErrCode::Busy
        )
    }
}

// Request opcodes.
const OP_BEGIN: u8 = 0x01;
const OP_READ: u8 = 0x02;
const OP_SCAN: u8 = 0x03;
const OP_UPDATE: u8 = 0x04;
const OP_COMMIT: u8 = 0x05;
const OP_ABORT: u8 = 0x06;
const OP_PING: u8 = 0x07;

// Response opcodes.
const OP_BEGUN: u8 = 0x81;
const OP_VALUE: u8 = 0x82;
const OP_SCAN_DONE: u8 = 0x83;
const OP_UPDATE_OK: u8 = 0x84;
const OP_COMMITTED: u8 = 0x85;
const OP_ABORTED: u8 = 0x86;
const OP_PONG: u8 = 0x87;
const OP_ERR: u8 = 0xFF;

fn frame(magic: u32, req_id: u64, opcode: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WIRE_HEADER + body.len());
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&req_id.to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // crc placeholder
    out.extend_from_slice(body);
    let crc = crc32_finish(crc32_update(CRC32_INIT, &out));
    out[17..21].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Header fields of a validated frame.
struct Header {
    req_id: u64,
    opcode: u8,
    len: usize,
}

/// Parse and CRC-check one complete frame at the front of `buf`.
/// `buf` must hold exactly `WIRE_HEADER + len` bytes when called from
/// `decode`; the streaming extractor checks length before slicing.
fn check(magic: u32, buf: &[u8]) -> Option<Header> {
    if buf.len() < WIRE_HEADER {
        return None;
    }
    if u32::from_le_bytes(buf[0..4].try_into().ok()?) != magic {
        return None;
    }
    let req_id = u64::from_le_bytes(buf[4..12].try_into().ok()?);
    let opcode = buf[12];
    let len = u32::from_le_bytes(buf[13..17].try_into().ok()?) as usize;
    if len > MAX_BODY || buf.len() != WIRE_HEADER + len {
        return None;
    }
    let stored_crc = u32::from_le_bytes(buf[17..21].try_into().ok()?);
    let mut crc = crc32_update(CRC32_INIT, &buf[..17]);
    crc = crc32_update(crc, &[0u8; 4]);
    crc = crc32_update(crc, &buf[WIRE_HEADER..]);
    if crc32_finish(crc) != stored_crc {
        return None;
    }
    Some(Header {
        req_id,
        opcode,
        len,
    })
}

impl Request {
    /// Serialize with the given request id.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        let mut b = Vec::new();
        let op = match self {
            Request::Begin => OP_BEGIN,
            Request::Read {
                table,
                key,
                at_least,
            } => {
                b.extend_from_slice(&table.to_le_bytes());
                b.extend_from_slice(&key.to_le_bytes());
                b.extend_from_slice(&at_least.to_le_bytes());
                OP_READ
            }
            Request::Scan {
                table,
                start,
                count,
            } => {
                b.extend_from_slice(&table.to_le_bytes());
                b.extend_from_slice(&start.to_le_bytes());
                b.extend_from_slice(&count.to_le_bytes());
                OP_SCAN
            }
            Request::Update {
                txn,
                table,
                key,
                value,
            } => {
                b.extend_from_slice(&txn.to_le_bytes());
                b.extend_from_slice(&table.to_le_bytes());
                b.extend_from_slice(&key.to_le_bytes());
                b.extend_from_slice(value);
                OP_UPDATE
            }
            Request::Commit { txn } => {
                b.extend_from_slice(&txn.to_le_bytes());
                OP_COMMIT
            }
            Request::Abort { txn } => {
                b.extend_from_slice(&txn.to_le_bytes());
                OP_ABORT
            }
            Request::Ping => OP_PING,
        };
        frame(REQUEST_MAGIC, req_id, op, &b)
    }

    /// Decode a complete request frame; `None` for anything malformed.
    pub fn decode(buf: &[u8]) -> Option<(u64, Request)> {
        let h = check(REQUEST_MAGIC, buf)?;
        let b = &buf[WIRE_HEADER..];
        let req = match h.opcode {
            OP_BEGIN => {
                if h.len != 0 {
                    return None;
                }
                Request::Begin
            }
            OP_READ => {
                if h.len != 20 {
                    return None;
                }
                Request::Read {
                    table: u32::from_le_bytes(b[0..4].try_into().ok()?),
                    key: u64::from_le_bytes(b[4..12].try_into().ok()?),
                    at_least: u64::from_le_bytes(b[12..20].try_into().ok()?),
                }
            }
            OP_SCAN => {
                if h.len != 16 {
                    return None;
                }
                Request::Scan {
                    table: u32::from_le_bytes(b[0..4].try_into().ok()?),
                    start: u64::from_le_bytes(b[4..12].try_into().ok()?),
                    count: u32::from_le_bytes(b[12..16].try_into().ok()?),
                }
            }
            OP_UPDATE => {
                if h.len < 20 {
                    return None;
                }
                Request::Update {
                    txn: u64::from_le_bytes(b[0..8].try_into().ok()?),
                    table: u32::from_le_bytes(b[8..12].try_into().ok()?),
                    key: u64::from_le_bytes(b[12..20].try_into().ok()?),
                    value: b[20..].to_vec(),
                }
            }
            OP_COMMIT => {
                if h.len != 8 {
                    return None;
                }
                Request::Commit {
                    txn: u64::from_le_bytes(b[0..8].try_into().ok()?),
                }
            }
            OP_ABORT => {
                if h.len != 8 {
                    return None;
                }
                Request::Abort {
                    txn: u64::from_le_bytes(b[0..8].try_into().ok()?),
                }
            }
            OP_PING => {
                if h.len != 0 {
                    return None;
                }
                Request::Ping
            }
            _ => return None,
        };
        Some((h.req_id, req))
    }
}

impl Response {
    /// Serialize with the request id being answered.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        let mut b = Vec::new();
        let op = match self {
            Response::Begun { txn } => {
                b.extend_from_slice(&txn.to_le_bytes());
                OP_BEGUN
            }
            Response::Value {
                present,
                applied,
                from_replica,
                value,
            } => {
                b.push(u8::from(*present) | (u8::from(*from_replica) << 1));
                b.extend_from_slice(&applied.to_le_bytes());
                b.extend_from_slice(value);
                OP_VALUE
            }
            Response::ScanDone { found, checksum } => {
                b.extend_from_slice(&found.to_le_bytes());
                b.extend_from_slice(&checksum.to_le_bytes());
                OP_SCAN_DONE
            }
            Response::UpdateOk => OP_UPDATE_OK,
            Response::Committed { token } => {
                b.extend_from_slice(&token.to_le_bytes());
                OP_COMMITTED
            }
            Response::Aborted => OP_ABORTED,
            Response::Pong => OP_PONG,
            Response::Err { code, msg } => {
                b.extend_from_slice(&code.to_le_bytes());
                b.extend_from_slice(msg.as_bytes());
                OP_ERR
            }
        };
        frame(RESPONSE_MAGIC, req_id, op, &b)
    }

    /// Decode a complete response frame; `None` for anything malformed.
    pub fn decode(buf: &[u8]) -> Option<(u64, Response)> {
        let h = check(RESPONSE_MAGIC, buf)?;
        let b = &buf[WIRE_HEADER..];
        let resp = match h.opcode {
            OP_BEGUN => {
                if h.len != 8 {
                    return None;
                }
                Response::Begun {
                    txn: u64::from_le_bytes(b[0..8].try_into().ok()?),
                }
            }
            OP_VALUE => {
                if h.len < 9 || b[0] & !0x03 != 0 {
                    return None;
                }
                Response::Value {
                    present: b[0] & 0x01 != 0,
                    from_replica: b[0] & 0x02 != 0,
                    applied: u64::from_le_bytes(b[1..9].try_into().ok()?),
                    value: b[9..].to_vec(),
                }
            }
            OP_SCAN_DONE => {
                if h.len != 12 {
                    return None;
                }
                Response::ScanDone {
                    found: u32::from_le_bytes(b[0..4].try_into().ok()?),
                    checksum: u64::from_le_bytes(b[4..12].try_into().ok()?),
                }
            }
            OP_UPDATE_OK => {
                if h.len != 0 {
                    return None;
                }
                Response::UpdateOk
            }
            OP_COMMITTED => {
                if h.len != 8 {
                    return None;
                }
                Response::Committed {
                    token: u64::from_le_bytes(b[0..8].try_into().ok()?),
                }
            }
            OP_ABORTED => {
                if h.len != 0 {
                    return None;
                }
                Response::Aborted
            }
            OP_PONG => {
                if h.len != 0 {
                    return None;
                }
                Response::Pong
            }
            OP_ERR => {
                if h.len < 2 {
                    return None;
                }
                Response::Err {
                    code: u16::from_le_bytes(b[0..2].try_into().ok()?),
                    msg: String::from_utf8(b[2..].to_vec()).ok()?,
                }
            }
            _ => return None,
        };
        Some((h.req_id, resp))
    }
}

/// Outcome of trying to pull one frame out of a byte stream's buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Extracted<T> {
    /// A complete, CRC-valid frame was removed from the buffer.
    Msg {
        /// The frame's request id.
        req_id: u64,
        /// The decoded message.
        msg: T,
    },
    /// The buffer holds a prefix of a valid-looking frame; read more bytes.
    NeedMore,
    /// The buffer front is not a valid frame. The stream cannot be
    /// resynchronized — the connection must be dropped.
    Corrupt,
}

fn extract<T>(
    magic: u32,
    buf: &mut Vec<u8>,
    decode: impl Fn(&[u8]) -> Option<(u64, T)>,
) -> Extracted<T> {
    if buf.len() < WIRE_HEADER {
        return Extracted::NeedMore;
    }
    if u32::from_le_bytes(buf[0..4].try_into().unwrap()) != magic {
        return Extracted::Corrupt;
    }
    let len = u32::from_le_bytes(buf[13..17].try_into().unwrap()) as usize;
    if len > MAX_BODY {
        return Extracted::Corrupt;
    }
    let total = WIRE_HEADER + len;
    if buf.len() < total {
        return Extracted::NeedMore;
    }
    match decode(&buf[..total]) {
        Some((req_id, msg)) => {
            buf.drain(..total);
            Extracted::Msg { req_id, msg }
        }
        None => Extracted::Corrupt,
    }
}

/// Pull one request frame off the front of `buf` (a connection's read
/// accumulator), leaving any following bytes in place.
pub fn extract_request(buf: &mut Vec<u8>) -> Extracted<Request> {
    extract(REQUEST_MAGIC, buf, Request::decode)
}

/// Pull one response frame off the front of `buf`.
pub fn extract_response(buf: &mut Vec<u8>) -> Extracted<Response> {
    extract(RESPONSE_MAGIC, buf, Response::decode)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Begin,
            Request::Read {
                table: 3,
                key: 77,
                at_least: 9000,
            },
            Request::Scan {
                table: 1,
                start: 10,
                count: 500,
            },
            Request::Update {
                txn: 0,
                table: 2,
                key: 5,
                value: vec![1, 2, 3, 4],
            },
            Request::Commit { txn: 42 },
            Request::Abort { txn: 43 },
            Request::Ping,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Begun { txn: 9 },
            Response::Value {
                present: true,
                applied: 4096,
                from_replica: true,
                value: vec![7; 32],
            },
            Response::ScanDone {
                found: 12,
                checksum: 0xDEAD_BEEF,
            },
            Response::UpdateOk,
            Response::Committed { token: 512 },
            Response::Aborted,
            Response::Pong,
            Response::Err {
                code: ErrCode::Deadlock as u16,
                msg: "victim".into(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for (i, r) in all_requests().into_iter().enumerate() {
            let enc = r.encode(i as u64);
            assert_eq!(Request::decode(&enc), Some((i as u64, r)));
        }
    }

    #[test]
    fn response_roundtrip() {
        for (i, r) in all_responses().into_iter().enumerate() {
            let enc = r.encode(1000 + i as u64);
            assert_eq!(Response::decode(&enc), Some((1000 + i as u64, r)));
        }
    }

    #[test]
    fn corruption_detected_anywhere() {
        let enc = Request::Update {
            txn: 1,
            table: 0,
            key: 9,
            value: vec![0xAB; 40],
        }
        .encode(7);
        for at in 0..enc.len() {
            let mut bad = enc.clone();
            bad[at] ^= 0x20;
            assert!(Request::decode(&bad).is_none(), "flip at {at} undetected");
        }
        assert!(Request::decode(&enc[..enc.len() - 1]).is_none());
        assert!(Request::decode(&enc[..5]).is_none());
    }

    #[test]
    fn extract_streams_split_frames() {
        let a = Request::Begin.encode(1);
        let b = Request::Ping.encode(2);
        let mut buf = Vec::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b[..10]);
        match extract_request(&mut buf) {
            Extracted::Msg { req_id, msg } => {
                assert_eq!((req_id, msg), (1, Request::Begin));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(extract_request(&mut buf), Extracted::NeedMore);
        buf.extend_from_slice(&b[10..]);
        match extract_request(&mut buf) {
            Extracted::Msg { req_id, msg } => {
                assert_eq!((req_id, msg), (2, Request::Ping));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn extract_flags_corruption() {
        let mut buf = Request::Ping.encode(3);
        buf[2] ^= 0x01; // bad magic
        assert_eq!(extract_request(&mut buf), Extracted::Corrupt);

        // Oversized length prefix is corrupt even before the body arrives.
        let mut huge = Request::Ping.encode(4);
        huge[13..17].copy_from_slice(&(MAX_BODY as u32 + 1).to_le_bytes());
        assert_eq!(extract_request(&mut huge), Extracted::Corrupt);
    }
}
