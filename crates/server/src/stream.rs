//! Transport abstraction under the connection loop.
//!
//! The loop itself is transport-agnostic: it polls [`ByteStream`]s for
//! readable bytes and writes framed responses back. Two implementations:
//!
//! * [`TcpByteStream`] — a nonblocking `std::net::TcpStream`, the real
//!   serving path.
//! * [`ChanByteStream`] — a pair of [`rt_channel`]s carrying byte chunks,
//!   so a whole server + client fleet runs in-process and, under
//!   [`Runtime::sim`](aether_core::runtime::Runtime::sim), deterministically:
//!   chunk delivery order is scheduler order, which is seed order.

use aether_core::runtime::{rt_channel, RtReceiver, RtSender};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// What a non-blocking read observed.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were appended to the buffer.
    Bytes(usize),
    /// Nothing available right now.
    WouldBlock,
    /// Peer closed the stream (no more bytes will ever arrive).
    Closed,
}

/// A bidirectional, message-boundary-free byte pipe, non-blocking on read.
pub trait ByteStream: Send {
    /// Append whatever bytes are available onto `buf` without blocking.
    fn read_some(&mut self, buf: &mut Vec<u8>) -> io::Result<ReadOutcome>;

    /// Write all of `bytes` (may briefly spin-wait on backpressure).
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Block up to `timeout` for readable bytes, appending them to `buf`.
    /// Client-side only — the server loop never blocks per-stream. The
    /// default implementation polls; transports with a real blocking
    /// primitive override it so waiting clients park instead of spinning
    /// (with dozens of connections the spin CPU otherwise starves the
    /// server itself).
    fn read_wait(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> io::Result<ReadOutcome> {
        match self.read_some(buf)? {
            ReadOutcome::WouldBlock => {
                aether_core::runtime::sleep(timeout.min(Duration::from_micros(50)));
                self.read_some(buf)
            }
            r => Ok(r),
        }
    }

    /// Close the stream: the peer observes `Closed` after draining.
    fn close(&mut self);
}

/// [`ByteStream`] over a nonblocking TCP socket.
pub struct TcpByteStream {
    sock: TcpStream,
    scratch: Box<[u8; 64 * 1024]>,
}

impl TcpByteStream {
    /// Wrap `sock`, switching it to nonblocking mode and disabling Nagle
    /// (frames are small and latency-sensitive; batching is the group-commit
    /// gate's job, not the kernel's).
    pub fn new(sock: TcpStream) -> io::Result<TcpByteStream> {
        sock.set_nonblocking(true)?;
        sock.set_nodelay(true)?;
        Ok(TcpByteStream {
            sock,
            scratch: Box::new([0u8; 64 * 1024]),
        })
    }
}

impl ByteStream for TcpByteStream {
    fn read_some(&mut self, buf: &mut Vec<u8>) -> io::Result<ReadOutcome> {
        match self.sock.read(&mut self.scratch[..]) {
            Ok(0) => Ok(ReadOutcome::Closed),
            Ok(n) => {
                buf.extend_from_slice(&self.scratch[..n]);
                Ok(ReadOutcome::Bytes(n))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(ReadOutcome::WouldBlock),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(ReadOutcome::WouldBlock),
            Err(e)
                if e.kind() == io::ErrorKind::ConnectionReset
                    || e.kind() == io::ErrorKind::BrokenPipe =>
            {
                Ok(ReadOutcome::Closed)
            }
            Err(e) => Err(e),
        }
    }

    fn write_all(&mut self, mut bytes: &[u8]) -> io::Result<()> {
        while !bytes.is_empty() {
            match self.sock.write(bytes) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => bytes = &bytes[n..],
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Socket send buffer full: the peer is slower than us.
                    // Back off through the runtime seam so the wait is
                    // schedulable under sim (TCP is never used under sim,
                    // but the discipline costs nothing).
                    aether_core::runtime::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn read_wait(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> io::Result<ReadOutcome> {
        // Flip to a blocking read with a timeout, then restore nonblocking
        // mode: two extra fcntls per wait, but the waiting thread parks in
        // the kernel instead of burning a poll loop.
        if let Ok(r @ (ReadOutcome::Bytes(_) | ReadOutcome::Closed)) = self.read_some(buf) {
            return Ok(r);
        }
        self.sock.set_nonblocking(false)?;
        self.sock
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let got = self.sock.read(&mut self.scratch[..]);
        self.sock.set_nonblocking(true)?;
        match got {
            Ok(0) => Ok(ReadOutcome::Closed),
            Ok(n) => {
                buf.extend_from_slice(&self.scratch[..n]);
                Ok(ReadOutcome::Bytes(n))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(ReadOutcome::WouldBlock)
            }
            Err(e)
                if e.kind() == io::ErrorKind::ConnectionReset
                    || e.kind() == io::ErrorKind::BrokenPipe =>
            {
                Ok(ReadOutcome::Closed)
            }
            Err(e) => Err(e),
        }
    }

    fn close(&mut self) {
        let _ = self.sock.shutdown(std::net::Shutdown::Both);
    }
}

/// [`ByteStream`] over a pair of runtime-aware channels carrying byte
/// chunks. Each `write_all` becomes one chunk; the reader re-buffers, so
/// frame boundaries are *not* preserved — exactly like TCP.
pub struct ChanByteStream {
    tx: Option<RtSender<Vec<u8>>>,
    rx: Option<RtReceiver<Vec<u8>>>,
}

/// A connected pair of in-process byte streams (client end, server end).
pub fn chan_pair() -> (ChanByteStream, ChanByteStream) {
    let (atx, arx) = rt_channel::<Vec<u8>>();
    let (btx, brx) = rt_channel::<Vec<u8>>();
    (
        ChanByteStream {
            tx: Some(atx),
            rx: Some(brx),
        },
        ChanByteStream {
            tx: Some(btx),
            rx: Some(arx),
        },
    )
}

impl ByteStream for ChanByteStream {
    fn read_some(&mut self, buf: &mut Vec<u8>) -> io::Result<ReadOutcome> {
        let rx = match &self.rx {
            Some(rx) => rx,
            None => return Ok(ReadOutcome::Closed),
        };
        let mut n = 0;
        while let Some(chunk) = rx.try_recv() {
            n += chunk.len();
            buf.extend_from_slice(&chunk);
        }
        if n > 0 {
            Ok(ReadOutcome::Bytes(n))
        } else if rx.is_disconnected() {
            Ok(ReadOutcome::Closed)
        } else {
            Ok(ReadOutcome::WouldBlock)
        }
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match &self.tx {
            Some(tx) if tx.send(bytes.to_vec()) => Ok(()),
            _ => Err(io::ErrorKind::BrokenPipe.into()),
        }
    }

    fn read_wait(&mut self, buf: &mut Vec<u8>, timeout: Duration) -> io::Result<ReadOutcome> {
        // `recv_timeout` parks on the channel condvar (virtual time under
        // sim) — no polling.
        let rx = match &self.rx {
            Some(rx) => rx,
            None => return Ok(ReadOutcome::Closed),
        };
        match rx.recv_timeout(timeout) {
            Some(chunk) => {
                let mut n = chunk.len();
                buf.extend_from_slice(&chunk);
                while let Some(more) = rx.try_recv() {
                    n += more.len();
                    buf.extend_from_slice(&more);
                }
                Ok(ReadOutcome::Bytes(n))
            }
            None if rx.is_disconnected() => Ok(ReadOutcome::Closed),
            None => Ok(ReadOutcome::WouldBlock),
        }
    }

    fn close(&mut self) {
        // Dropping the sender lets the peer drain buffered chunks and then
        // observe `Closed`; dropping the receiver makes the peer's writes
        // fail fast.
        self.tx = None;
        self.rx = None;
    }
}

impl Drop for ChanByteStream {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chan_pair_roundtrips_and_closes() {
        let (mut a, mut b) = chan_pair();
        a.write_all(&[1, 2, 3]).unwrap();
        a.write_all(&[4]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(b.read_some(&mut buf).unwrap(), ReadOutcome::Bytes(4));
        assert_eq!(buf, vec![1, 2, 3, 4]);
        assert_eq!(b.read_some(&mut buf).unwrap(), ReadOutcome::WouldBlock);
        a.close();
        assert_eq!(b.read_some(&mut buf).unwrap(), ReadOutcome::Closed);
        assert!(b.write_all(&[9]).is_err());
    }
}
