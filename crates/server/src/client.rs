//! A pipelining wire client.
//!
//! [`Client::send`] enqueues a request and returns immediately with its
//! request id; [`Client::recv`] blocks for the next response. Because the
//! server answers strictly in request order, a caller that keeps a window
//! of W requests in flight gets W-deep pipelining with purely positional
//! matching — the 1-op-per-round-trip caller is just W = 1.

use crate::protocol::{extract_response, Extracted, Request, Response};
use crate::stream::{ByteStream, ReadOutcome};
use std::io;
use std::time::Duration;

/// A client over any [`ByteStream`].
pub struct Client {
    stream: Box<dyn ByteStream>,
    inbuf: Vec<u8>,
    next_req: u64,
}

impl Client {
    /// Wrap an already-connected stream.
    pub fn new(stream: Box<dyn ByteStream>) -> Client {
        Client {
            stream,
            inbuf: Vec::new(),
            next_req: 0,
        }
    }

    /// Connect over TCP.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> io::Result<Client> {
        let sock = std::net::TcpStream::connect(addr)?;
        Ok(Client::new(Box::new(crate::stream::TcpByteStream::new(
            sock,
        )?)))
    }

    /// Send `req`, returning the request id it was framed with.
    pub fn send(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_req;
        self.next_req += 1;
        self.stream.write_all(&req.encode(id))?;
        Ok(id)
    }

    /// Send `req` framed with a caller-chosen request id — the retry path:
    /// a re-sent request must carry the *same* id so the server's dedup
    /// window can recognize it (see [`crate::dedup`]).
    pub fn send_with_id(&mut self, req: &Request, id: u64) -> io::Result<()> {
        self.stream.write_all(&req.encode(id))
    }

    /// Non-blocking poll for the next response.
    pub fn try_recv(&mut self) -> io::Result<Option<(u64, Response)>> {
        loop {
            match extract_response(&mut self.inbuf) {
                Extracted::Msg { req_id, msg } => return Ok(Some((req_id, msg))),
                Extracted::Corrupt => {
                    self.stream.close();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "corrupt response frame",
                    ));
                }
                Extracted::NeedMore => match self.stream.read_some(&mut self.inbuf)? {
                    ReadOutcome::Bytes(_) => continue,
                    ReadOutcome::WouldBlock => return Ok(None),
                    ReadOutcome::Closed => {
                        return Err(io::ErrorKind::ConnectionAborted.into());
                    }
                },
            }
        }
    }

    /// Block for the next response. The wait parks on the transport's
    /// blocking primitive ([`ByteStream::read_wait`]) — a channel condvar
    /// in-process (virtual time under sim), a kernel read timeout on TCP —
    /// so dozens of waiting clients cost no CPU.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        loop {
            match extract_response(&mut self.inbuf) {
                Extracted::Msg { req_id, msg } => return Ok((req_id, msg)),
                Extracted::Corrupt => {
                    self.stream.close();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "corrupt response frame",
                    ));
                }
                Extracted::NeedMore => {
                    match self
                        .stream
                        .read_wait(&mut self.inbuf, Duration::from_millis(20))?
                    {
                        ReadOutcome::Closed => return Err(io::ErrorKind::ConnectionAborted.into()),
                        ReadOutcome::Bytes(_) | ReadOutcome::WouldBlock => {}
                    }
                }
            }
        }
    }

    /// Block for the next response for at most `timeout`; `Ok(None)` on
    /// timeout. The wait is charged against [`aether_core::runtime`] time,
    /// so it is virtual under sim like every other timeout in the system.
    pub fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<(u64, Response)>> {
        let deadline =
            aether_core::runtime::monotonic_ns().saturating_add(timeout.as_nanos() as u64);
        loop {
            match extract_response(&mut self.inbuf) {
                Extracted::Msg { req_id, msg } => return Ok(Some((req_id, msg))),
                Extracted::Corrupt => {
                    self.stream.close();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "corrupt response frame",
                    ));
                }
                Extracted::NeedMore => {
                    let now = aether_core::runtime::monotonic_ns();
                    if now >= deadline {
                        return Ok(None);
                    }
                    let left = Duration::from_nanos(deadline - now).min(Duration::from_millis(20));
                    match self.stream.read_wait(&mut self.inbuf, left)? {
                        ReadOutcome::Closed => return Err(io::ErrorKind::ConnectionAborted.into()),
                        ReadOutcome::Bytes(_) | ReadOutcome::WouldBlock => {}
                    }
                }
            }
        }
    }

    /// One blocking round trip.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        let id = self.send(req)?;
        let (rid, resp) = self.recv()?;
        if rid != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {rid} for request {id} (ordering violated)"),
            ));
        }
        Ok(resp)
    }

    /// Close the connection.
    pub fn close(&mut self) {
        self.stream.close();
    }

    /// Surrender the underlying stream (for tests that need to push raw —
    /// possibly malformed — bytes past the framing layer).
    pub fn into_stream(self) -> Box<dyn ByteStream> {
        self.stream
    }
}
