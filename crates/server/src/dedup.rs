//! Server-side commit deduplication for idempotent client retries.
//!
//! A resilient client retries an auto-commit request after a timeout or a
//! reconnect. But "no response" does not mean "not executed" — the commit
//! may have hardened just as the connection died. Re-executing it would
//! double-apply. The fix is a *dedup window*: clients tag retryable
//! commits with a globally unique request id (a per-session nonce in the
//! high 32 bits, a sequence number in the low 32 — see
//! [`crate::retry::retry_id`]), and the server remembers the outcome of
//! each recently seen id. A retry of a committed request is answered from
//! the window with the *original* commit token, not re-executed: exactly
//! once, as observed by the client.
//!
//! Ids with a zero nonce are never deduplicated — plain clients that
//! number requests 0,1,2,… opt out by construction.
//!
//! The window is engine-wide (retries arrive on *new* connections) and
//! bounded: the oldest completed entries are evicted first; in-flight
//! entries are never evicted. A retry that outlives the window re-executes
//! — the window must be sized to dwarf any plausible retry horizon.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Outcome of [`CommitDedup::claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// First sighting: the caller owns execution and must eventually call
    /// [`CommitDedup::complete`] or [`CommitDedup::forget`].
    New,
    /// The original attempt is still executing (its durability callback has
    /// not fired). The retry should be answered `Busy` — the client backs
    /// off and asks again.
    InFlight,
    /// Already committed, with the recorded commit token: answer with it,
    /// do not re-execute.
    Done(u64),
}

#[derive(Debug, Clone, Copy)]
enum Entry {
    InFlight,
    Done(u64),
}

struct Inner {
    map: HashMap<u64, Entry>,
    /// Insertion order, for capacity eviction.
    order: VecDeque<u64>,
}

/// Engine-wide dedup window. See the module docs.
pub struct CommitDedup {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for CommitDedup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitDedup")
            .field("entries", &self.inner.lock().map.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl CommitDedup {
    /// A window remembering up to `capacity` completed commits.
    pub fn new(capacity: usize) -> CommitDedup {
        CommitDedup {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Whether `req_id` participates in deduplication (nonzero session
    /// nonce in the high 32 bits).
    pub fn eligible(req_id: u64) -> bool {
        req_id >> 32 != 0
    }

    /// Look up (and, when new, reserve) `req_id`. Ineligible ids are always
    /// [`Claim::New`] and never recorded.
    pub fn claim(&self, req_id: u64) -> Claim {
        if !Self::eligible(req_id) {
            return Claim::New;
        }
        let mut g = self.inner.lock();
        match g.map.get(&req_id) {
            Some(Entry::Done(token)) => return Claim::Done(*token),
            Some(Entry::InFlight) => return Claim::InFlight,
            None => {}
        }
        g.map.insert(req_id, Entry::InFlight);
        g.order.push_back(req_id);
        // Evict the oldest *completed* entries over capacity; in-flight
        // ones must survive until their callback settles them.
        let Inner { map, order } = &mut *g;
        while map.len() > self.capacity {
            let Some(pos) = order
                .iter()
                .position(|id| matches!(map.get(id), Some(Entry::Done(_))))
            else {
                break;
            };
            let id = order.remove(pos).expect("position just found");
            map.remove(&id);
        }
        Claim::New
    }

    /// Record a committed outcome for a claimed id (no-op when ineligible).
    pub fn complete(&self, req_id: u64, token: u64) {
        if !Self::eligible(req_id) {
            return;
        }
        self.inner.lock().map.insert(req_id, Entry::Done(token));
    }

    /// Drop a claimed id whose execution failed, so a retry re-executes.
    pub fn forget(&self, req_id: u64) {
        if !Self::eligible(req_id) {
            return;
        }
        let mut g = self.inner.lock();
        g.map.remove(&req_id);
        g.order.retain(|id| *id != req_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID: u64 = (7 << 32) | 1;

    #[test]
    fn lifecycle_new_inflight_done() {
        let d = CommitDedup::new(16);
        assert_eq!(d.claim(ID), Claim::New);
        assert_eq!(d.claim(ID), Claim::InFlight);
        d.complete(ID, 4096);
        assert_eq!(d.claim(ID), Claim::Done(4096));
        assert_eq!(d.claim(ID), Claim::Done(4096), "replay is stable");
    }

    #[test]
    fn forget_reopens_execution() {
        let d = CommitDedup::new(16);
        assert_eq!(d.claim(ID), Claim::New);
        d.forget(ID);
        assert_eq!(d.claim(ID), Claim::New);
    }

    #[test]
    fn zero_nonce_opts_out() {
        let d = CommitDedup::new(16);
        assert_eq!(d.claim(3), Claim::New);
        assert_eq!(d.claim(3), Claim::New);
        d.complete(3, 99);
        assert_eq!(d.claim(3), Claim::New);
    }

    #[test]
    fn eviction_spares_inflight_entries() {
        let d = CommitDedup::new(2);
        let id = |n: u64| (1u64 << 32) | n;
        assert_eq!(d.claim(id(1)), Claim::New); // stays in flight
        assert_eq!(d.claim(id(2)), Claim::New);
        d.complete(id(2), 20);
        assert_eq!(d.claim(id(3)), Claim::New);
        d.complete(id(3), 30);
        // Over capacity: the oldest Done (id 2) evicted, in-flight id 1 kept.
        assert_eq!(d.claim(id(4)), Claim::New);
        d.complete(id(4), 40);
        assert_eq!(d.claim(id(1)), Claim::InFlight);
        assert_eq!(d.claim(id(2)), Claim::New, "evicted: re-executes");
    }
}
